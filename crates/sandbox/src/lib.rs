#![warn(missing_docs)]

//! # pandora-sandbox
//!
//! An eBPF-like sandbox — bytecode, static verifier, and JIT to the
//! Pandora ISA — reproducing the attack setting of §V-B of *"Opening
//! Pandora's Box"* (ISCA 2021): the attacker runs code inside a
//! software sandbox whose verifier enforces memory safety, and uses the
//! data memory-dependent prefetcher to read outside it anyway.
//!
//! * [`bytecode`] — the instruction set: scalars, map lookups that
//!   return pointer-or-null (as `BPF_ARRAY.lookup()`), and guarded
//!   dereferences.
//! * [`verifier`] — abstract interpretation enforcing the null-check /
//!   no-pointer-arithmetic discipline; unsafe programs are rejected
//!   before emission.
//! * [`compile()`](crate::compile::compile) — the JIT, lowering lookups to the inline bounds check
//!   + `base + idx * elem` sequence of the paper's Fig 7b.
//!
//! ```
//! use pandora_sandbox::bytecode::{BpfProgram, BpfReg, Cmp, Inst, MapDef, Src};
//! use pandora_sandbox::verifier::verify;
//!
//! let mut p = BpfProgram::new(vec![MapDef::new("z", 8, 16)]);
//! let r = |i| BpfReg(i);
//! p.push(Inst::MovImm { dst: r(1), imm: 3 });
//! p.push(Inst::Lookup { dst: r(2), map: 0, idx: r(1) });
//! p.push(Inst::JmpIf { cmp: Cmp::Eq, a: r(2), b: Src::Imm(0), target: 4 });
//! p.push(Inst::LoadInd { dst: r(3), ptr: r(2) });
//! p.push(Inst::Exit);
//! assert!(verify(&p).is_ok());
//! ```

pub mod bytecode;
pub mod compile;
#[cfg(test)]
mod tests_prop;
pub mod verifier;

pub use bytecode::{BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, Src};
pub use compile::{compile, Compiled, SandboxLayout};
pub use verifier::{
    verify, verify_with_limits, RegType, VerifiedProgram, VerifyError, VerifyLimits,
};
