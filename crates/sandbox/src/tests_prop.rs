//! Verifier soundness, property-based: **any program the verifier
//! accepts, once compiled and run, never architecturally touches
//! memory outside its sandbox region** — no matter what the bytecode
//! looks like. (The paper's whole premise is that this guarantee holds
//! architecturally and is then broken microarchitecturally.)

use pandora_isa::Asm;
use pandora_sim::{Machine, SimConfig, SimError};
use proptest::prelude::*;

use crate::bytecode::{BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, Src};
use crate::compile::{compile, SandboxLayout};

fn reg() -> impl Strategy<Value = BpfReg> {
    (0u8..8).prop_map(BpfReg)
}

fn src() -> impl Strategy<Value = Src> {
    prop_oneof![reg().prop_map(Src::Reg), any::<u64>().prop_map(Src::Imm)]
}

fn alu_op() -> impl Strategy<Value = BpfAluOp> {
    prop_oneof![
        Just(BpfAluOp::Add),
        Just(BpfAluOp::Sub),
        Just(BpfAluOp::And),
        Just(BpfAluOp::Or),
        Just(BpfAluOp::Xor),
        Just(BpfAluOp::Lsh),
        Just(BpfAluOp::Rsh),
        Just(BpfAluOp::Mul),
    ]
}

/// Instruction generator biased toward verifiable shapes (lookup
/// followed by a null check) but still producing plenty of garbage.
fn inst(len: usize) -> impl Strategy<Value = Inst> {
    let target = 0..len;
    prop_oneof![
        (reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (reg(), reg()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (alu_op(), reg(), src()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        (reg(), 0usize..2, reg()).prop_map(|(dst, map, idx)| Inst::Lookup { dst, map, idx }),
        (reg(), reg()).prop_map(|(dst, ptr)| Inst::LoadInd { dst, ptr }),
        (reg(), reg()).prop_map(|(ptr, src)| Inst::StoreInd { ptr, src }),
        target.clone().prop_map(|target| Inst::Jmp { target }),
        (reg(), target.clone()).prop_map(|(a, target)| Inst::JmpIf {
            cmp: Cmp::Eq,
            a,
            b: Src::Imm(0),
            target
        }),
        (reg(), reg(), target).prop_map(|(a, b, target)| Inst::JmpIf {
            cmp: Cmp::Lt,
            a,
            b: Src::Reg(b),
            target
        }),
        reg().prop_map(|dst| Inst::ReadClock { dst }),
        Just(Inst::Exit),
    ]
}

/// Registers with ids well outside `r0`–`r7` — the kind of value a
/// deserializer hands the verifier when the wire bytes are hostile.
fn wild_reg() -> impl Strategy<Value = BpfReg> {
    any::<u8>().prop_map(BpfReg)
}

fn wild_src() -> impl Strategy<Value = Src> {
    prop_oneof![wild_reg().prop_map(Src::Reg), any::<u64>().prop_map(Src::Imm)]
}

/// Arbitrary instructions: any register id, any map index, any jump
/// target — nothing is assumed well-formed.
fn wild_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (wild_reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (wild_reg(), wild_reg()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (alu_op(), wild_reg(), wild_src()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        (wild_reg(), any::<usize>(), wild_reg())
            .prop_map(|(dst, map, idx)| Inst::Lookup { dst, map, idx }),
        (wild_reg(), wild_reg()).prop_map(|(dst, ptr)| Inst::LoadInd { dst, ptr }),
        (wild_reg(), wild_reg()).prop_map(|(ptr, src)| Inst::StoreInd { ptr, src }),
        any::<usize>().prop_map(|target| Inst::Jmp { target }),
        (
            prop_oneof![Just(Cmp::Eq), Just(Cmp::Ne), Just(Cmp::Lt), Just(Cmp::Ge)],
            wild_reg(),
            wild_src(),
            any::<usize>()
        )
            .prop_map(|(cmp, a, b, target)| Inst::JmpIf { cmp, a, b, target }),
        wild_reg().prop_map(|dst| Inst::ReadClock { dst }),
        Just(Inst::Exit),
    ]
}

/// Arbitrary map declarations built by struct literal, bypassing the
/// `MapDef::new` invariants exactly as a deserialized request can.
fn wild_map() -> impl Strategy<Value = MapDef> {
    (any::<usize>(), any::<u64>()).prop_map(|(elem_size, len)| MapDef {
        name: "wild".into(),
        elem_size,
        len,
    })
}

fn wild_program() -> impl Strategy<Value = BpfProgram> {
    (
        prop::collection::vec(wild_map(), 0..4),
        prop::collection::vec(wild_inst(), 0..24),
    )
        .prop_map(|(maps, insts)| BpfProgram { maps, insts })
}

fn program() -> impl Strategy<Value = BpfProgram> {
    prop::collection::vec(inst(12), 1..12).prop_map(|mut insts| {
        insts.push(Inst::Exit);
        BpfProgram {
            maps: vec![MapDef::new("m0", 8, 8), MapDef::new("m1", 1, 32)],
            insts,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn verified_programs_never_escape_the_sandbox(p in program()) {
        let Ok(_) = crate::verifier::verify(&p) else {
            return Ok(()); // rejected: nothing to check
        };
        let layout = SandboxLayout::at(0x1000, &p.maps);
        let (lo, hi) = layout.region();

        let mut asm = Asm::new();
        compile(&mut asm, "p", &p, &layout).expect("verified implies compilable");
        asm.halt();
        let isa = asm.assemble().expect("assembles");

        let cfg = SimConfig {
            mem_size: 1 << 16,
            ..SimConfig::default()
        };
        let mut m = Machine::new(cfg);
        m.load_program(&isa);
        // Canary pattern everywhere outside the sandbox region.
        for addr in (0..cfg.mem_size as u64).step_by(8) {
            if addr + 8 <= lo || addr >= hi {
                m.mem_mut().write_u64(addr, 0xC0FF_EE00_0000_0000 | addr).unwrap();
            }
        }
        let before: Vec<u8> = m.mem().read_bytes(0, cfg.mem_size).unwrap().to_vec();

        match m.run(200_000) {
            Ok(_) | Err(SimError::Timeout { .. }) => {}
            Err(e) => prop_assert!(false, "verified program faulted: {e}"),
        }

        // Every byte outside [lo, hi) is untouched.
        let after = m.mem().read_bytes(0, cfg.mem_size).unwrap();
        for (i, (&x, &y)) in before.iter().zip(after).enumerate() {
            let a = i as u64;
            if a < lo || a >= hi {
                prop_assert_eq!(x, y, "byte {:#x} outside sandbox changed", a);
            }
        }
    }

    /// The service-boundary guarantee (pandora-server feeds the
    /// verifier raw request bodies): malformed programs are *rejected*,
    /// never a panic. Runs under the default limits so the cap paths
    /// are exercised too.
    #[test]
    fn malformed_programs_never_panic_the_verifier(p in wild_program()) {
        let got = std::panic::catch_unwind(|| crate::verifier::verify(&p));
        let verdict = match got {
            Ok(v) => v,
            Err(_) => {
                prop_assert!(false, "verifier panicked on {:?}", p);
                unreachable!()
            }
        };
        // And acceptance implies every operand really was in range.
        if verdict.is_ok() {
            for inst in &p.insts {
                let regs: Vec<u8> = match *inst {
                    Inst::MovImm { dst, .. } | Inst::ReadClock { dst } => vec![dst.0],
                    Inst::MovReg { dst, src } => vec![dst.0, src.0],
                    Inst::Alu { dst, src, .. } => match src {
                        Src::Reg(r) => vec![dst.0, r.0],
                        Src::Imm(_) => vec![dst.0],
                    },
                    Inst::Lookup { dst, idx, .. } => vec![dst.0, idx.0],
                    Inst::LoadInd { dst, ptr } => vec![dst.0, ptr.0],
                    Inst::StoreInd { ptr, src } => vec![ptr.0, src.0],
                    Inst::JmpIf { a, b, .. } => match b {
                        Src::Reg(r) => vec![a.0, r.0],
                        Src::Imm(_) => vec![a.0],
                    },
                    Inst::Jmp { .. } | Inst::Exit => vec![],
                };
                for r in regs {
                    prop_assert!((r as usize) < BpfReg::COUNT);
                }
            }
        }
    }

    #[test]
    fn rejected_programs_emit_nothing(p in program()) {
        if crate::verifier::verify(&p).is_ok() {
            return Ok(());
        }
        let layout = SandboxLayout::at(0x1000, &p.maps);
        let mut asm = Asm::new();
        prop_assert!(compile(&mut asm, "p", &p, &layout).is_err());
        prop_assert_eq!(asm.here(), 0);
    }
}
