//! The JIT: compiles verified sandbox bytecode to the Pandora ISA.
//!
//! The lowering mirrors the kernel's eBPF JIT as shown in paper
//! Fig 7b: a `Lookup` inlines the array bounds check (`bltu idx, len`)
//! and computes `base + idx * elem_size`; a subsequent `LoadInd` is a
//! plain load with **no additional memory accesses in between** — which
//! is exactly what lets the IMP observe the `X[Y[Z[i]]]` value/address
//! correlation (§V-B1).
//!
//! Only programs accepted by the [`verifier`](crate::verifier) can be
//! compiled: the compiler consumes the verifier's type states (to learn
//! each pointer's map, and thus access width).

use pandora_isa::{AluOp, Asm, Reg};

use crate::bytecode::{BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, Src};
use crate::verifier::{verify, VerifiedProgram, VerifyError};

/// Where each map lives in simulated memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SandboxLayout {
    bases: Vec<u64>,
    end: u64,
    region_start: u64,
}

impl SandboxLayout {
    /// Lays the maps out contiguously from `base`, each aligned to a
    /// 64-byte line.
    #[must_use]
    pub fn at(base: u64, maps: &[MapDef]) -> SandboxLayout {
        let mut cur = (base + 63) & !63;
        let region_start = cur;
        let bases = maps
            .iter()
            .map(|m| {
                let b = cur;
                cur = (cur + m.byte_size() + 63) & !63;
                b
            })
            .collect();
        SandboxLayout {
            bases,
            end: cur,
            region_start,
        }
    }

    /// The base address of map `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn map_base(&self, i: usize) -> u64 {
        self.bases[i]
    }

    /// The sandbox's address range `[start, end)` — everything the
    /// verified program can architecturally touch.
    #[must_use]
    pub fn region(&self) -> (u64, u64) {
        (self.region_start, self.end)
    }
}

/// What the JIT produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Compiled {
    /// ISA instruction index at which each bytecode instruction starts.
    pub inst_starts: Vec<usize>,
    /// For each `LoadInd` bytecode instruction (by bytecode pc), the
    /// ISA pc of the emitted load — the PCs the prefetcher trains on.
    pub load_pcs: Vec<(usize, usize)>,
}

/// BPF register i is carried in ISA register a_i.
fn isa_reg(r: BpfReg) -> Reg {
    [
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
    ][r.index()]
}

fn isa_alu(op: BpfAluOp) -> AluOp {
    match op {
        BpfAluOp::Add => AluOp::Add,
        BpfAluOp::Sub => AluOp::Sub,
        BpfAluOp::And => AluOp::And,
        BpfAluOp::Or => AluOp::Or,
        BpfAluOp::Xor => AluOp::Xor,
        BpfAluOp::Lsh => AluOp::Sll,
        BpfAluOp::Rsh => AluOp::Srl,
        BpfAluOp::Mul => AluOp::Mul,
    }
}

fn width_of(elem: usize) -> pandora_isa::Width {
    match elem {
        1 => pandora_isa::Width::Byte,
        2 => pandora_isa::Width::Half,
        4 => pandora_isa::Width::Word,
        // Struct-sized elements: access the first 8 bytes.
        _ => pandora_isa::Width::Dword,
    }
}

/// Verifies `prog` and, on success, emits it into `asm`.
///
/// `prefix` namespaces the internal labels so several programs can be
/// compiled into one `Asm`. Execution falls through to the instruction
/// after the emitted code when the program `Exit`s.
///
/// # Errors
///
/// Returns the verifier's error if the program is unsafe; unsafe
/// programs are never emitted.
pub fn compile(
    asm: &mut Asm,
    prefix: &str,
    prog: &BpfProgram,
    layout: &SandboxLayout,
) -> Result<Compiled, VerifyError> {
    let verified = verify(prog)?;
    Ok(emit(asm, prefix, prog, &verified, layout))
}

fn label(prefix: &str, kind: &str, idx: usize) -> String {
    format!("{prefix}_{kind}_{idx}")
}

fn emit(
    asm: &mut Asm,
    prefix: &str,
    prog: &BpfProgram,
    verified: &VerifiedProgram,
    layout: &SandboxLayout,
) -> Compiled {
    let mut inst_starts = Vec::with_capacity(prog.insts.len());
    let mut load_pcs = Vec::new();
    let exit_label = format!("{prefix}_exit");

    for (pc, &inst) in prog.insts.iter().enumerate() {
        asm.label(label(prefix, "i", pc));
        inst_starts.push(asm.here());
        match inst {
            Inst::MovImm { dst, imm } => {
                asm.li(isa_reg(dst), imm);
            }
            Inst::MovReg { dst, src } => {
                asm.mv(isa_reg(dst), isa_reg(src));
            }
            Inst::Alu { op, dst, src } => match src {
                Src::Reg(r) => {
                    asm.alu(isa_alu(op), isa_reg(dst), isa_reg(dst), isa_reg(r));
                }
                Src::Imm(v) => {
                    asm.alui(isa_alu(op), isa_reg(dst), isa_reg(dst), v as i64);
                }
            },
            Inst::Lookup { dst, map, idx } => {
                // Fig 7b: bounds check, then base + idx * elem.
                let m = &prog.maps[map];
                let in_bounds = label(prefix, "ok", pc);
                let done = label(prefix, "dn", pc);
                asm.li(Reg::T0, m.len);
                asm.bltu(isa_reg(idx), Reg::T0, in_bounds.clone());
                asm.li(isa_reg(dst), 0); // out of bounds: NULL
                asm.j(done.clone());
                asm.label(in_bounds);
                let shift = m.elem_size.trailing_zeros() as i64;
                asm.slli(Reg::T1, isa_reg(idx), shift);
                asm.li(isa_reg(dst), layout.map_base(map));
                asm.add(isa_reg(dst), isa_reg(dst), Reg::T1);
                asm.label(done);
            }
            Inst::LoadInd { dst, ptr } => {
                let map = verified.ptr_map(pc, ptr);
                load_pcs.push((pc, asm.here()));
                asm.load(
                    isa_reg(dst),
                    isa_reg(ptr),
                    0,
                    width_of(prog.maps[map].elem_size),
                    false,
                );
            }
            Inst::StoreInd { ptr, src } => {
                let map = verified.ptr_map(pc, ptr);
                asm.store(
                    isa_reg(src),
                    isa_reg(ptr),
                    0,
                    width_of(prog.maps[map].elem_size),
                );
            }
            Inst::Jmp { target } => {
                asm.j(label(prefix, "i", target));
            }
            Inst::JmpIf { cmp, a, b, target } => {
                let rb = match b {
                    Src::Reg(r) => isa_reg(r),
                    Src::Imm(0) => Reg::ZERO,
                    Src::Imm(v) => {
                        asm.li(Reg::T0, v);
                        Reg::T0
                    }
                };
                let t = label(prefix, "i", target);
                match cmp {
                    Cmp::Eq => asm.beq(isa_reg(a), rb, t),
                    Cmp::Ne => asm.bne(isa_reg(a), rb, t),
                    Cmp::Lt => asm.bltu(isa_reg(a), rb, t),
                    Cmp::Ge => asm.bgeu(isa_reg(a), rb, t),
                };
            }
            Inst::ReadClock { dst } => {
                // Helper calls serialize: drain the pipeline first so
                // the reading straddles exactly the preceding work.
                asm.fence();
                asm.rdcycle(isa_reg(dst));
            }
            Inst::Exit => {
                asm.j(exit_label.clone());
            }
        }
    }
    asm.label(exit_label);
    Compiled {
        inst_starts,
        load_pcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{Machine, SimConfig};

    fn r(i: u8) -> BpfReg {
        BpfReg(i)
    }

    /// A verified program that sums map0[0..4] into map1[0].
    fn sum_program() -> BpfProgram {
        let mut p = BpfProgram::new(vec![
            MapDef::new("src", 8, 4),
            MapDef::new("dst", 8, 1),
        ]);
        p.push(Inst::MovImm { dst: r(1), imm: 0 }); // i = 0
        p.push(Inst::MovImm { dst: r(2), imm: 0 }); // acc = 0
        // 2: loop body
        p.push(Inst::Lookup {
            dst: r(3),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::JmpIf {
            cmp: Cmp::Eq,
            a: r(3),
            b: Src::Imm(0),
            target: 9,
        });
        p.push(Inst::LoadInd {
            dst: r(4),
            ptr: r(3),
        });
        p.push(Inst::Alu {
            op: BpfAluOp::Add,
            dst: r(2),
            src: Src::Reg(r(4)),
        });
        p.push(Inst::Alu {
            op: BpfAluOp::Add,
            dst: r(1),
            src: Src::Imm(1),
        });
        p.push(Inst::JmpIf {
            cmp: Cmp::Lt,
            a: r(1),
            b: Src::Imm(4),
            target: 2,
        });
        // 8: store result
        p.push(Inst::MovImm { dst: r(5), imm: 0 });
        // 9: (also the null-exit target)
        p.push(Inst::Lookup {
            dst: r(6),
            map: 1,
            idx: r(5),
        });
        p.push(Inst::JmpIf {
            cmp: Cmp::Eq,
            a: r(6),
            b: Src::Imm(0),
            target: 13,
        });
        p.push(Inst::StoreInd {
            ptr: r(6),
            src: r(2),
        });
        p.push(Inst::Exit); // 12
        p.push(Inst::Exit); // 13
        p
    }

    #[test]
    fn compiled_program_computes_correctly() {
        let prog = sum_program();
        let layout = SandboxLayout::at(0x8000, &prog.maps);
        let mut asm = Asm::new();
        let compiled = compile(&mut asm, "sbx", &prog, &layout).expect("verifies");
        asm.halt();
        let isa = asm.assemble().unwrap();

        let mut m = Machine::new(SimConfig::default());
        m.load_program(&isa);
        for (i, v) in [11u64, 22, 33, 44].iter().enumerate() {
            m.mem_mut()
                .write_u64(layout.map_base(0) + 8 * i as u64, *v)
                .unwrap();
        }
        m.run(1_000_000).unwrap();
        assert_eq!(m.mem().read_u64(layout.map_base(1)).unwrap(), 110);
        assert!(!compiled.load_pcs.is_empty());
    }

    #[test]
    fn bug_path_sets_null_and_exits() {
        // Wait for r5 = 99 (out of bounds): lookup must yield null and
        // the program must exit without storing.
        let mut p = BpfProgram::new(vec![MapDef::new("m", 8, 4)]);
        p.push(Inst::MovImm { dst: r(1), imm: 99 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::JmpIf {
            cmp: Cmp::Eq,
            a: r(2),
            b: Src::Imm(0),
            target: 5,
        });
        p.push(Inst::MovImm { dst: r(3), imm: 1 });
        p.push(Inst::StoreInd {
            ptr: r(2),
            src: r(3),
        });
        p.push(Inst::Exit);

        let layout = SandboxLayout::at(0x8000, &p.maps);
        let mut asm = Asm::new();
        compile(&mut asm, "sbx", &p, &layout).expect("verifies");
        asm.halt();
        let isa = asm.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&isa);
        m.run(100_000).unwrap();
        // Nothing was stored anywhere in the map.
        for i in 0..4 {
            assert_eq!(m.mem().read_u64(layout.map_base(0) + 8 * i).unwrap(), 0);
        }
    }

    #[test]
    fn unsafe_program_is_never_emitted() {
        let mut p = BpfProgram::new(vec![MapDef::new("m", 8, 4)]);
        p.push(Inst::MovImm { dst: r(1), imm: 0 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::LoadInd {
            dst: r(3),
            ptr: r(2),
        }); // no null check
        p.push(Inst::Exit);
        let layout = SandboxLayout::at(0x8000, &p.maps);
        let mut asm = Asm::new();
        assert!(compile(&mut asm, "sbx", &p, &layout).is_err());
        assert_eq!(asm.here(), 0, "nothing emitted");
    }

    #[test]
    fn layout_is_line_aligned_and_disjoint() {
        let maps = vec![
            MapDef::new("a", 1, 100),
            MapDef::new("b", 8, 7),
            MapDef::new("c", 4, 3),
        ];
        let l = SandboxLayout::at(0x1001, &maps);
        assert_eq!(l.map_base(0) % 64, 0);
        assert!(l.map_base(1) >= l.map_base(0) + 100);
        assert!(l.map_base(2) >= l.map_base(1) + 56);
        let (s, e) = l.region();
        assert!(s <= l.map_base(0) && e >= l.map_base(2) + 12);
    }
}
