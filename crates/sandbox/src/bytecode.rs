//! The sandbox bytecode: a small eBPF-like instruction set.
//!
//! Programs operate on eight general registers and a set of declared
//! *maps* (fixed-size arrays, as `BPF_ARRAY` in Fig 7a). The only way
//! to touch memory is through [`Inst::Lookup`] — which, like eBPF's
//! `bpf_map_lookup_elem`, returns a pointer **or null** — followed by
//! [`Inst::LoadInd`]/[`Inst::StoreInd`] on a pointer the verifier has
//! proven non-null. The JIT inlines the lookup's bounds check exactly
//! as the kernel does (paper Fig 7b).

use std::fmt;

/// A bytecode register, `r0`–`r7`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BpfReg(pub u8);

impl BpfReg {
    /// Number of bytecode registers.
    pub const COUNT: usize = 8;

    /// The register index.
    ///
    /// # Panics
    ///
    /// Panics if the register id is out of range.
    #[must_use]
    pub fn index(self) -> usize {
        assert!((self.0 as usize) < BpfReg::COUNT, "bad register r{}", self.0);
        self.0 as usize
    }
}

impl fmt::Display for BpfReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// ALU operations available to sandbox code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BpfAluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Lsh,
    /// Logical shift right.
    Rsh,
    /// Wrapping multiplication.
    Mul,
}

/// A second operand: register or immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Src {
    /// A register operand.
    Reg(BpfReg),
    /// An immediate operand.
    Imm(u64),
}

/// Comparison conditions for conditional jumps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned greater-or-equal.
    Ge,
}

/// One bytecode instruction. Jump targets are instruction indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `dst = imm`
    MovImm {
        /// Destination register.
        dst: BpfReg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = src`
    MovReg {
        /// Destination register.
        dst: BpfReg,
        /// Source register.
        src: BpfReg,
    },
    /// `dst = op(dst, src)` — scalars only; pointer arithmetic is
    /// rejected by the verifier.
    Alu {
        /// The operation.
        op: BpfAluOp,
        /// Destination (and first operand) register.
        dst: BpfReg,
        /// Second operand.
        src: Src,
    },
    /// `dst = &maps[map][idx]` or null if `idx` is out of bounds —
    /// the `BPF_ARRAY.lookup()` of Fig 7a.
    Lookup {
        /// Destination register (becomes a nullable pointer).
        dst: BpfReg,
        /// Map index.
        map: usize,
        /// Index register (scalar).
        idx: BpfReg,
    },
    /// `dst = *ptr` (the map's element width). `ptr` must be a
    /// verified non-null map pointer.
    LoadInd {
        /// Destination register.
        dst: BpfReg,
        /// Pointer register.
        ptr: BpfReg,
    },
    /// `*ptr = src`.
    StoreInd {
        /// Pointer register.
        ptr: BpfReg,
        /// Source (data) register; must be a scalar.
        src: BpfReg,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional jump: `if cmp(a, b) goto target`.
    JmpIf {
        /// Comparison condition.
        cmp: Cmp,
        /// First comparison operand.
        a: BpfReg,
        /// Second comparison operand.
        b: Src,
        /// Target instruction index.
        target: usize,
    },
    /// Read the cycle counter (models `bpf_ktime_get_ns`, the timer
    /// sandboxed receivers use).
    ReadClock {
        /// Destination register.
        dst: BpfReg,
    },
    /// Return from the program.
    Exit,
}

/// A declared map: a fixed-length array of fixed-width elements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapDef {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Element width in bytes: a power of two up to 256. Elements
    /// wider than 8 bytes model arrays of structs (loads and stores
    /// access the first 8 bytes of the element).
    pub elem_size: usize,
    /// Number of elements.
    pub len: u64,
}

impl MapDef {
    /// Creates a map definition.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is not a power of two in `1..=256`, or
    /// `len` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, elem_size: usize, len: u64) -> MapDef {
        assert!(
            elem_size.is_power_of_two() && elem_size <= 256,
            "element size must be a power of two up to 256"
        );
        assert!(len > 0, "maps must have at least one element");
        MapDef {
            name: name.into(),
            elem_size,
            len,
        }
    }

    /// The map's total size in bytes.
    #[must_use]
    pub fn byte_size(&self) -> u64 {
        self.len * self.elem_size as u64
    }
}

/// A sandbox program: maps plus bytecode.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BpfProgram {
    /// Declared maps, referenced by index from [`Inst::Lookup`].
    pub maps: Vec<MapDef>,
    /// The instruction stream.
    pub insts: Vec<Inst>,
}

impl BpfProgram {
    /// Creates an empty program with the given maps.
    #[must_use]
    pub fn new(maps: Vec<MapDef>) -> BpfProgram {
        BpfProgram {
            maps,
            insts: Vec::new(),
        }
    }

    /// Appends an instruction, returning its index.
    pub fn push(&mut self, i: Inst) -> usize {
        self.insts.push(i);
        self.insts.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_def_sizes() {
        let m = MapDef::new("z", 8, 16);
        assert_eq!(m.byte_size(), 128);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn bad_elem_size_rejected() {
        let _ = MapDef::new("z", 3, 16);
    }

    #[test]
    fn struct_sized_elements_allowed() {
        let m = MapDef::new("x", 64, 256);
        assert_eq!(m.byte_size(), 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_map_rejected() {
        let _ = MapDef::new("z", 8, 0);
    }

    #[test]
    fn program_push_returns_indices() {
        let mut p = BpfProgram::new(vec![]);
        assert_eq!(p.push(Inst::Exit), 0);
        assert_eq!(p.push(Inst::Exit), 1);
    }

    #[test]
    fn reg_display_and_index() {
        assert_eq!(BpfReg(3).to_string(), "r3");
        assert_eq!(BpfReg(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "bad register")]
    fn reg_index_out_of_range() {
        let _ = BpfReg(8).index();
    }
}
