//! The static verifier: the sandbox's software memory-safety checks.
//!
//! An abstract interpretation over a small register-type lattice,
//! modelled on the eBPF verifier's pointer discipline:
//!
//! * the only way to obtain a pointer is [`Inst::Lookup`], which yields
//!   a **nullable** map pointer;
//! * a nullable pointer must be compared against null before it can be
//!   dereferenced (the `if (!v) return 0;` incantations of Fig 7a —
//!   "bounds checks in disguise", because an out-of-bounds lookup
//!   returns null);
//! * pointer arithmetic, storing pointers to memory, and ordered
//!   pointer comparisons are rejected.
//!
//! A program that passes this verifier cannot architecturally read or
//! write outside its declared maps. The paper's point (§V-B) is that
//! the 3-level IMP breaks this guarantee *microarchitecturally* — the
//! very same verified program steers the prefetcher to arbitrary
//! memory.
//!
//! Unlike the kernel's verifier this one does not prove *termination*
//! (no instruction-budget simulation): the property the attack bypasses
//! — and that the property-based soundness tests check — is memory
//! safety, which is independent of run length.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::bytecode::{BpfProgram, BpfReg, Cmp, Inst, Src};

/// The abstract type of one register.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RegType {
    /// Unusable (e.g. an imprecise join of incompatible types).
    #[default]
    Unusable,
    /// An integer.
    Scalar,
    /// A pointer into map `map`'s value space, possibly null.
    NullablePtr {
        /// The map the pointer belongs to.
        map: usize,
    },
    /// A pointer into map `map`, proven non-null.
    Ptr {
        /// The map the pointer belongs to.
        map: usize,
    },
}

impl RegType {
    fn join(a: RegType, b: RegType) -> RegType {
        use RegType::{NullablePtr, Ptr, Scalar, Unusable};
        match (a, b) {
            _ if a == b => a,
            (Ptr { map: m1 }, NullablePtr { map: m2 })
            | (NullablePtr { map: m1 }, Ptr { map: m2 })
                if m1 == m2 =>
            {
                NullablePtr { map: m1 }
            }
            // A null-branch pointer degrades to a scalar; joining it
            // with the pointer view keeps the nullable pointer.
            (Scalar, p @ NullablePtr { .. }) | (p @ NullablePtr { .. }, Scalar) => p,
            (Unusable, _) | (_, Unusable) => Unusable,
            _ => Unusable,
        }
    }
}

/// Resource caps applied before type-checking untrusted programs.
///
/// The verifier is exposed to hostile input by the scan service
/// (`pandora-server`), where a submitted program is parsed straight out
/// of a request body. These caps bound the two resources a malicious
/// submission could otherwise inflate without ever executing: verifier
/// work (instruction count — the worklist is O(insts × joins)) and the
/// sandbox's data-memory footprint (sum of declared map sizes, which
/// the JIT would otherwise have to lay out in simulated memory).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyLimits {
    /// Maximum number of bytecode instructions.
    pub max_insts: usize,
    /// Maximum total declared map footprint in bytes.
    pub max_map_bytes: u64,
}

impl Default for VerifyLimits {
    /// Generous defaults: far above anything the repo's own programs
    /// need, low enough that a hostile submission cannot make the
    /// verifier or JIT do unbounded work.
    fn default() -> VerifyLimits {
        VerifyLimits {
            max_insts: 4096,
            max_map_bytes: 1 << 20,
        }
    }
}

/// Why verification failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// Arithmetic on (or with) a pointer.
    PointerArithmetic {
        /// The offending instruction index.
        pc: usize,
        /// The offending register.
        reg: BpfReg,
    },
    /// Dereference of a possibly-null pointer (missing null check).
    DerefNullable {
        /// The offending instruction index.
        pc: usize,
        /// The offending register.
        reg: BpfReg,
    },
    /// Dereference of a non-pointer.
    DerefNonPointer {
        /// The offending instruction index.
        pc: usize,
        /// The offending register.
        reg: BpfReg,
    },
    /// Storing a pointer value into a map.
    PointerStore {
        /// The offending instruction index.
        pc: usize,
        /// The offending register.
        reg: BpfReg,
    },
    /// Ordered comparison involving a pointer, or comparison against a
    /// non-zero constant.
    PointerComparison {
        /// The offending instruction index.
        pc: usize,
        /// The offending register.
        reg: BpfReg,
    },
    /// `Lookup` index operand is not a scalar.
    NonScalarIndex {
        /// The offending instruction index.
        pc: usize,
        /// The offending register.
        reg: BpfReg,
    },
    /// Reference to an undeclared map.
    UnknownMap {
        /// The offending instruction index.
        pc: usize,
        /// The undeclared map index.
        map: usize,
    },
    /// A jump target outside the program.
    BadJumpTarget {
        /// The offending instruction index.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// Control flow can fall off the end of the program.
    MissingExit {
        /// The offending instruction index.
        pc: usize,
    },
    /// An instruction is unreachable (as in eBPF, dead code is
    /// rejected rather than left unverified).
    UnreachableCode {
        /// The offending instruction index.
        pc: usize,
    },
    /// The program exceeds the instruction-count cap.
    TooManyInstructions {
        /// Number of instructions submitted.
        count: usize,
        /// The configured cap.
        max: usize,
    },
    /// The declared maps exceed the total memory-footprint cap.
    MapFootprint {
        /// Total declared bytes (saturating).
        bytes: u64,
        /// The configured cap.
        max: u64,
    },
    /// A register operand outside `r0`–`r7`. Well-formed builders can
    /// not produce this, but a deserialized program can.
    BadRegister {
        /// The offending instruction index.
        pc: usize,
        /// The raw register id.
        reg: u8,
    },
    /// A declared map has an invalid shape (element size not a power
    /// of two in `1..=256`, or zero length).
    /// [`MapDef::new`](crate::bytecode::MapDef::new) enforces this at
    /// construction, but the fields are public and a deserialized map
    /// bypasses the constructor.
    BadMapShape {
        /// The offending map index.
        map: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::PointerArithmetic { pc, reg } => {
                write!(f, "pc {pc}: arithmetic on pointer {reg}")
            }
            VerifyError::DerefNullable { pc, reg } => write!(
                f,
                "pc {pc}: dereference of possibly-null pointer {reg} (missing null check)"
            ),
            VerifyError::DerefNonPointer { pc, reg } => {
                write!(f, "pc {pc}: dereference of non-pointer {reg}")
            }
            VerifyError::PointerStore { pc, reg } => {
                write!(f, "pc {pc}: storing pointer {reg} to memory")
            }
            VerifyError::PointerComparison { pc, reg } => {
                write!(f, "pc {pc}: invalid comparison involving pointer {reg}")
            }
            VerifyError::NonScalarIndex { pc, reg } => {
                write!(f, "pc {pc}: lookup index {reg} is not a scalar")
            }
            VerifyError::UnknownMap { pc, map } => write!(f, "pc {pc}: unknown map {map}"),
            VerifyError::BadJumpTarget { pc, target } => {
                write!(f, "pc {pc}: jump target {target} out of range")
            }
            VerifyError::MissingExit { pc } => {
                write!(f, "pc {pc}: control flow falls off the program end")
            }
            VerifyError::UnreachableCode { pc } => {
                write!(f, "pc {pc}: unreachable instruction")
            }
            VerifyError::TooManyInstructions { count, max } => {
                write!(f, "{count} instructions exceeds the cap of {max}")
            }
            VerifyError::MapFootprint { bytes, max } => {
                write!(f, "declared maps total {bytes} B, exceeding the cap of {max} B")
            }
            VerifyError::BadRegister { pc, reg } => {
                write!(f, "pc {pc}: register r{reg} out of range")
            }
            VerifyError::BadMapShape { map } => {
                write!(f, "map {map}: invalid shape (element size must be a power of two in 1..=256, length nonzero)")
            }
        }
    }
}

impl Error for VerifyError {}

/// One abstract machine state: the types of all registers.
pub type RegState = [RegType; BpfReg::COUNT];

/// A successfully verified program: the per-instruction incoming
/// register states the compiler uses (e.g. to learn which map a
/// dereferenced pointer belongs to).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifiedProgram {
    /// State *before* each instruction (None = unreachable).
    pub in_states: Vec<Option<RegState>>,
}

impl VerifiedProgram {
    /// The map a pointer register refers to at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is unreachable or the register is not a pointer —
    /// impossible for a program this verifier accepted.
    #[must_use]
    pub fn ptr_map(&self, pc: usize, reg: BpfReg) -> usize {
        match self.in_states[pc].expect("reachable")[reg.index()] {
            RegType::Ptr { map } | RegType::NullablePtr { map } => map,
            t => panic!("{reg} at pc {pc} is not a pointer (found {t:?})"),
        }
    }
}

/// Validates everything the abstract interpreter *assumes*: resource
/// caps, register ids in range, map shapes that could only arise by
/// bypassing [`MapDef::new`](crate::bytecode::MapDef::new). Run first
/// so the type-checking pass below can index register state arrays
/// without panicking on hostile input.
fn prevalidate(prog: &BpfProgram, limits: &VerifyLimits) -> Result<(), VerifyError> {
    if prog.insts.len() > limits.max_insts {
        return Err(VerifyError::TooManyInstructions {
            count: prog.insts.len(),
            max: limits.max_insts,
        });
    }
    for (i, m) in prog.maps.iter().enumerate() {
        if !m.elem_size.is_power_of_two() || m.elem_size > 256 || m.len == 0 {
            return Err(VerifyError::BadMapShape { map: i });
        }
    }
    let bytes = prog.maps.iter().fold(0u64, |acc, m| {
        acc.saturating_add(m.len.saturating_mul(m.elem_size as u64))
    });
    if bytes > limits.max_map_bytes {
        return Err(VerifyError::MapFootprint {
            bytes,
            max: limits.max_map_bytes,
        });
    }
    let ok = |r: BpfReg| (r.0 as usize) < BpfReg::COUNT;
    for (pc, inst) in prog.insts.iter().enumerate() {
        let bad = match *inst {
            Inst::MovImm { dst, .. } | Inst::ReadClock { dst } => (!ok(dst)).then_some(dst),
            Inst::MovReg { dst, src } => [dst, src].into_iter().find(|&r| !ok(r)),
            Inst::Alu { dst, src, .. } => {
                (!ok(dst)).then_some(dst).or(match src {
                    Src::Reg(r) if !ok(r) => Some(r),
                    _ => None,
                })
            }
            Inst::Lookup { dst, idx, .. } => [dst, idx].into_iter().find(|&r| !ok(r)),
            Inst::LoadInd { dst, ptr } => [dst, ptr].into_iter().find(|&r| !ok(r)),
            Inst::StoreInd { ptr, src } => [ptr, src].into_iter().find(|&r| !ok(r)),
            Inst::JmpIf { a, b, .. } => (!ok(a)).then_some(a).or(match b {
                Src::Reg(r) if !ok(r) => Some(r),
                _ => None,
            }),
            Inst::Jmp { .. } | Inst::Exit => None,
        };
        if let Some(reg) = bad {
            return Err(VerifyError::BadRegister { pc, reg: reg.0 });
        }
    }
    Ok(())
}

/// Verifies `prog` under [`VerifyLimits::default`] — see
/// [`verify_with_limits`].
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered (by worklist order).
pub fn verify(prog: &BpfProgram) -> Result<VerifiedProgram, VerifyError> {
    verify_with_limits(prog, &VerifyLimits::default())
}

/// Verifies `prog`, returning per-instruction type states on success.
///
/// Safe on fully untrusted input: malformed programs (out-of-range
/// registers, invalid map shapes, over-cap resource use) are rejected
/// with a structured error, never a panic.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered (by worklist order).
pub fn verify_with_limits(
    prog: &BpfProgram,
    limits: &VerifyLimits,
) -> Result<VerifiedProgram, VerifyError> {
    prevalidate(prog, limits)?;
    let n = prog.insts.len();
    let mut in_states: Vec<Option<RegState>> = vec![None; n];
    let mut work: VecDeque<(usize, RegState)> = VecDeque::new();
    work.push_back((0, [RegType::Scalar; BpfReg::COUNT]));

    let check_target = |pc: usize, target: usize| -> Result<(), VerifyError> {
        if target >= n {
            Err(VerifyError::BadJumpTarget { pc, target })
        } else {
            Ok(())
        }
    };

    while let Some((pc, state)) = work.pop_front() {
        if pc >= n {
            return Err(VerifyError::MissingExit { pc: pc.saturating_sub(1) });
        }
        // Join with anything previously seen at this pc; skip if no change.
        let merged = match in_states[pc] {
            Some(old) => {
                let joined: RegState =
                    std::array::from_fn(|i| RegType::join(old[i], state[i]));
                if joined == old {
                    continue;
                }
                joined
            }
            None => state,
        };
        in_states[pc] = Some(merged);
        let mut st = merged;

        let scalar_of = |st: &RegState, r: BpfReg| st[r.index()];

        match prog.insts[pc] {
            Inst::MovImm { dst, .. } | Inst::ReadClock { dst } => {
                st[dst.index()] = RegType::Scalar;
                work.push_back((pc + 1, st));
            }
            Inst::MovReg { dst, src } => {
                st[dst.index()] = st[src.index()];
                work.push_back((pc + 1, st));
            }
            Inst::Alu { dst, src, .. } => {
                if !matches!(scalar_of(&st, dst), RegType::Scalar) {
                    return Err(VerifyError::PointerArithmetic { pc, reg: dst });
                }
                if let Src::Reg(r) = src {
                    if !matches!(scalar_of(&st, r), RegType::Scalar) {
                        return Err(VerifyError::PointerArithmetic { pc, reg: r });
                    }
                }
                st[dst.index()] = RegType::Scalar;
                work.push_back((pc + 1, st));
            }
            Inst::Lookup { dst, map, idx } => {
                if map >= prog.maps.len() {
                    return Err(VerifyError::UnknownMap { pc, map });
                }
                if !matches!(scalar_of(&st, idx), RegType::Scalar) {
                    return Err(VerifyError::NonScalarIndex { pc, reg: idx });
                }
                st[dst.index()] = RegType::NullablePtr { map };
                work.push_back((pc + 1, st));
            }
            Inst::LoadInd { dst, ptr } => {
                match scalar_of(&st, ptr) {
                    RegType::Ptr { .. } => {}
                    RegType::NullablePtr { .. } => {
                        return Err(VerifyError::DerefNullable { pc, reg: ptr })
                    }
                    _ => return Err(VerifyError::DerefNonPointer { pc, reg: ptr }),
                }
                st[dst.index()] = RegType::Scalar;
                work.push_back((pc + 1, st));
            }
            Inst::StoreInd { ptr, src } => {
                match scalar_of(&st, ptr) {
                    RegType::Ptr { .. } => {}
                    RegType::NullablePtr { .. } => {
                        return Err(VerifyError::DerefNullable { pc, reg: ptr })
                    }
                    _ => return Err(VerifyError::DerefNonPointer { pc, reg: ptr }),
                }
                if !matches!(scalar_of(&st, src), RegType::Scalar) {
                    return Err(VerifyError::PointerStore { pc, reg: src });
                }
                work.push_back((pc + 1, st));
            }
            Inst::Jmp { target } => {
                check_target(pc, target)?;
                work.push_back((target, st));
            }
            Inst::JmpIf { cmp, a, b, target } => {
                check_target(pc, target)?;
                let a_ty = scalar_of(&st, a);
                match (a_ty, b) {
                    (RegType::Scalar, Src::Imm(_)) => {
                        work.push_back((target, st));
                        work.push_back((pc + 1, st));
                    }
                    (RegType::Scalar, Src::Reg(r)) => {
                        if !matches!(scalar_of(&st, r), RegType::Scalar) {
                            return Err(VerifyError::PointerComparison { pc, reg: r });
                        }
                        work.push_back((target, st));
                        work.push_back((pc + 1, st));
                    }
                    (RegType::NullablePtr { map }, Src::Imm(0)) => {
                        // The null check: refine on each edge.
                        let (mut taken, mut fall) = (st, st);
                        match cmp {
                            Cmp::Eq => {
                                // taken: a is null (a scalar 0);
                                // fallthrough: a is a valid pointer.
                                taken[a.index()] = RegType::Scalar;
                                fall[a.index()] = RegType::Ptr { map };
                            }
                            Cmp::Ne => {
                                taken[a.index()] = RegType::Ptr { map };
                                fall[a.index()] = RegType::Scalar;
                            }
                            Cmp::Lt | Cmp::Ge => {
                                return Err(VerifyError::PointerComparison { pc, reg: a })
                            }
                        }
                        work.push_back((target, taken));
                        work.push_back((pc + 1, fall));
                    }
                    _ => return Err(VerifyError::PointerComparison { pc, reg: a }),
                }
            }
            Inst::Exit => {}
        }
        // Straight-line fall-off detection.
        if pc + 1 == n
            && !matches!(prog.insts[pc], Inst::Exit | Inst::Jmp { .. })
        {
            return Err(VerifyError::MissingExit { pc });
        }
    }
    if let Some(pc) = in_states.iter().position(Option::is_none) {
        return Err(VerifyError::UnreachableCode { pc });
    }
    Ok(VerifiedProgram { in_states })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{BpfAluOp, MapDef};

    fn r(i: u8) -> BpfReg {
        BpfReg(i)
    }

    fn one_map() -> Vec<MapDef> {
        vec![MapDef::new("z", 8, 16)]
    }

    #[test]
    fn accepts_null_checked_deref() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 3 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        let exit = 5;
        p.push(Inst::JmpIf {
            cmp: Cmp::Eq,
            a: r(2),
            b: Src::Imm(0),
            target: exit,
        });
        p.push(Inst::LoadInd {
            dst: r(3),
            ptr: r(2),
        });
        p.push(Inst::StoreInd {
            ptr: r(2),
            src: r(3),
        });
        p.push(Inst::Exit);
        let v = verify(&p).expect("null-checked program verifies");
        assert_eq!(v.ptr_map(3, r(2)), 0);
    }

    #[test]
    fn rejects_unchecked_deref() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 3 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::LoadInd {
            dst: r(3),
            ptr: r(2),
        });
        p.push(Inst::Exit);
        assert_eq!(
            verify(&p),
            Err(VerifyError::DerefNullable { pc: 2, reg: r(2) })
        );
    }

    #[test]
    fn rejects_pointer_arithmetic() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 0 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::Alu {
            op: BpfAluOp::Add,
            dst: r(2),
            src: Src::Imm(64),
        });
        p.push(Inst::Exit);
        assert_eq!(
            verify(&p),
            Err(VerifyError::PointerArithmetic { pc: 2, reg: r(2) })
        );
    }

    #[test]
    fn rejects_deref_of_scalar() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm {
            dst: r(2),
            imm: 0x4000,
        });
        p.push(Inst::LoadInd {
            dst: r(3),
            ptr: r(2),
        });
        p.push(Inst::Exit);
        assert_eq!(
            verify(&p),
            Err(VerifyError::DerefNonPointer { pc: 1, reg: r(2) })
        );
    }

    #[test]
    fn rejects_pointer_store() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 0 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::JmpIf {
            cmp: Cmp::Eq,
            a: r(2),
            b: Src::Imm(0),
            target: 4,
        });
        p.push(Inst::StoreInd {
            ptr: r(2),
            src: r(2),
        });
        p.push(Inst::Exit);
        assert_eq!(
            verify(&p),
            Err(VerifyError::PointerStore { pc: 3, reg: r(2) })
        );
    }

    #[test]
    fn rejects_unknown_map_and_bad_target() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 0 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 7,
            idx: r(1),
        });
        p.push(Inst::Exit);
        assert_eq!(verify(&p), Err(VerifyError::UnknownMap { pc: 1, map: 7 }));

        let mut q = BpfProgram::new(one_map());
        q.push(Inst::Jmp { target: 99 });
        assert_eq!(
            verify(&q),
            Err(VerifyError::BadJumpTarget { pc: 0, target: 99 })
        );
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 0 });
        assert_eq!(verify(&p), Err(VerifyError::MissingExit { pc: 0 }));
    }

    #[test]
    fn loop_with_back_edge_verifies() {
        // for (i = 10; i != 0; i--) {}
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 10 }); // 0
        p.push(Inst::Alu {
            op: BpfAluOp::Sub,
            dst: r(1),
            src: Src::Imm(1),
        }); // 1
        p.push(Inst::JmpIf {
            cmp: Cmp::Ne,
            a: r(1),
            b: Src::Imm(0),
            target: 1,
        }); // 2
        p.push(Inst::Exit); // 3
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn instruction_cap_enforced() {
        let mut p = BpfProgram::new(one_map());
        for _ in 0..10 {
            p.push(Inst::MovImm { dst: r(1), imm: 0 });
        }
        p.push(Inst::Exit);
        let limits = VerifyLimits {
            max_insts: 4,
            ..VerifyLimits::default()
        };
        assert_eq!(
            verify_with_limits(&p, &limits),
            Err(VerifyError::TooManyInstructions { count: 11, max: 4 })
        );
        // Default limits are generous enough for the same program.
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn map_footprint_cap_enforced() {
        let mut p = BpfProgram::new(vec![MapDef::new("big", 8, 1 << 16)]);
        p.push(Inst::Exit);
        let limits = VerifyLimits {
            max_map_bytes: 4096,
            ..VerifyLimits::default()
        };
        assert_eq!(
            verify_with_limits(&p, &limits),
            Err(VerifyError::MapFootprint {
                bytes: 8 << 16,
                max: 4096
            })
        );
    }

    #[test]
    fn map_footprint_sum_saturates_instead_of_overflowing() {
        // Constructed via struct literal: MapDef::new would accept each
        // map alone, but the sum overflows u64.
        let huge = MapDef {
            name: "huge".into(),
            elem_size: 256,
            len: u64::MAX / 2,
        };
        let mut p = BpfProgram::new(vec![huge.clone(), huge]);
        p.push(Inst::Exit);
        match verify(&p) {
            Err(VerifyError::MapFootprint { bytes, .. }) => assert_eq!(bytes, u64::MAX),
            other => panic!("expected MapFootprint, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_register_rejected_not_panicking() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(9), imm: 0 });
        p.push(Inst::Exit);
        assert_eq!(
            verify(&p),
            Err(VerifyError::BadRegister { pc: 0, reg: 9 })
        );

        let mut q = BpfProgram::new(one_map());
        q.push(Inst::Alu {
            op: BpfAluOp::Add,
            dst: r(0),
            src: Src::Reg(r(255)),
        });
        q.push(Inst::Exit);
        assert_eq!(
            verify(&q),
            Err(VerifyError::BadRegister { pc: 0, reg: 255 })
        );
    }

    #[test]
    fn malformed_map_shape_rejected() {
        // Bypasses MapDef::new (public fields), as deserialized input can.
        let m = MapDef {
            name: "bad".into(),
            elem_size: 3,
            len: 1,
        };
        let mut p = BpfProgram::new(vec![m]);
        p.push(Inst::Exit);
        assert_eq!(verify(&p), Err(VerifyError::BadMapShape { map: 0 }));

        let empty = MapDef {
            name: "empty".into(),
            elem_size: 8,
            len: 0,
        };
        let mut q = BpfProgram::new(vec![empty]);
        q.push(Inst::Exit);
        assert_eq!(verify(&q), Err(VerifyError::BadMapShape { map: 0 }));
    }

    #[test]
    fn ordered_pointer_comparison_rejected() {
        let mut p = BpfProgram::new(one_map());
        p.push(Inst::MovImm { dst: r(1), imm: 0 });
        p.push(Inst::Lookup {
            dst: r(2),
            map: 0,
            idx: r(1),
        });
        p.push(Inst::JmpIf {
            cmp: Cmp::Lt,
            a: r(2),
            b: Src::Imm(0),
            target: 3,
        });
        p.push(Inst::Exit);
        assert_eq!(
            verify(&p),
            Err(VerifyError::PointerComparison { pc: 2, reg: r(2) })
        );
    }
}
