//! Microarchitectural event traces.
//!
//! The trace exists to reproduce paper Figure 4 — the per-store
//! sequence of actions under the read-port-stealing silent-store
//! scheme — and to let tests assert on prefetcher behaviour (which
//! addresses the IMP dereferenced, §V-B2).

/// Reasons a store was *not* marked silent (Fig 4, cases B–D).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NonSilentReason {
    /// SS-load returned in time but the values differed (case B).
    ValueMismatch,
    /// No free load port when the store executed; no SS-load was ever
    /// issued (case C).
    NoLoadPort,
    /// The SS-load was issued but had not returned when the store was
    /// ready to perform (case D).
    SsLoadLate,
}

/// A timestamped microarchitectural event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A store's address and data resolved in the execute stage.
    StoreResolved {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
        /// The resolved store address.
        addr: u64,
    },
    /// An SS-load was issued for the store at `pc` (stealing a load port).
    SsLoadIssued {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
        /// The checked address.
        addr: u64,
    },
    /// The SS-load returned; `silent` is the candidacy decision.
    SsLoadReturned {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
        /// The candidacy decision.
        silent: bool,
    },
    /// A store reached the store-queue head.
    StoreAtHead {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
    },
    /// A store dequeued silently (no cache/memory interaction; Fig 4 A).
    StoreSilentDequeue {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
    },
    /// A store began performing to the cache (non-silent path).
    StoreSentToCache {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
        /// Why the store was not silent.
        reason: NonSilentReason,
    },
    /// A store finished performing and dequeued.
    StoreDequeued {
        /// Cycle of the event.
        cycle: u64,
        /// The store's instruction index.
        pc: usize,
    },
    /// The pipeline squashed back to (and excluding) `pc`.
    Squash {
        /// Cycle of the event.
        cycle: u64,
        /// The redirect target's instruction index.
        pc: usize,
    },
    /// The DMP issued a prefetch for `addr` at indirection `level`
    /// (0 = stream array Z, 1 = Y, 2 = X, 3 = W).
    DmpPrefetch {
        /// Cycle of the event.
        cycle: u64,
        /// The prefetched address.
        addr: u64,
        /// Indirection level (0 = stream).
        level: u8,
    },
    /// The DMP dereferenced data memory at `addr` and read `value`
    /// while generating a prefetch chain.
    DmpDeref {
        /// Cycle of the event.
        cycle: u64,
        /// The dereferenced address.
        addr: u64,
        /// The value read.
        value: u64,
    },
}

impl TraceEvent {
    /// The cycle at which the event occurred.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::StoreResolved { cycle, .. }
            | TraceEvent::SsLoadIssued { cycle, .. }
            | TraceEvent::SsLoadReturned { cycle, .. }
            | TraceEvent::StoreAtHead { cycle, .. }
            | TraceEvent::StoreSilentDequeue { cycle, .. }
            | TraceEvent::StoreSentToCache { cycle, .. }
            | TraceEvent::StoreDequeued { cycle, .. }
            | TraceEvent::Squash { cycle, .. }
            | TraceEvent::DmpPrefetch { cycle, .. }
            | TraceEvent::DmpDeref { cycle, .. } => cycle,
        }
    }
}

/// An in-memory event log, enabled per run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Capacity-preserving restore: the event log rewinds to `src`'s
    /// contents without giving up its buffer.
    pub(crate) fn restore_from(&mut self, src: &Trace) {
        self.events.clone_from(&src.events);
        self.enabled = src.enabled;
    }

    /// Creates a disabled (zero-cost) trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Turns event recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether events are being recorded.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` if enabled.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Returns to the post-construction state (disabled, empty) while
    /// keeping the event buffer's capacity for the next enabled run.
    pub fn reset(&mut self) {
        self.events.clear();
        self.enabled = false;
    }

    /// The recorded events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains and returns the recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// All events involving the store at instruction index `pc`, in
    /// order — the Fig 4 timeline for that store.
    #[must_use]
    pub fn store_timeline(&self, pc: usize) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| match **e {
                TraceEvent::StoreResolved { pc: p, .. }
                | TraceEvent::SsLoadIssued { pc: p, .. }
                | TraceEvent::SsLoadReturned { pc: p, .. }
                | TraceEvent::StoreAtHead { pc: p, .. }
                | TraceEvent::StoreSilentDequeue { pc: p, .. }
                | TraceEvent::StoreSentToCache { pc: p, .. }
                | TraceEvent::StoreDequeued { pc: p, .. } => p == pc,
                _ => false,
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.push(TraceEvent::Squash { cycle: 1, pc: 0 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::StoreAtHead { cycle: 5, pc: 3 });
        t.push(TraceEvent::StoreDequeued { cycle: 9, pc: 3 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].cycle(), 5);
    }

    #[test]
    fn store_timeline_filters_by_pc() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::StoreAtHead { cycle: 1, pc: 3 });
        t.push(TraceEvent::StoreAtHead { cycle: 2, pc: 4 });
        t.push(TraceEvent::Squash { cycle: 3, pc: 3 });
        t.push(TraceEvent::StoreSilentDequeue { cycle: 4, pc: 3 });
        let tl = t.store_timeline(3);
        assert_eq!(tl.len(), 2, "squash events are not store events");
    }

    #[test]
    fn take_drains() {
        let mut t = Trace::new();
        t.enable();
        t.push(TraceEvent::Squash { cycle: 1, pc: 0 });
        assert_eq!(t.take().len(), 1);
        assert!(t.events().is_empty());
    }
}
