//! A set-associative, tag-only cache with LRU or random replacement.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cache replacement policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Replacement {
    /// Least-recently-used (default; what the amplification gadget's
    /// set-contention flush sub-gadget assumes).
    #[default]
    Lru,
    /// Uniform random victim selection, as modelled by the `cache_rand`
    /// MLD (paper Fig 2, Example 3).
    Random,
}

/// Geometry and policy of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes. Must be a power of two.
    pub line: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A small L1 data cache: 64 sets x 4 ways x 64 B lines = 16 KiB.
    #[must_use]
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 4,
            line: 64,
            replacement: Replacement::Lru,
        }
    }

    /// A unified L2: 256 sets x 8 ways x 64 B lines = 128 KiB.
    #[must_use]
    pub fn l2() -> CacheConfig {
        CacheConfig {
            sets: 256,
            ways: 8,
            line: 64,
            replacement: Replacement::Lru,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line
    }
}

/// The outcome of a cache lookup-and-fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; `evicted` is the tag of
    /// the victim line, if any line was displaced.
    Miss {
        /// The displaced victim's line address, if any.
        evicted: Option<u64>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Line {
    tag: u64,
    /// LRU timestamp; larger is more recent.
    stamp: u64,
}

/// One set-associative cache level.
///
/// The cache tracks only tags — data always lives in [`Memory`] — because
/// the simulator needs cache state purely for *timing* and for the
/// microarchitectural channels built on it (Prime+Probe, Evict+Time,
/// prefetch fills).
///
/// [`Memory`]: crate::Memory
///
/// ```
/// use pandora_sim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1d(), 1);
/// assert!(!c.probe(0x1000));
/// assert!(!c.access(0x1000).is_hit()); // miss fills
/// assert!(c.access(0x1000).is_hit());
/// assert!(c.access(0x1004).is_hit()); // same line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    rng: SmallRng,
}

impl Cache {
    /// Capacity-preserving restore: rewinds this cache to `src`'s
    /// contents while reusing every set vector's allocation. The
    /// derived `clone_from` would replace the sets with exact-capacity
    /// clones, which then reallocate one by one as churned sets refill
    /// toward their way count — breaking the allocation-free hot loop
    /// after a checkpoint restore.
    pub(crate) fn restore_from(&mut self, src: &Cache) {
        self.cfg = src.cfg;
        self.sets.clone_from(&src.sets);
        self.clock = src.clock;
        self.rng = src.rng.clone();
    }

    /// Creates an empty cache. `seed` drives the random replacement
    /// policy (ignored under LRU) so runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line` is not a power of two, or `ways == 0`.
    #[must_use]
    pub fn new(cfg: CacheConfig, seed: u64) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.line.is_power_of_two(), "line must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
            clock: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Empties every set and reseeds the replacement RNG, keeping set
    /// allocations. Equivalent to [`Cache::new`] with the same config
    /// and `seed`.
    pub fn reset(&mut self, seed: u64) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// The set index `addr` maps to.
    #[must_use]
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line as u64) as usize) & (self.cfg.sets - 1)
    }

    /// The line-granularity tag for `addr` (the full line address).
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line as u64 - 1)
    }

    /// Whether the line containing `addr` is present, *without* updating
    /// replacement state.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let tag = self.line_addr(addr);
        self.sets[self.set_index(addr)].iter().any(|l| l.tag == tag)
    }

    /// Looks up `addr`; on a miss, fills the line (evicting a victim if
    /// the set is full). Updates replacement state.
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        self.clock += 1;
        let set_idx = self.set_index(addr);
        let tag = self.line_addr(addr);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.stamp = clock;
            return CacheOutcome::Hit;
        }
        let evicted = if set.len() < self.cfg.ways {
            set.push(Line { tag, stamp: clock });
            None
        } else {
            let victim = match self.cfg.replacement {
                Replacement::Lru => set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("set is full, so nonempty"),
                Replacement::Random => self.rng.gen_range(0..set.len()),
            };
            let old = set[victim].tag;
            set[victim] = Line { tag, stamp: clock };
            Some(old)
        };
        CacheOutcome::Miss { evicted }
    }

    /// Fills the line containing `addr` without reporting hit/miss (used
    /// by prefetchers). Equivalent to [`access`](Cache::access) with the
    /// outcome discarded.
    pub fn fill(&mut self, addr: u64) {
        let _ = self.access(addr);
    }

    /// Evicts the line containing `addr`, if present. Returns whether a
    /// line was removed.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let set_idx = self.set_index(addr);
        let tag = self.line_addr(addr);
        let set = &mut self.sets[set_idx];
        let before = set.len();
        set.retain(|l| l.tag != tag);
        set.len() != before
    }

    /// Evicts everything.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// The line addresses currently resident in set `set_idx`, in no
    /// particular order, as a borrowing iterator — probing a set takes
    /// no snapshot allocation. Collect it if you need ownership.
    ///
    /// # Panics
    ///
    /// Panics if `set_idx >= sets`.
    pub fn resident_lines(&self, set_idx: usize) -> impl ExactSizeIterator<Item = u64> + '_ {
        self.sets[set_idx].iter().map(|l| l.tag)
    }

    /// An address (distinct from `addr`'s line) that maps to the same
    /// set, `n` conflict slots away. Used to build eviction sets.
    /// Wraps around the address space: set geometry is power-of-two, so
    /// the wrapped address still indexes the same set.
    #[must_use]
    pub fn conflicting_addr(&self, addr: u64, n: usize) -> u64 {
        let stride = (self.cfg.sets * self.cfg.line) as u64;
        self.line_addr(addr)
            .wrapping_add(stride.wrapping_mul(n as u64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, replacement: Replacement) -> Cache {
        Cache::new(
            CacheConfig {
                sets: 4,
                ways,
                line: 16,
                replacement,
            },
            42,
        )
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(2, Replacement::Lru);
        assert!(!c.access(0x100).is_hit());
        assert!(c.access(0x100).is_hit());
        assert!(c.access(0x10f).is_hit(), "same line");
        assert!(!c.access(0x110).is_hit(), "next line");
    }

    #[test]
    fn set_index_and_line_addr() {
        let c = tiny(2, Replacement::Lru);
        assert_eq!(c.set_index(0x00), 0);
        assert_eq!(c.set_index(0x10), 1);
        assert_eq!(c.set_index(0x40), 0, "wraps mod sets");
        assert_eq!(c.line_addr(0x1f), 0x10);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(0x000); // set 0
        c.access(0x040); // set 0
        c.access(0x000); // refresh
        let out = c.access(0x080); // set 0, evicts 0x040
        assert_eq!(out, CacheOutcome::Miss { evicted: Some(0x040) });
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
    }

    #[test]
    fn random_replacement_evicts_some_resident_line() {
        let mut c = tiny(2, Replacement::Random);
        c.access(0x000);
        c.access(0x040);
        match c.access(0x080) {
            CacheOutcome::Miss { evicted: Some(t) } => assert!(t == 0x000 || t == 0x040),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(0x000);
        c.access(0x040);
        // Probing 0x000 must not refresh it...
        assert!(c.probe(0x000));
        // ...so it is still the LRU victim.
        assert_eq!(
            c.access(0x080),
            CacheOutcome::Miss { evicted: Some(0x000) }
        );
    }

    #[test]
    fn flush_line_removes_only_target() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(0x000);
        c.access(0x040);
        assert!(c.flush_line(0x000));
        assert!(!c.flush_line(0x000), "already gone");
        assert!(!c.probe(0x000));
        assert!(c.probe(0x040));
    }

    #[test]
    fn flush_all_empties() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(0x000);
        c.access(0x010);
        c.flush_all();
        assert!(!c.probe(0x000));
        assert!(!c.probe(0x010));
    }

    #[test]
    fn conflicting_addrs_share_a_set() {
        let c = Cache::new(CacheConfig::l1d(), 0);
        let a = 0x1234;
        for n in 0..8 {
            let e = c.conflicting_addr(a, n);
            assert_eq!(c.set_index(e), c.set_index(a));
            assert_ne!(c.line_addr(e), c.line_addr(a));
        }
    }

    #[test]
    fn capacity_is_consistent() {
        assert_eq!(CacheConfig::l1d().capacity(), 16 * 1024);
        assert_eq!(CacheConfig::l2().capacity(), 128 * 1024);
    }

    #[test]
    fn filling_a_set_beyond_ways_keeps_ways_lines() {
        let mut c = tiny(2, Replacement::Lru);
        for i in 0..10u64 {
            c.access(i * 0x40); // all set 0
        }
        assert_eq!(c.resident_lines(0).len(), 2);
    }
}
