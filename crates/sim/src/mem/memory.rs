//! Flat, byte-addressable data memory.

use std::fmt;

use pandora_isa::Width;

/// A fault raised by an out-of-bounds data memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u64,
    /// The access size in bytes.
    pub len: usize,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {}-byte access at {:#x} out of bounds",
            self.len, self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Flat, byte-addressable data memory.
///
/// The simulator uses a single physical address space (virtual ==
/// physical); software-level protection is provided by the sandbox
/// verifier, not by paging — which is exactly the setting of the
/// paper's DMP attack (§V-B).
///
/// ```
/// use pandora_sim::Memory;
/// let mut m = Memory::new(4096);
/// m.write_u64(16, 0xdead_beef).unwrap();
/// assert_eq!(m.read_u64(16).unwrap(), 0xdead_beef);
/// assert!(m.read_u64(4090).is_err());
/// ```
#[derive(Clone, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
    /// Exclusive upper bound of bytes that may be nonzero — the
    /// write high-water mark. Whole-memory [`Memory::clear`] (the
    /// [`Machine::reset`] path, and therefore every fleet machine
    /// recycle) zero-fills only `..dirty_hi` instead of the full
    /// backing store: a trial that touched a few KiB of a multi-MiB
    /// memory resets in proportion to its footprint, which is what
    /// makes a pooled fleet machine cheaper to recycle than a fresh
    /// `Machine::new` is to construct.
    ///
    /// [`Machine::reset`]: crate::Machine::reset
    dirty_hi: usize,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .field("dirty_hi", &self.dirty_hi)
            .finish()
    }
}

/// Equality is over contents only: the dirty high-water mark is a
/// conservative bookkeeping bound (a cleared-then-reused memory may
/// carry a higher mark than a fresh one with identical bytes).
impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        self.bytes == other.bytes
    }
}

impl Memory {
    /// Creates a zero-filled memory of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Memory {
        Memory {
            bytes: vec![0; size],
            dirty_hi: 0,
        }
    }

    /// The memory size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Whether an access of `len` bytes at `addr` lies in bounds.
    #[must_use]
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        (addr as usize)
            .checked_add(len)
            .is_some_and(|end| end <= self.bytes.len())
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, MemFault> {
        if self.contains(addr, len) {
            Ok(addr as usize)
        } else {
            Err(MemFault { addr, len })
        }
    }

    /// Reads `width` bytes at `addr` as a little-endian value,
    /// zero-extended to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of bounds.
    pub fn read(&self, addr: u64, width: Width) -> Result<u64, MemFault> {
        let n = width.bytes();
        let base = self.check(addr, n)?;
        let mut v: u64 = 0;
        for (i, &b) in self.bytes[base..base + n].iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
        Ok(v)
    }

    /// Writes the low `width` bytes of `value` at `addr`, little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of bounds.
    pub fn write(&mut self, addr: u64, value: u64, width: Width) -> Result<(), MemFault> {
        let n = width.bytes();
        let base = self.check(addr, n)?;
        for i in 0..n {
            self.bytes[base + i] = (value >> (8 * i)) as u8;
        }
        self.dirty_hi = self.dirty_hi.max(base + n);
        Ok(())
    }

    /// Reads a `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of bounds.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        self.read(addr, Width::Dword)
    }

    /// Writes a `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of bounds.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemFault> {
        self.write(addr, value, Width::Dword)
    }

    /// Reads a single byte at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of bounds.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        self.read(addr, Width::Byte).map(|v| v as u8)
    }

    /// Writes a single byte at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of bounds.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        self.write(addr, u64::from(value), Width::Byte)
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the region is out of bounds.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        let base = self.check(addr, data.len())?;
        self.bytes[base..base + data.len()].copy_from_slice(data);
        self.dirty_hi = self.dirty_hi.max(base + data.len());
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the region is out of bounds.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], MemFault> {
        let base = self.check(addr, len)?;
        Ok(&self.bytes[base..base + len])
    }

    /// The write high-water mark: the exclusive upper bound of bytes
    /// that may be nonzero. Exposed so checkpoint/restore code (and its
    /// regression tests) can prove the mark travels with the contents.
    #[must_use]
    pub fn dirty_hi(&self) -> usize {
        self.dirty_hi
    }

    /// Makes `self` equal to `src` — contents *and* dirty mark — in
    /// place, touching only the dirty prefixes instead of the whole
    /// backing store.
    ///
    /// Restoring the mark is a correctness requirement, not an
    /// optimization detail: [`Memory`] equality is contents-only and a
    /// partial [`Memory::clear`] keeps the mark, so a checkpoint
    /// restore that copied bytes but left a *lower* stale mark would
    /// let live bytes above it survive the next whole-memory clear
    /// (the recycled-pool `reset_to` path) — leaking one trial's
    /// secrets into the next. This routine therefore (1) zeroes the
    /// stale region between `src`'s mark and `self`'s old mark, and
    /// (2) adopts `src`'s mark, relying on the invariant that bytes at
    /// or above a memory's mark are zero.
    pub fn restore_from(&mut self, src: &Memory) {
        if self.bytes.len() != src.bytes.len() {
            self.bytes.clone_from(&src.bytes);
            self.dirty_hi = src.dirty_hi;
            return;
        }
        if self.dirty_hi > src.dirty_hi {
            self.bytes[src.dirty_hi..self.dirty_hi].fill(0);
        }
        self.bytes[..src.dirty_hi].copy_from_slice(&src.bytes[..src.dirty_hi]);
        self.dirty_hi = src.dirty_hi;
    }

    /// Zero-fills `len` bytes starting at `addr`. A clear that covers
    /// the whole dirty prefix (notably the whole-memory clear issued by
    /// machine reset) zero-fills only up to the write high-water mark —
    /// everything beyond it is already zero — and rewinds the mark.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the region is out of bounds.
    pub fn clear(&mut self, addr: u64, len: usize) -> Result<(), MemFault> {
        let base = self.check(addr, len)?;
        if base == 0 && len >= self.dirty_hi {
            self.bytes[..self.dirty_hi].fill(0);
            self.dirty_hi = 0;
        } else {
            self.bytes[base..base + len].fill(0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut m = Memory::new(64);
        for (w, mask) in [
            (Width::Byte, 0xffu64),
            (Width::Half, 0xffff),
            (Width::Word, 0xffff_ffff),
            (Width::Dword, u64::MAX),
        ] {
            m.write(8, 0x1122_3344_5566_7788, w).unwrap();
            assert_eq!(m.read(8, w).unwrap(), 0x1122_3344_5566_7788 & mask);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(16);
        m.write_u64(0, 0x0807_0605_0403_0201).unwrap();
        for i in 0..8 {
            assert_eq!(m.read_u8(i).unwrap(), (i + 1) as u8);
        }
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = Memory::new(16);
        assert_eq!(m.read_u64(9), Err(MemFault { addr: 9, len: 8 }));
        assert_eq!(m.read_u64(16), Err(MemFault { addr: 16, len: 8 }));
        assert!(m.read_u8(15).is_ok());
        assert!(m.read_u8(16).is_err());
    }

    #[test]
    fn overflowing_address_faults_instead_of_panicking() {
        let m = Memory::new(16);
        assert!(m.read_u64(u64::MAX - 3).is_err());
        assert!(!m.contains(u64::MAX, 8));
    }

    #[test]
    fn bulk_bytes() {
        let mut m = Memory::new(32);
        m.write_bytes(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), &[1, 2, 3, 4]);
        m.clear(5, 2).unwrap();
        assert_eq!(m.read_bytes(4, 4).unwrap(), &[1, 0, 0, 4]);
        assert!(m.write_bytes(30, &[0; 4]).is_err());
    }

    #[test]
    fn whole_memory_clear_rewinds_the_dirty_mark() {
        let mut m = Memory::new(1 << 16);
        m.write_u64(0x100, 0x1111).unwrap();
        m.write_bytes(0x4000, &[0xff; 32]).unwrap();
        assert_eq!(m.dirty_hi, 0x4020);
        m.clear(0, 1 << 16).unwrap();
        assert_eq!(m.dirty_hi, 0, "full clear rewinds the mark");
        assert_eq!(m, Memory::new(1 << 16), "cleared memory equals fresh");
        // Partial clears zero their range but keep the mark (they
        // cannot prove anything about bytes above them).
        m.write_u8(0x200, 7).unwrap();
        m.clear(0x200, 1).unwrap();
        assert_eq!(m.read_u8(0x200).unwrap(), 0);
        assert_eq!(m.dirty_hi, 0x201);
        // A clear covering the dirty prefix from 0 counts as full even
        // if shorter than the memory.
        m.write_u8(0x80, 3).unwrap();
        m.clear(0, 0x1000).unwrap();
        assert_eq!(m.dirty_hi, 0);
        assert_eq!(m, Memory::new(1 << 16));
    }

    #[test]
    fn restore_from_adopts_contents_and_dirty_mark() {
        // The checkpoint: a small dirty prefix.
        let mut ck = Memory::new(1 << 16);
        ck.write_u64(0x100, 0xc0ff_ee).unwrap();
        assert_eq!(ck.dirty_hi(), 0x108);

        // A recycled machine whose previous trial wrote "secrets" far
        // above the checkpoint's mark.
        let mut m = Memory::new(1 << 16);
        m.write_u64(0x100, 0xdead).unwrap();
        m.write_bytes(0x8000, &[0xaa; 64]).unwrap();
        assert_eq!(m.dirty_hi(), 0x8040);

        m.restore_from(&ck);
        assert_eq!(m, ck, "contents restored");
        assert_eq!(
            m.dirty_hi(),
            0x108,
            "the mark must be restored with the contents"
        );
        assert_eq!(
            m.read_bytes(0x8000, 64).unwrap(),
            &[0u8; 64],
            "stale bytes above the restored mark are zeroed, not leaked"
        );

        // The hazard the mark-restore prevents: the next whole-memory
        // clear trusts the mark, so a stale lower mark would leave the
        // previous trial's bytes alive.
        m.write_u64(0x4000, 0x5ec2e7).unwrap();
        m.clear(0, 1 << 16).unwrap();
        assert_eq!(m, Memory::new(1 << 16), "recycle leaves no residue");

        // Size mismatch falls back to a full adopt.
        let mut other = Memory::new(1 << 12);
        other.write_u8(7, 9).unwrap();
        other.restore_from(&ck);
        assert_eq!(other.size(), 1 << 16);
        assert_eq!(other, ck);
        assert_eq!(other.dirty_hi(), ck.dirty_hi());
    }

    #[test]
    fn fault_display() {
        let e = MemFault { addr: 0x20, len: 8 };
        assert!(e.to_string().contains("0x20"));
    }
}
