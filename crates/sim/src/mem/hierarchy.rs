//! The two-level cache hierarchy in front of DRAM.

use crate::mem::cache::{Cache, CacheConfig};

/// Access latencies (in cycles) of each level of the memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemLatency {
    /// L1 data cache hit.
    pub l1: u64,
    /// L2 hit (L1 miss).
    pub l2: u64,
    /// Main memory (both caches miss).
    pub dram: u64,
}

impl Default for MemLatency {
    fn default() -> MemLatency {
        MemLatency {
            l1: 2,
            l2: 12,
            dram: 120,
        }
    }
}

/// Which level served an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedBy {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Main memory.
    Dram,
}

/// Where a prefetch is allowed to install lines.
///
/// `L2Only` models the *prefetch buffer* discussion of §V-B3: fills are
/// kept out of the L1 so un-consumed prefetches never appear there, but
/// the receiver can simply monitor the unbuffered L2.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrefetchFill {
    /// Fill both L1 and L2 (default IMP behaviour).
    #[default]
    AllLevels,
    /// Fill only the L2.
    L2Only,
}

/// The result of a hierarchy access: the latency it took and the level
/// that served it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Total access latency in cycles.
    pub latency: u64,
    /// Which level had the line.
    pub served_by: ServedBy,
}

/// A two-level cache hierarchy in front of flat DRAM.
///
/// Both caches track tags only; data lives in [`Memory`]. Fills are
/// inclusive: an access that misses everywhere installs the line in both
/// L2 and L1.
///
/// [`Memory`]: crate::Memory
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    lat: MemLatency,
    /// Pending prefetch fills to swallow (fault injection: models lost
    /// fill responses). Decremented by [`Hierarchy::prefetch`].
    suppressed_prefetches: u32,
    /// Set by a multicore harness whose shared L2 lives outside this
    /// hierarchy (see [`DuoMachine`]): while detached, the `l2` slot
    /// holds an inert placeholder, and the public L2 views panic rather
    /// than answer from it. The harness swaps the real cache in for the
    /// duration of each tick ([`Hierarchy::swap_in_l2`]).
    ///
    /// [`DuoMachine`]: crate::DuoMachine
    l2_detached: bool,
}

impl Hierarchy {
    /// Capacity-preserving restore: both levels rewind via
    /// [`Cache::restore_from`], so a checkpoint restore reuses the set
    /// allocations already at their high-water marks.
    pub(crate) fn restore_from(&mut self, src: &Hierarchy) {
        self.l1.restore_from(&src.l1);
        self.l2.restore_from(&src.l2);
        self.lat = src.lat;
        self.suppressed_prefetches = src.suppressed_prefetches;
        self.l2_detached = src.l2_detached;
    }

    /// Builds a hierarchy from per-level geometry and latencies. `seed`
    /// drives random replacement (if configured).
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig, lat: MemLatency, seed: u64) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(l1, seed ^ 0x1),
            l2: Cache::new(l2, seed ^ 0x2),
            lat,
            suppressed_prefetches: 0,
            l2_detached: false,
        }
    }

    /// Empties both levels and reseeds replacement, keeping allocations.
    /// Equivalent to [`Hierarchy::new`] with the same geometry and
    /// `seed` — except that the detached-L2 marker survives: resetting a
    /// core does not reattach an L2 its multicore harness owns.
    pub fn reset(&mut self, seed: u64) {
        self.l1.reset(seed ^ 0x1);
        self.l2.reset(seed ^ 0x2);
        self.suppressed_prefetches = 0;
    }

    /// Marks this hierarchy's L2 slot as a detached placeholder: the
    /// authoritative cache is owned elsewhere (a shared-L2 harness), and
    /// the public views ([`Hierarchy::l2`], [`Hierarchy::l2_mut`],
    /// [`Hierarchy::in_l2`]) panic until it is swapped back in.
    pub(crate) fn mark_l2_detached(&mut self) {
        self.l2_detached = true;
    }

    /// Swaps the harness-owned shared L2 into the `l2` slot for the
    /// duration of a tick; the views answer normally while it is in.
    pub(crate) fn swap_in_l2(&mut self, shared: &mut Cache) {
        std::mem::swap(&mut self.l2, shared);
        self.l2_detached = false;
    }

    /// Swaps the shared L2 back out to its owner, leaving the inert
    /// placeholder (and the panicking views) behind.
    pub(crate) fn swap_out_l2(&mut self, shared: &mut Cache) {
        std::mem::swap(&mut self.l2, shared);
        self.l2_detached = true;
    }

    /// Drops the next `count` prefetch fills before they install a line
    /// (fault injection: lost fill responses / a full prefetch queue).
    /// Counts accumulate if called again before draining.
    pub fn suppress_prefetches(&mut self, count: u32) {
        self.suppressed_prefetches = self.suppressed_prefetches.saturating_add(count);
    }

    /// A demand access (load, store-fill or SS-load) to `addr`:
    /// looks up L1, then L2, then DRAM, filling on the way back.
    pub fn access(&mut self, addr: u64) -> Access {
        if self.l1.access(addr).is_hit() {
            return Access {
                latency: self.lat.l1,
                served_by: ServedBy::L1,
            };
        }
        if self.l2.access(addr).is_hit() {
            return Access {
                latency: self.lat.l2,
                served_by: ServedBy::L2,
            };
        }
        Access {
            latency: self.lat.dram,
            served_by: ServedBy::Dram,
        }
    }

    /// A prefetch fill of the line containing `addr`. Does not return a
    /// latency: prefetches run off the critical path.
    pub fn prefetch(&mut self, addr: u64, fill: PrefetchFill) {
        if self.suppressed_prefetches > 0 {
            self.suppressed_prefetches -= 1;
            return;
        }
        match fill {
            PrefetchFill::AllLevels => {
                self.l1.fill(addr);
                self.l2.fill(addr);
            }
            PrefetchFill::L2Only => self.l2.fill(addr),
        }
    }

    /// Whether the line containing `addr` is in the L1 (no state change).
    #[must_use]
    pub fn in_l1(&self, addr: u64) -> bool {
        self.l1.probe(addr)
    }

    /// Whether the line containing `addr` is in the L2 (no state change).
    ///
    /// # Panics
    ///
    /// If the L2 is detached to a shared-L2 harness (probing the
    /// placeholder would silently answer from stale state); probe
    /// [`DuoMachine::shared_l2`] instead.
    ///
    /// [`DuoMachine::shared_l2`]: crate::DuoMachine::shared_l2
    #[must_use]
    pub fn in_l2(&self, addr: u64) -> bool {
        assert!(
            !self.l2_detached,
            "this core's L2 is detached: it is shared through a multicore \
             harness; probe DuoMachine::shared_l2() instead"
        );
        self.l2.probe(addr)
    }

    /// Evicts the line containing `addr` from every level (clflush).
    pub fn flush_line(&mut self, addr: u64) {
        self.l1.flush_line(addr);
        self.l2.flush_line(addr);
    }

    /// Empties every level.
    pub fn flush_all(&mut self) {
        self.l1.flush_all();
        self.l2.flush_all();
    }

    /// The configured latencies.
    #[must_use]
    pub fn latency(&self) -> MemLatency {
        self.lat
    }

    /// The L1 cache (read-only view).
    #[must_use]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache (read-only view).
    ///
    /// # Panics
    ///
    /// If the L2 is detached to a shared-L2 harness — the slot holds an
    /// inert placeholder, and answering from it is exactly the stale-view
    /// bug this guard exists to catch. Use
    /// [`DuoMachine::shared_l2`] instead.
    ///
    /// [`DuoMachine::shared_l2`]: crate::DuoMachine::shared_l2
    #[must_use]
    pub fn l2(&self) -> &Cache {
        assert!(
            !self.l2_detached,
            "this core's L2 is detached: it is shared through a multicore \
             harness; use DuoMachine::shared_l2() instead"
        );
        &self.l2
    }

    /// Mutable access to the L2 (e.g. for targeted eviction between
    /// steps).
    ///
    /// # Panics
    ///
    /// If the L2 is detached to a shared-L2 harness; use
    /// [`DuoMachine::shared_l2_mut`] instead.
    ///
    /// [`DuoMachine::shared_l2_mut`]: crate::DuoMachine::shared_l2_mut
    pub fn l2_mut(&mut self) -> &mut Cache {
        assert!(
            !self.l2_detached,
            "this core's L2 is detached: it is shared through a multicore \
             harness; use DuoMachine::shared_l2_mut() instead"
        );
        &mut self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(CacheConfig::l1d(), CacheConfig::l2(), MemLatency::default(), 7)
    }

    #[test]
    fn cold_access_costs_dram_then_warms_both_levels() {
        let mut m = h();
        let a = m.access(0x4000);
        assert_eq!(a.served_by, ServedBy::Dram);
        assert_eq!(a.latency, MemLatency::default().dram);
        assert!(m.in_l1(0x4000));
        assert!(m.in_l2(0x4000));
        assert_eq!(m.access(0x4000).served_by, ServedBy::L1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = h();
        m.access(0x4000);
        m.l1.flush_line(0x4000);
        let a = m.access(0x4000);
        assert_eq!(a.served_by, ServedBy::L2);
        assert_eq!(a.latency, MemLatency::default().l2);
    }

    #[test]
    fn prefetch_l2_only_keeps_l1_clean() {
        let mut m = h();
        m.prefetch(0x8000, PrefetchFill::L2Only);
        assert!(!m.in_l1(0x8000));
        assert!(m.in_l2(0x8000));
        m.prefetch(0x9000, PrefetchFill::AllLevels);
        assert!(m.in_l1(0x9000));
        assert!(m.in_l2(0x9000));
    }

    #[test]
    fn flush_line_clears_both_levels() {
        let mut m = h();
        m.access(0x4000);
        m.flush_line(0x4000);
        assert!(!m.in_l1(0x4000));
        assert!(!m.in_l2(0x4000));
        assert_eq!(m.access(0x4000).served_by, ServedBy::Dram);
    }
}
