//! The memory subsystem: flat data memory, set-associative caches, and
//! the two-level hierarchy the receivers' channels live in.

pub mod cache;
pub mod hierarchy;
pub mod memory;
