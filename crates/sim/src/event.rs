//! The unified simulation event bus.
//!
//! Pipeline stages and optimization hooks describe *what happened* by
//! emitting typed [`SimEvent`]s; the [`EventBus`] owns every
//! cross-cutting consumer — the [`SimStats`] counters, the optional
//! [`Trace`] log, and the attack-side DMP pattern probe — and maps each
//! event onto them in one place. Stages never touch a counter or the
//! trace directly, which is what keeps observation concerns out of the
//! stage modules in [`crate::pipeline`].

use crate::mem::hierarchy::ServedBy;
use crate::opt::comp_simpl::SimplEvent;
use crate::stats::SimStats;
use crate::trace::{NonSilentReason, Trace, TraceEvent};

/// Why dispatch stalled this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallReason {
    /// ROB, issue queue, or load queue full.
    Backend,
    /// Store queue full (head-of-line blocking — the amplification
    /// gadget's lever).
    SqFull,
    /// No free physical register at rename.
    RenamePrf,
}

/// Why the pipeline squashed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SquashReason {
    /// Branch misprediction.
    Branch,
    /// Value misprediction.
    Value,
    /// An injected fault ([`crate::fault::FaultKind::SpuriousSquash`]).
    Fault,
}

/// Which prefetcher issued a prefetch or dereference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefetchSource {
    /// The indirect memory prefetcher (paper §V-B).
    Imp,
    /// The content-directed prefetcher (paper §V-C).
    Cdp,
}

/// A typed event emitted by a pipeline stage or optimization hook.
///
/// Each variant documents its effect on the bus consumers; the mapping
/// itself lives in [`EventBus::emit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimEvent {
    /// An instruction committed. Increments `committed`.
    InstrCommitted {
        /// The committed instruction's index.
        pc: usize,
    },
    /// Dispatch stalled for the whole remainder of the cycle.
    /// Increments the matching stall counter.
    DispatchStall {
        /// What blocked dispatch.
        reason: StallReason,
    },
    /// A demand access was served. Increments the matching hit counter.
    DemandAccess {
        /// The level that served it.
        served_by: ServedBy,
    },
    /// A store's address and data resolved in execute. Trace only.
    StoreResolved {
        /// The store's instruction index.
        pc: usize,
        /// The resolved address.
        addr: u64,
    },
    /// An SS-load was issued on a stolen load port. Increments
    /// `ss_loads` and traces.
    SsLoadIssued {
        /// The checked store's instruction index.
        pc: usize,
        /// The checked address.
        addr: u64,
    },
    /// A store could not be checked for silence: no free load port this
    /// cycle. Increments `ss_no_port`.
    SsLoadNoPort {
        /// The store's instruction index.
        pc: usize,
    },
    /// The SS-load returned with its candidacy decision. Trace only.
    SsLoadReturned {
        /// The store's instruction index.
        pc: usize,
        /// Whether the store was judged silent.
        silent: bool,
    },
    /// A store reached the store-queue head. Trace only.
    StoreAtHead {
        /// The store's instruction index.
        pc: usize,
    },
    /// A store dequeued silently. Increments `silent_stores` and traces.
    StoreSilentDequeue {
        /// The store's instruction index.
        pc: usize,
    },
    /// A store began performing to the cache. Increments `ss_late` when
    /// the reason is a late SS-load, and traces.
    StoreSentToCache {
        /// The store's instruction index.
        pc: usize,
        /// Why it was not silent.
        reason: NonSilentReason,
    },
    /// A store finished performing and dequeued. Increments
    /// `performed_stores` and traces.
    StoreDequeued {
        /// The store's instruction index.
        pc: usize,
    },
    /// The pipeline squashed. Increments the matching squash counter
    /// (fault-induced squashes have none) and traces the redirect.
    Squash {
        /// What triggered the squash.
        reason: SquashReason,
        /// The redirect target's instruction index.
        redirect: usize,
    },
    /// Computation simplification took a shortcut or slow path.
    /// Increments the counter matching the [`SimplEvent`].
    Simplified(SimplEvent),
    /// Narrow ALU operations were packed this cycle. Adds to
    /// `packed_pairs`.
    PackedPairs {
        /// Number of packed pairs issued this cycle.
        pairs: u64,
    },
    /// The computation-reuse memo table was consulted. Increments
    /// `reuse_hits` or `reuse_misses`.
    ReuseLookup {
        /// Whether the lookup hit.
        hit: bool,
    },
    /// A load's value was predicted at dispatch. Increments
    /// `vp_predictions`.
    ValuePredicted {
        /// The load's instruction index.
        pc: usize,
    },
    /// A predicted load value was confirmed at writeback. Increments
    /// `vp_correct`.
    ValueConfirmed {
        /// The load's instruction index.
        pc: usize,
    },
    /// Register-file compression shared a physical register. Increments
    /// `rfc_shares`.
    RfcShared,
    /// A prefetcher issued a prefetch. Increments the source's counter
    /// and traces.
    Prefetch {
        /// Which prefetcher.
        source: PrefetchSource,
        /// The prefetched address.
        addr: u64,
        /// Indirection level (0 = stream).
        level: u8,
    },
    /// A prefetcher dereferenced data memory while chasing a chain.
    /// Increments `dmp_deref_reads` for the IMP (the CDP's dereferences
    /// are trace-only) and traces.
    PointerDeref {
        /// Which prefetcher.
        source: PrefetchSource,
        /// The dereferenced address.
        addr: u64,
        /// The value read.
        value: u64,
    },
    /// The IMP dropped a prefetch whose address left physical memory.
    /// Increments `dmp_dropped`.
    PrefetchDropped,
    /// The IMP confirmed an indirection pattern between two load PCs.
    /// Appended to the bus's pattern probe (read via
    /// [`EventBus::dmp_patterns`]).
    PatternConfirmed {
        /// The pointer-producing load's instruction index.
        src_pc: usize,
        /// The dependent load's instruction index.
        dst_pc: usize,
        /// The dependent access's reconstructed base address.
        base: u64,
        /// The reconstructed index scale.
        scale: u64,
    },
    /// A fault-plan event took effect. Increments `faults_injected`.
    FaultInjected,
    /// An environmental-noise disturbance took effect. Increments
    /// `noise_events`.
    NoiseInjected,
}

/// The single sink for all [`SimEvent`]s.
///
/// Owns the run's [`SimStats`], [`Trace`], and DMP pattern probe, plus
/// the current cycle used to timestamp trace events.
#[derive(Clone, Debug, Default)]
pub struct EventBus {
    cycle: u64,
    stats: SimStats,
    trace: Trace,
    dmp_patterns: Vec<(usize, usize, u64, u64)>,
}

impl EventBus {
    /// Capacity-preserving restore: stats copy, trace and pattern
    /// buffers rewind in place.
    pub(crate) fn restore_from(&mut self, src: &EventBus) {
        self.cycle = src.cycle;
        self.stats = src.stats;
        self.trace.restore_from(&src.trace);
        self.dmp_patterns.clone_from(&src.dmp_patterns);
    }

    /// Creates an empty bus with a disabled trace.
    #[must_use]
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Sets the cycle used to timestamp subsequent trace events.
    #[inline]
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Records the elapsed-cycle count into the stats.
    #[inline]
    pub fn set_cycles(&mut self, cycle: u64) {
        self.stats.cycles = cycle;
    }

    /// Fast path for events with no stats counter or pattern-probe
    /// side effect (`StoreResolved`, `StoreAtHead`, `SsLoadReturned`,
    /// the CDP's `PointerDeref`): when the trace is disabled — every
    /// stats-only run — the event is never constructed or dispatched.
    /// Call sites pass a closure so argument evaluation is skipped
    /// too. Emitting an event with counter side effects through here
    /// would silently drop those counts in untraced runs; `emit` is
    /// the only correct path for them.
    #[inline]
    pub fn emit_trace_only(&mut self, make: impl FnOnce() -> SimEvent) {
        if self.trace.is_enabled() {
            self.emit(make());
        }
    }

    /// Applies `event` to the stats counters, the trace, and the
    /// pattern probe.
    #[inline]
    pub fn emit(&mut self, event: SimEvent) {
        let cycle = self.cycle;
        match event {
            SimEvent::InstrCommitted { .. } => self.stats.committed += 1,
            SimEvent::DispatchStall { reason } => match reason {
                StallReason::Backend => self.stats.backend_stalls += 1,
                StallReason::SqFull => self.stats.sq_full_stalls += 1,
                StallReason::RenamePrf => self.stats.rename_stalls_prf += 1,
            },
            SimEvent::DemandAccess { served_by } => match served_by {
                ServedBy::L1 => self.stats.l1_hits += 1,
                ServedBy::L2 => self.stats.l2_hits += 1,
                ServedBy::Dram => self.stats.dram_accesses += 1,
            },
            SimEvent::StoreResolved { pc, addr } => {
                self.trace.push(TraceEvent::StoreResolved { cycle, pc, addr });
            }
            SimEvent::SsLoadIssued { pc, addr } => {
                self.stats.ss_loads += 1;
                self.trace.push(TraceEvent::SsLoadIssued { cycle, pc, addr });
            }
            SimEvent::SsLoadNoPort { .. } => self.stats.ss_no_port += 1,
            SimEvent::SsLoadReturned { pc, silent } => {
                self.trace
                    .push(TraceEvent::SsLoadReturned { cycle, pc, silent });
            }
            SimEvent::StoreAtHead { pc } => {
                self.trace.push(TraceEvent::StoreAtHead { cycle, pc });
            }
            SimEvent::StoreSilentDequeue { pc } => {
                self.stats.silent_stores += 1;
                self.trace.push(TraceEvent::StoreSilentDequeue { cycle, pc });
            }
            SimEvent::StoreSentToCache { pc, reason } => {
                if reason == NonSilentReason::SsLoadLate {
                    self.stats.ss_late += 1;
                }
                self.trace
                    .push(TraceEvent::StoreSentToCache { cycle, pc, reason });
            }
            SimEvent::StoreDequeued { pc } => {
                self.stats.performed_stores += 1;
                self.trace.push(TraceEvent::StoreDequeued { cycle, pc });
            }
            SimEvent::Squash { reason, redirect } => {
                match reason {
                    SquashReason::Branch => self.stats.branch_squashes += 1,
                    SquashReason::Value => self.stats.vp_squashes += 1,
                    SquashReason::Fault => {}
                }
                self.trace.push(TraceEvent::Squash { cycle, pc: redirect });
            }
            SimEvent::Simplified(ev) => match ev {
                SimplEvent::TrivialSkip => self.stats.trivial_skips += 1,
                SimplEvent::MulSkip => self.stats.mul_skips += 1,
                SimplEvent::MulStrengthReduced => self.stats.mul_strength_reductions += 1,
                SimplEvent::DivEarlyExit => self.stats.div_early_exits += 1,
                SimplEvent::FpSubnormal => self.stats.fp_subnormal_slow += 1,
            },
            SimEvent::PackedPairs { pairs } => self.stats.packed_pairs += pairs,
            SimEvent::ReuseLookup { hit } => {
                if hit {
                    self.stats.reuse_hits += 1;
                } else {
                    self.stats.reuse_misses += 1;
                }
            }
            SimEvent::ValuePredicted { .. } => self.stats.vp_predictions += 1,
            SimEvent::ValueConfirmed { .. } => self.stats.vp_correct += 1,
            SimEvent::RfcShared => self.stats.rfc_shares += 1,
            SimEvent::Prefetch {
                source,
                addr,
                level,
            } => {
                match source {
                    PrefetchSource::Imp => self.stats.dmp_prefetches += 1,
                    PrefetchSource::Cdp => self.stats.cdp_prefetches += 1,
                }
                self.trace.push(TraceEvent::DmpPrefetch { cycle, addr, level });
            }
            SimEvent::PointerDeref {
                source,
                addr,
                value,
            } => {
                if source == PrefetchSource::Imp {
                    self.stats.dmp_deref_reads += 1;
                }
                self.trace.push(TraceEvent::DmpDeref { cycle, addr, value });
            }
            SimEvent::PrefetchDropped => self.stats.dmp_dropped += 1,
            SimEvent::PatternConfirmed {
                src_pc,
                dst_pc,
                base,
                scale,
            } => self.dmp_patterns.push((src_pc, dst_pc, base, scale)),
            SimEvent::FaultInjected => self.stats.faults_injected += 1,
            SimEvent::NoiseInjected => self.stats.noise_events += 1,
        }
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable access to the statistics (used by the fault layer's
    /// bookkeeping and by tests).
    pub fn stats_mut(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    /// The event trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (to enable or drain it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The IMP's confirmed `(src_pc, dst_pc, base, scale)` indirection
    /// patterns, in confirmation order.
    #[must_use]
    pub fn dmp_patterns(&self) -> &[(usize, usize, u64, u64)] {
        &self.dmp_patterns
    }

    /// Clears all consumers back to a fresh run: zeroed stats, a
    /// disabled empty trace (capacity kept), and no confirmed
    /// patterns.
    pub fn reset(&mut self) {
        self.cycle = 0;
        self.stats = SimStats::default();
        self.trace.reset();
        self.dmp_patterns.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_map_to_counters() {
        let mut bus = EventBus::new();
        bus.emit(SimEvent::InstrCommitted { pc: 0 });
        bus.emit(SimEvent::DemandAccess {
            served_by: ServedBy::L2,
        });
        bus.emit(SimEvent::DispatchStall {
            reason: StallReason::SqFull,
        });
        bus.emit(SimEvent::Simplified(SimplEvent::MulSkip));
        bus.emit(SimEvent::ReuseLookup { hit: true });
        bus.emit(SimEvent::ReuseLookup { hit: false });
        let s = bus.stats();
        assert_eq!(s.committed, 1);
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.sq_full_stalls, 1);
        assert_eq!(s.mul_skips, 1);
        assert_eq!((s.reuse_hits, s.reuse_misses), (1, 1));
    }

    #[test]
    fn trace_events_are_timestamped_with_bus_cycle() {
        let mut bus = EventBus::new();
        bus.trace_mut().enable();
        bus.begin_cycle(41);
        bus.emit(SimEvent::StoreAtHead { pc: 7 });
        assert_eq!(
            bus.trace().events(),
            &[TraceEvent::StoreAtHead { cycle: 41, pc: 7 }]
        );
    }

    #[test]
    fn fault_squash_traces_without_counting() {
        let mut bus = EventBus::new();
        bus.trace_mut().enable();
        bus.emit(SimEvent::Squash {
            reason: SquashReason::Fault,
            redirect: 3,
        });
        assert_eq!(bus.stats().branch_squashes, 0);
        assert_eq!(bus.stats().vp_squashes, 0);
        assert_eq!(bus.trace().events().len(), 1);
    }

    #[test]
    fn cdp_deref_is_trace_only() {
        let mut bus = EventBus::new();
        bus.emit(SimEvent::PointerDeref {
            source: PrefetchSource::Cdp,
            addr: 0x40,
            value: 0x80,
        });
        assert_eq!(bus.stats().dmp_deref_reads, 0);
        bus.emit(SimEvent::PointerDeref {
            source: PrefetchSource::Imp,
            addr: 0x40,
            value: 0x80,
        });
        assert_eq!(bus.stats().dmp_deref_reads, 1);
    }

    #[test]
    fn patterns_accumulate_and_reset_clears() {
        let mut bus = EventBus::new();
        bus.emit(SimEvent::PatternConfirmed {
            src_pc: 1,
            dst_pc: 2,
            base: 0x100,
            scale: 8,
        });
        assert_eq!(bus.dmp_patterns(), &[(1, 2, 0x100, 8)]);
        bus.emit(SimEvent::InstrCommitted { pc: 0 });
        bus.reset();
        assert!(bus.dmp_patterns().is_empty());
        assert_eq!(bus.stats().committed, 0);
        assert!(!bus.trace().is_enabled());
    }
}
