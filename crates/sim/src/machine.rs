//! The cycle-level out-of-order pipeline.
//!
//! A single-core, speculative, out-of-order machine in the shape of the
//! paper's "Baseline" (§III): fetch with branch prediction → rename
//! (physical register file + free list) → issue queue → execution ports
//! → load/store queues → reorder buffer → in-order commit, over a
//! two-level cache hierarchy. Stores dequeue from the store queue in
//! program order and only after their line is present in the L1
//! (§V-A1) — the property the silent-store amplification gadget relies
//! on.
//!
//! The seven optimization classes from Table I hook in at the stages
//! the paper describes:
//!
//! * **silent stores** — store execute (SS-load issue) and SQ dequeue,
//! * **computation simplification** — execution-latency planning,
//! * **pipeline compression** — ALU port accounting at issue,
//! * **computation reuse** — memo lookup at issue, insert at writeback,
//! * **value prediction** — predict at dispatch, verify at writeback,
//! * **register-file compression** — early tag release at writeback,
//! * **data memory-dependent prefetching** — observe at commit.
//!
//! Recovery from branch and value mispredictions uses ROB-walk rename
//! undo, so any instruction can be a squash point without checkpoints.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use pandora_isa::{Instr, Program, Reg, Width};

use crate::config::SimConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::func::sign_extend;
use crate::mem::hierarchy::{Hierarchy, ServedBy};
use crate::mem::memory::{MemFault, Memory};
use crate::opt::bpred::{Bimodal, Btb};
use crate::opt::cdp::Cdp;
use crate::opt::comp_reuse::ReuseTable;
use crate::opt::comp_simpl::{plan_alu, plan_fp, ExecPlan, PortClass, SimplEvent};
use crate::opt::dmp::Imp;
use crate::opt::pipe_compress::{packable, AluSlots};
use crate::opt::rf_compress::RfCompressor;
use crate::opt::silent_store::SsState;
use crate::opt::value_pred::ValuePredictor;
use crate::stats::SimStats;
use crate::trace::{Trace, TraceEvent};

/// The pipeline snapshot captured when the deadlock watchdog fires —
/// enough to see *what* wedged without re-running under a tracer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeadlockDiagnostics {
    /// The ROB head's (sequence number, pc) — the instruction commit is
    /// stuck behind — if the ROB is nonempty.
    pub rob_head: Option<(u64, usize)>,
    /// Reorder-buffer occupancy.
    pub rob_len: usize,
    /// The store-queue head's (sequence number, pc), if any.
    pub sq_head: Option<(u64, usize)>,
    /// Store-queue occupancy.
    pub sq_len: usize,
    /// Load-queue occupancy.
    pub lq_len: usize,
    /// Live physical register tags (free list occupancy is
    /// `prf_size - live_tags`).
    pub live_tags: usize,
    /// Configured physical register file size.
    pub prf_size: usize,
    /// Where fetch was pointing.
    pub fetch_pc: usize,
    /// The last cycle that committed an instruction or dequeued a
    /// store.
    pub last_progress_cycle: u64,
}

impl fmt::Display for DeadlockDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rob={}{} sq={}{} lq={} prf={}/{} fetch_pc={} last_progress={}",
            self.rob_len,
            self.rob_head
                .map(|(s, pc)| format!(" (head seq {s} pc {pc})"))
                .unwrap_or_default(),
            self.sq_len,
            self.sq_head
                .map(|(s, pc)| format!(" (head seq {s} pc {pc})"))
                .unwrap_or_default(),
            self.lq_len,
            self.live_tags,
            self.prf_size,
            self.fetch_pc,
            self.last_progress_cycle,
        )
    }
}

/// Why a simulation run stopped abnormally.
///
/// Every abnormal outcome — including pipeline states that earlier
/// revisions treated as internal panics — is reported through this
/// enum, so harnesses driving adversarial or fault-injected programs
/// can recover, log, and retry instead of aborting the process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle budget ran out before `halt` committed (the machine
    /// was still making progress — contrast [`SimError::Deadlock`]).
    Timeout {
        /// The budget that was exhausted.
        cycles: u64,
    },
    /// A committed (architecturally real) memory access faulted.
    Mem {
        /// The fault.
        fault: MemFault,
        /// The faulting instruction's index.
        pc: usize,
    },
    /// Control flow left the program without halting.
    WildPc {
        /// The runaway instruction index.
        pc: usize,
    },
    /// The watchdog saw no commit or store-dequeue progress for the
    /// configured window ([`SimConfig::watchdog_cycles`]): the pipeline
    /// is wedged, not slow.
    Deadlock {
        /// The cycle the watchdog fired.
        cycle: u64,
        /// Pipeline state at that moment.
        diagnostics: DeadlockDiagnostics,
    },
    /// A structural resource could not be allocated when the pipeline's
    /// own gating said it must be available — the recoverable form of
    /// what used to be an allocation panic.
    ResourceExhausted {
        /// Which resource ran out.
        resource: String,
        /// The cycle it happened.
        cycle: u64,
    },
    /// An internal pipeline invariant did not hold (e.g. a store
    /// reaching dequeue without a resolved address). These indicate a
    /// malformed program or an injected fault the pipeline could not
    /// absorb; the machine stops cleanly instead of panicking.
    InvalidState {
        /// What was inconsistent, with enough context to debug.
        context: String,
        /// The cycle it was detected.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles } => write!(f, "no halt within {cycles} cycles"),
            SimError::Mem { fault, pc } => write!(f, "{fault} at pc {pc}"),
            SimError::WildPc { pc } => write!(f, "control flow left the program at pc {pc}"),
            SimError::Deadlock { cycle, diagnostics } => {
                write!(f, "pipeline deadlock at cycle {cycle}: {diagnostics}")
            }
            SimError::ResourceExhausted { resource, cycle } => {
                write!(f, "resource exhausted at cycle {cycle}: {resource}")
            }
            SimError::InvalidState { context, cycle } => {
                write!(f, "invalid pipeline state at cycle {cycle}: {context}")
            }
        }
    }
}

impl Error for SimError {}

type Seq = u64;
type PTag = u32;

/// Classification of an instruction for dispatch-time bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum UopKind {
    Alu,
    Fp,
    Load,
    Store,
    Branch,
    Jal,
    Jalr,
    Flush,
    RdCycle,
    Li,
    Nop,
    Fence,
    Halt,
}

fn classify(i: &Instr) -> UopKind {
    match i {
        Instr::AluRR { .. } | Instr::AluRI { .. } => UopKind::Alu,
        Instr::Fp { .. } => UopKind::Fp,
        Instr::Li { .. } => UopKind::Li,
        Instr::Load { .. } => UopKind::Load,
        Instr::Store { .. } => UopKind::Store,
        Instr::Branch { .. } => UopKind::Branch,
        Instr::Jal { .. } => UopKind::Jal,
        Instr::Jalr { .. } => UopKind::Jalr,
        Instr::RdCycle { .. } => UopKind::RdCycle,
        Instr::Flush { .. } => UopKind::Flush,
        Instr::Fence => UopKind::Fence,
        Instr::Nop => UopKind::Nop,
        Instr::Halt => UopKind::Halt,
    }
}

/// One in-flight dynamic instruction.
#[derive(Clone, Debug)]
struct Uop {
    seq: Seq,
    pc: usize,
    instr: Instr,
    kind: UopKind,
    srcs: Vec<PTag>,
    dst: Option<PTag>,
    /// The architectural register this uop redefines and its previous
    /// physical mapping — fuels both commit-time freeing and
    /// squash-time rename undo.
    prev: Option<(Reg, PTag)>,
    in_iq: bool,
    executing: bool,
    done: bool,
    done_cycle: u64,
    result: u64,
    /// Loads/stores: the resolved effective address.
    addr: Option<u64>,
    /// Loads: access width (for DMP training).
    mem_width: Option<Width>,
    fault: Option<MemFault>,
    /// Branches/jalr: the fetch-time predicted next pc.
    pred_target: usize,
    /// Branches/jalr: the resolved next pc.
    actual_target: usize,
    /// Value prediction made at dispatch, if any.
    vp_pred: Option<u64>,
    /// Memo-table insertion info captured at issue on a reuse miss.
    reuse_info: Option<([u64; 2], [Option<Reg>; 2])>,
    /// Simplification event to count when the uop completes.
    simpl_event: Option<SimplEvent>,
}

/// A store-queue entry; lives from dispatch until dequeue (possibly
/// after commit).
#[derive(Clone, Copy, Debug)]
struct SqEntry {
    seq: Seq,
    pc: usize,
    width: Width,
    addr: Option<u64>,
    data: Option<u64>,
    committed: bool,
    ss: SsState,
    performing_until: Option<u64>,
    at_head_traced: bool,
}

/// The simulated machine: one out-of-order core, two cache levels, flat
/// memory.
///
/// ```
/// use pandora_isa::{Asm, Reg};
/// use pandora_sim::{Machine, SimConfig};
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 21);
/// a.add(Reg::T0, Reg::T0, Reg::T0);
/// a.halt();
/// let prog = a.assemble().unwrap();
///
/// let mut m = Machine::new(SimConfig::default());
/// m.load_program(&prog);
/// let stats = m.run(10_000).unwrap();
/// assert_eq!(m.reg(Reg::T0), 42);
/// assert!(stats.committed >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: SimConfig,
    prog: Program,
    mem: Memory,
    hier: Hierarchy,
    cycle: u64,
    next_seq: Seq,
    halted: bool,

    // Frontend.
    fetch_pc: usize,
    fetch_stall_until: u64,
    fetch_blocked: bool,
    fetch_buf: VecDeque<(usize, Instr, usize)>, // (pc, instr, predicted next pc)
    bimodal: Bimodal,
    btb: Btb,

    // Rename / register state.
    rat: [PTag; Reg::COUNT],
    prf_vals: Vec<u64>,
    prf_ready: Vec<bool>,
    live_tags: usize,
    shared_tags: Vec<PTag>,
    arch_regs: [u64; Reg::COUNT],

    // Backend.
    rob: VecDeque<Uop>,
    iq_count: usize,
    lq: VecDeque<Seq>,
    sq: VecDeque<SqEntry>,
    fences_inflight: usize,

    // Optimizations.
    vp: ValuePredictor,
    reuse: ReuseTable,
    rfc: RfCompressor,
    imp: Option<Imp>,
    cdp: Option<Cdp>,

    stats: SimStats,
    trace: Trace,

    // Robustness runtime.
    /// Last cycle that committed an instruction or dequeued a store —
    /// the watchdog's notion of forward progress.
    last_progress_cycle: u64,
    fault_plan: Option<FaultPlan>,
    fault_cursor: usize,
}

impl Machine {
    /// Creates a machine with zeroed memory and registers.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Machine {
        let mut prf_vals = Vec::with_capacity(cfg.pipeline.prf_size);
        let mut prf_ready = Vec::with_capacity(cfg.pipeline.prf_size);
        let mut rat = [0 as PTag; Reg::COUNT];
        for (i, slot) in rat.iter_mut().enumerate() {
            *slot = i as PTag;
            prf_vals.push(0);
            prf_ready.push(true);
        }
        Machine {
            mem: Memory::new(cfg.mem_size),
            hier: Hierarchy::new(cfg.l1d, cfg.l2, cfg.mem_latency, cfg.seed),
            cycle: 0,
            next_seq: 0,
            halted: false,
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_blocked: false,
            fetch_buf: VecDeque::new(),
            bimodal: Bimodal::new(1024),
            btb: Btb::new(),
            rat,
            prf_vals,
            prf_ready,
            live_tags: Reg::COUNT,
            shared_tags: Vec::new(),
            arch_regs: [0; Reg::COUNT],
            rob: VecDeque::new(),
            iq_count: 0,
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            fences_inflight: 0,
            vp: ValuePredictor::with_kind(cfg.opts.vp_confidence, cfg.opts.vp_kind),
            reuse: ReuseTable::new(cfg.opts.reuse_entries.max(1), cfg.opts.reuse_key),
            rfc: RfCompressor::new(cfg.opts.rfc_match),
            imp: cfg.opts.dmp.then(|| Imp::new(&cfg.opts)),
            cdp: cfg
                .opts
                .cdp
                .then(|| Cdp::new(cfg.l1d.line, cfg.opts.dmp_fill)),
            stats: SimStats::default(),
            trace: Trace::new(),
            last_progress_cycle: 0,
            fault_plan: None,
            fault_cursor: 0,
            prog: Program::default(),
            cfg,
        }
    }

    /// Installs the program to run (fetch starts at instruction 0).
    pub fn load_program(&mut self, prog: &Program) {
        self.prog = prog.clone();
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The committed architectural value of register `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.arch_regs[r.index()]
    }

    /// Sets register `r` before the run starts (`x0` is ignored).
    ///
    /// # Panics
    ///
    /// Panics if called after the machine has started executing.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        assert_eq!(self.cycle, 0, "set_reg is only valid before run()");
        if r.is_zero() {
            return;
        }
        self.arch_regs[r.index()] = v;
        let tag = self.rat[r.index()] as usize;
        self.prf_vals[tag] = v;
    }

    /// Read-only memory access.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (for setting up experiment state).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The cache hierarchy (for receivers probing residency).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable hierarchy access (for priming/flushing cache state).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether `halt` has committed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Enables microarchitectural event tracing.
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// The event trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The DMP's confirmed patterns, if a DMP is configured (tests).
    #[must_use]
    pub fn dmp_patterns(&self) -> Vec<(usize, usize, u64, u64)> {
        self.imp
            .as_ref()
            .map(Imp::confirmed_patterns)
            .unwrap_or_default()
    }

    /// Installs a fault plan: each scheduled event is applied at the
    /// start of its cycle on subsequent [`Machine::step`]s. Replaces
    /// any previously installed plan; events scheduled at or before the
    /// current cycle are dropped rather than fired retroactively.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.fault_cursor = plan
            .events()
            .iter()
            .position(|e| e.cycle > self.cycle)
            .unwrap_or(plan.len());
        self.fault_plan = Some(plan);
    }

    /// Runs until `halt` commits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] if the budget runs out,
    /// * [`SimError::Mem`] if a committed access faults,
    /// * [`SimError::WildPc`] if control flow leaves the program,
    /// * [`SimError::Deadlock`] if the watchdog sees no progress,
    /// * [`SimError::ResourceExhausted`] / [`SimError::InvalidState`]
    ///   if a pipeline invariant breaks (malformed program or
    ///   injected fault).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let limit = self.cycle + max_cycles;
        while !self.halted {
            if self.cycle >= limit {
                return Err(SimError::Timeout { cycles: max_cycles });
            }
            self.step()?;
        }
        Ok(self.stats)
    }

    /// Advances the machine one cycle.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn step(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.apply_due_faults();
        self.commit()?;
        if self.halted {
            self.stats.cycles = self.cycle;
            return Ok(());
        }
        self.resolve_ss_loads();
        self.dequeue_stores()?;
        self.writeback();
        self.issue();
        self.dispatch()?;
        self.fetch();
        self.stats.cycles = self.cycle;
        // Wild control flow: nothing in flight and nothing fetchable.
        if self.rob.is_empty()
            && self.fetch_buf.is_empty()
            && self.sq.is_empty()
            && !self.fetch_blocked
            && self.cycle >= self.fetch_stall_until
            && self.prog.get(self.fetch_pc).is_none()
        {
            return Err(SimError::WildPc { pc: self.fetch_pc });
        }
        // Watchdog: work is in flight but nothing has committed or
        // drained for a whole window — the pipeline is wedged, and
        // spinning to the cycle cap would only mislabel it a Timeout.
        if let Some(window) = self.cfg.watchdog_cycles {
            if self.cycle.saturating_sub(self.last_progress_cycle) >= window {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    diagnostics: self.deadlock_snapshot(),
                });
            }
        }
        Ok(())
    }

    fn deadlock_snapshot(&self) -> DeadlockDiagnostics {
        DeadlockDiagnostics {
            rob_head: self.rob.front().map(|u| (u.seq, u.pc)),
            rob_len: self.rob.len(),
            sq_head: self.sq.front().map(|e| (e.seq, e.pc)),
            sq_len: self.sq.len(),
            lq_len: self.lq.len(),
            live_tags: self.live_tags,
            prf_size: self.cfg.pipeline.prf_size,
            fetch_pc: self.fetch_pc,
            last_progress_cycle: self.last_progress_cycle,
        }
    }

    fn invalid_state(&self, context: String) -> SimError {
        SimError::InvalidState {
            context,
            cycle: self.cycle,
        }
    }

    // ---- Fault injection ---------------------------------------------

    /// Applies every installed fault event due at the current cycle.
    fn apply_due_faults(&mut self) {
        let Some(plan) = self.fault_plan.take() else {
            return;
        };
        while let Some(ev) = plan.events().get(self.fault_cursor) {
            if ev.cycle > self.cycle {
                break;
            }
            self.fault_cursor += 1;
            self.apply_fault(ev.kind);
        }
        self.fault_plan = Some(plan);
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::MemBitFlip { addr, bit } => {
                // Out-of-bounds targets are no-ops: the plan may be
                // random and the memory small.
                if let Ok(b) = self.mem.read_u8(addr) {
                    let _ = self.mem.write_u8(addr, b ^ (1 << (bit & 7)));
                    self.stats.faults_injected += 1;
                }
            }
            FaultKind::RegBitFlip { reg, bit } => {
                if !reg.is_zero() {
                    let mask = 1u64 << (bit & 63);
                    self.arch_regs[reg.index()] ^= mask;
                    // Mirror into the current physical mapping so
                    // in-flight readers observe the flip too.
                    let tag = self.rat[reg.index()] as usize;
                    self.prf_vals[tag] ^= mask;
                    self.stats.faults_injected += 1;
                }
            }
            FaultKind::DropPrefetches { count } => {
                self.hier.suppress_prefetches(count);
                self.stats.faults_injected += 1;
            }
            FaultKind::EvictLine { addr } => {
                self.hier.flush_line(addr);
                self.stats.faults_injected += 1;
            }
            FaultKind::SpuriousSquash => {
                if let Some(front) = self.rob.front() {
                    let pc = front.pc;
                    self.squash_newer_than(None, pc);
                    self.stats.faults_injected += 1;
                }
            }
            FaultKind::DroppedCompletion => {
                if let Some(u) = self
                    .rob
                    .iter_mut()
                    .find(|u| u.executing && !u.done)
                {
                    u.done_cycle = u64::MAX;
                    self.stats.faults_injected += 1;
                }
            }
        }
    }

    // ---- Register tag plumbing ---------------------------------------

    fn alloc_tag(&mut self) -> Option<PTag> {
        if self.live_tags >= self.cfg.pipeline.prf_size {
            return None;
        }
        let tag = self.prf_vals.len() as PTag;
        self.prf_vals.push(0);
        self.prf_ready.push(false);
        self.live_tags += 1;
        Some(tag)
    }

    fn free_tag(&mut self, tag: PTag) {
        if let Some(i) = self.shared_tags.iter().position(|&t| t == tag) {
            // Already released early by register-file compression.
            self.shared_tags.swap_remove(i);
        } else {
            self.live_tags -= 1;
        }
    }

    fn srcs_ready(&self, uop: &Uop) -> bool {
        uop.srcs.iter().all(|&t| self.prf_ready[t as usize])
    }

    fn val(&self, tag: PTag) -> u64 {
        self.prf_vals[tag as usize]
    }

    /// Removes the uop at ROB index `idx` from the issue queue (called
    /// when it starts executing).
    fn leave_iq(&mut self, idx: usize) {
        let uop = &mut self.rob[idx];
        debug_assert!(uop.in_iq);
        uop.in_iq = false;
        self.iq_count -= 1;
    }

    // ---- Commit ------------------------------------------------------

    fn commit(&mut self) -> Result<(), SimError> {
        for _ in 0..self.cfg.pipeline.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done {
                break;
            }
            if matches!(head.kind, UopKind::Fence | UopKind::Halt) && !self.sq.is_empty() {
                break; // fences and halt drain the store queue first
            }
            let Some(uop) = self.rob.pop_front() else { break };
            if let Some(fault) = uop.fault {
                return Err(SimError::Mem {
                    fault,
                    pc: uop.pc,
                });
            }
            self.last_progress_cycle = self.cycle;
            match uop.kind {
                UopKind::Halt => {
                    self.halted = true;
                    self.stats.committed += 1;
                    return Ok(());
                }
                UopKind::Fence => {
                    self.fences_inflight -= 1;
                    if self.fences_inflight == 0 {
                        self.fetch_blocked = false;
                    }
                }
                UopKind::Store => {
                    if let Some(e) = self.sq.iter_mut().find(|e| e.seq == uop.seq) {
                        e.committed = true;
                    }
                }
                UopKind::Load => {
                    self.lq.retain(|&s| s != uop.seq);
                    if let (Some(cdp), Some(addr)) = (self.cdp, uop.addr) {
                        cdp.observe(
                            addr,
                            &self.mem,
                            &mut self.hier,
                            &mut self.trace,
                            &mut self.stats,
                            self.cycle,
                        );
                    }
                    if let (Some(mut imp), Some(addr), Some(width)) =
                        (self.imp.take(), uop.addr, uop.mem_width)
                    {
                        imp.observe(
                            uop.pc,
                            addr,
                            uop.result,
                            width,
                            &self.mem,
                            &mut self.hier,
                            &mut self.trace,
                            &mut self.stats,
                            self.cycle,
                        );
                        self.imp = Some(imp);
                    }
                }
                _ => {}
            }
            if let Some((arch, prev)) = uop.prev {
                let Some(dst) = uop.dst else {
                    return Err(self.invalid_state(format!(
                        "committing pc {} renames {arch} but has no \
                         destination tag",
                        uop.pc
                    )));
                };
                self.arch_regs[arch.index()] = self.val(dst);
                self.free_tag(prev);
            }
            self.stats.committed += 1;
        }
        Ok(())
    }

    // ---- Store queue -------------------------------------------------

    fn resolve_ss_loads(&mut self) {
        let cycle = self.cycle;
        'entries: for i in 0..self.sq.len() {
            let e = self.sq[i];
            if let SsState::Outstanding { done_cycle } = e.ss {
                if done_cycle <= cycle {
                    let (Some(addr), Some(data)) = (e.addr, e.data) else {
                        continue;
                    };
                    // The SS-load is a load: it observes older in-flight
                    // stores through store-to-load forwarding, youngest
                    // first. An unresolved or partially overlapping older
                    // store defers the check (retried next cycle; the
                    // store may end up case D instead).
                    let n = e.width.bytes() as u64;
                    let mut current: Option<u64> = None;
                    for j in (0..i).rev() {
                        let older = self.sq[j];
                        let Some(o_addr) = older.addr else {
                            continue 'entries;
                        };
                        let o_n = older.width.bytes() as u64;
                        let overlap = o_addr < addr + n && addr < o_addr + o_n;
                        if !overlap {
                            continue;
                        }
                        if o_addr == addr && o_n == n {
                            match older.data {
                                Some(d) => {
                                    current = Some(d & width_mask(e.width));
                                    break;
                                }
                                None => continue 'entries,
                            }
                        }
                        continue 'entries; // partial overlap: defer
                    }
                    let current = match current {
                        Some(v) => v,
                        None => match self.mem.read(addr, e.width) {
                            Ok(v) => v,
                            Err(_) => continue,
                        },
                    };
                    let silent = current == data & width_mask(e.width);
                    self.sq[i].ss = SsState::Checked { silent };
                    self.trace.push(TraceEvent::SsLoadReturned {
                        cycle,
                        pc: e.pc,
                        silent,
                    });
                }
            }
        }
    }

    fn dequeue_stores(&mut self) -> Result<(), SimError> {
        loop {
            let cycle = self.cycle;
            let Some(head) = self.sq.front_mut() else { break };
            if !head.committed {
                break;
            }
            let pc = head.pc;
            if !head.at_head_traced {
                head.at_head_traced = true;
                self.trace.push(TraceEvent::StoreAtHead { cycle, pc });
            }
            if let Some(t) = head.performing_until {
                if cycle >= t {
                    let width = head.width;
                    let (Some(addr), Some(data)) = (head.addr, head.data) else {
                        return Err(self.invalid_state(format!(
                            "committed store at pc {pc} reached dequeue \
                             without a resolved address/data"
                        )));
                    };
                    if let Err(fault) = self.mem.write(addr, data, width) {
                        // A faulting store should have stopped at commit;
                        // reaching here means memory changed under us
                        // (e.g. an injected fault) after the bounds check.
                        return Err(self.invalid_state(format!(
                            "committed store at pc {pc} faulted at \
                             dequeue: {fault}"
                        )));
                    }
                    self.sq.pop_front();
                    self.last_progress_cycle = cycle;
                    self.stats.performed_stores += 1;
                    self.trace.push(TraceEvent::StoreDequeued { cycle, pc });
                    // One performed store completes per cycle.
                    break;
                }
                break;
            }
            let decision = if self.cfg.opts.silent_stores {
                head.ss.dequeue_decision()
            } else {
                head.ss.dequeue_decision().and(Err(
                    crate::trace::NonSilentReason::NoLoadPort,
                ))
            };
            match decision {
                Ok(()) => {
                    self.sq.pop_front();
                    self.last_progress_cycle = cycle;
                    self.stats.silent_stores += 1;
                    self.trace
                        .push(TraceEvent::StoreSilentDequeue { cycle, pc });
                    // Consecutive silent stores dequeue in the same cycle.
                }
                Err(reason) => {
                    if reason == crate::trace::NonSilentReason::SsLoadLate {
                        self.stats.ss_late += 1;
                    }
                    let Some(addr) = head.addr else {
                        return Err(self.invalid_state(format!(
                            "committed store at pc {pc} has no resolved \
                             address at dequeue"
                        )));
                    };
                    let latency = self.demand_access(addr);
                    let Some(head) = self.sq.front_mut() else {
                        return Err(self.invalid_state(format!(
                            "store queue emptied while the head store \
                             (pc {pc}) was being sent to the cache"
                        )));
                    };
                    head.performing_until = Some(cycle + latency);
                    self.trace
                        .push(TraceEvent::StoreSentToCache { cycle, pc, reason });
                    break;
                }
            }
        }
        Ok(())
    }

    fn demand_access(&mut self, addr: u64) -> u64 {
        let acc = self.hier.access(addr);
        match acc.served_by {
            ServedBy::L1 => self.stats.l1_hits += 1,
            ServedBy::L2 => self.stats.l2_hits += 1,
            ServedBy::Dram => self.stats.dram_accesses += 1,
        }
        acc.latency
    }

    // ---- Writeback ---------------------------------------------------

    fn writeback(&mut self) {
        loop {
            let cycle = self.cycle;
            let Some(idx) = self
                .rob
                .iter()
                .position(|u| u.executing && !u.done && u.done_cycle <= cycle)
            else {
                break;
            };
            let seq = self.rob[idx].seq;
            // Mark complete and broadcast the result.
            {
                let uop = &mut self.rob[idx];
                uop.done = true;
                uop.executing = false;
            }
            let uop = self.rob[idx].clone();
            if let Some(dst) = uop.dst {
                self.prf_vals[dst as usize] = uop.result;
                self.prf_ready[dst as usize] = true;
            }
            if let Some(ev) = uop.simpl_event {
                match ev {
                    SimplEvent::MulSkip => self.stats.mul_skips += 1,
                    SimplEvent::MulStrengthReduced => {
                        self.stats.mul_strength_reductions += 1;
                    }
                    SimplEvent::DivEarlyExit => self.stats.div_early_exits += 1,
                    SimplEvent::TrivialSkip => self.stats.trivial_skips += 1,
                    SimplEvent::FpSubnormal => self.stats.fp_subnormal_slow += 1,
                }
            }
            if let Some((vals, srcs)) = uop.reuse_info {
                // Insert-after-invalidate hazard, Sn only: a younger
                // in-flight instruction may already have redefined one
                // of this entry's source registers — its rename-time
                // invalidation ran before this insert, so inserting now
                // would resurrect a stale register binding. (Sv keys on
                // operand *values*, which are correct by construction.)
                let stale = self.reuse.key_kind() == crate::config::ReuseKey::RegIds
                    && self.rob.iter().any(|u| {
                        u.seq > seq
                            && matches!(u.prev, Some((r, _)) if srcs.contains(&Some(r)))
                    });
                if !stale {
                    self.reuse.insert(uop.pc, vals, srcs, uop.result);
                }
            }
            // Register-file compression: early tag release.
            if self.cfg.opts.rf_compress {
                if let Some(dst) = uop.dst {
                    if !self.shared_tags.contains(&dst)
                        && self.rfc.compresses(uop.result, &self.arch_regs)
                    {
                        self.shared_tags.push(dst);
                        self.live_tags -= 1;
                        self.stats.rfc_shares += 1;
                    }
                }
            }
            // Control-flow verification.
            match uop.kind {
                UopKind::Branch => {
                    if let Instr::Branch { .. } = uop.instr {
                        self.bimodal
                            .update(uop.pc, uop.actual_target != uop.pc + 1);
                    }
                    if uop.actual_target != uop.pred_target {
                        self.stats.branch_squashes += 1;
                        self.squash_after(seq, uop.actual_target);
                        continue;
                    }
                }
                UopKind::Jalr => {
                    self.btb.update(uop.pc, uop.actual_target);
                    if uop.actual_target != uop.pred_target {
                        self.stats.branch_squashes += 1;
                        self.squash_after(seq, uop.actual_target);
                        continue;
                    }
                }
                UopKind::Load
                    if self.cfg.opts.value_pred && uop.fault.is_none() => {
                        self.vp.update(uop.pc, uop.result);
                        if let Some(pred) = uop.vp_pred {
                            if pred == uop.result {
                                self.stats.vp_correct += 1;
                            } else {
                                self.stats.vp_squashes += 1;
                                self.squash_after(seq, uop.pc + 1);
                                continue;
                            }
                        }
                    }
                _ => {}
            }
        }
    }

    /// Squashes every uop younger than `seq` and redirects fetch to
    /// `redirect`, undoing renames by walking the ROB from the tail.
    fn squash_after(&mut self, seq: Seq, redirect: usize) {
        self.squash_newer_than(Some(seq), redirect);
    }

    /// Squashes every uop younger than `keep_upto` (all of them when
    /// `None` — the spurious-squash fault uses this to flush the whole
    /// window), redirecting fetch to `redirect`.
    fn squash_newer_than(&mut self, keep_upto: Option<Seq>, redirect: usize) {
        let cycle = self.cycle;
        while let Some(tail) = self.rob.back() {
            if keep_upto.is_some_and(|seq| tail.seq <= seq) {
                break;
            }
            let Some(uop) = self.rob.pop_back() else { break };
            if uop.in_iq {
                self.iq_count -= 1;
            }
            if let Some((arch, prev)) = uop.prev {
                self.rat[arch.index()] = prev;
            }
            if let Some(dst) = uop.dst {
                self.free_tag(dst);
            }
            match uop.kind {
                UopKind::Load => self.lq.retain(|&s| s != uop.seq),
                UopKind::Store => self.sq.retain(|e| e.seq != uop.seq),
                UopKind::Fence => {
                    self.fences_inflight -= 1;
                }
                _ => {}
            }
        }
        self.fetch_buf.clear();
        self.fetch_pc = redirect;
        self.fetch_stall_until = cycle + self.cfg.pipeline.redirect_penalty;
        self.fetch_blocked = self.fences_inflight > 0;
        self.trace.push(TraceEvent::Squash {
            cycle,
            pc: redirect,
        });
    }

    // ---- Issue / execute ---------------------------------------------

    fn issue(&mut self) {
        let p = self.cfg.pipeline;
        let mut alu = AluSlots::new(p.alu_ports, self.cfg.opts.operand_packing);
        let mut muldiv = p.muldiv_ports;
        let mut fp = p.fp_ports;
        let mut loads = p.load_ports;
        let mut stores = p.store_ports;
        let mut issued = 0usize;
        let mut newly_resolved_stores: Vec<Seq> = Vec::new();

        for idx in 0..self.rob.len() {
            if issued >= p.issue_width {
                break;
            }
            let uop = &self.rob[idx];
            if !uop.in_iq || uop.executing || uop.done {
                continue;
            }
            if !self.srcs_ready(uop) {
                continue;
            }
            let kind = uop.kind;
            match kind {
                UopKind::Load => {
                    if loads == 0 {
                        continue;
                    }
                    if self.try_issue_load(idx) {
                        loads -= 1;
                        issued += 1;
                        self.leave_iq(idx);
                    }
                }
                UopKind::Store => {
                    if stores == 0 {
                        continue;
                    }
                    let seq = self.issue_store(idx);
                    newly_resolved_stores.push(seq);
                    stores -= 1;
                    issued += 1;
                    self.leave_iq(idx);
                }
                UopKind::Flush => {
                    if loads == 0 {
                        continue;
                    }
                    self.issue_flush(idx);
                    loads -= 1;
                    issued += 1;
                    self.leave_iq(idx);
                }
                _ => {
                    if self.try_issue_compute(idx, &mut alu, &mut muldiv, &mut fp) {
                        issued += 1;
                        self.leave_iq(idx);
                    }
                }
            }
        }
        self.stats.packed_pairs += alu.packed_pairs();

        // Read-port stealing: stores whose address just resolved get an
        // SS-load if a load port is still free this cycle (Fig 4 A/D vs C).
        if self.cfg.opts.silent_stores {
            for seq in newly_resolved_stores {
                let Some(e) = self.sq.iter().position(|e| e.seq == seq) else {
                    continue;
                };
                let entry = self.sq[e];
                let (Some(addr), cycle) = (entry.addr, self.cycle) else {
                    continue;
                };
                if entry.ss != SsState::NotChecked {
                    continue;
                }
                if loads == 0 {
                    self.sq[e].ss = SsState::NoPort;
                    self.stats.ss_no_port += 1;
                    continue;
                }
                loads -= 1;
                if !self.mem.contains(addr, entry.width.bytes()) {
                    // A faulting store never performs; skip the check.
                    self.sq[e].ss = SsState::NoPort;
                    continue;
                }
                let latency = self.demand_access(addr);
                self.sq[e].ss = SsState::Outstanding {
                    done_cycle: cycle + latency,
                };
                self.stats.ss_loads += 1;
                self.trace.push(TraceEvent::SsLoadIssued {
                    cycle,
                    pc: entry.pc,
                    addr,
                });
            }
        }
    }

    /// Attempts to execute the load at ROB index `idx`. Returns whether
    /// it issued (false = blocked on an older store, retry next cycle).
    fn try_issue_load(&mut self, idx: usize) -> bool {
        let uop = &self.rob[idx];
        let Instr::Load {
            base: _,
            offset,
            width,
            signed,
            ..
        } = uop.instr
        else {
            unreachable!("load uop holds a load instruction");
        };
        let addr = self.val(uop.srcs[0]).wrapping_add(offset as u64);
        let seq = uop.seq;
        let n = width.bytes() as u64;

        // Scan older stores, youngest first.
        let mut forwarded: Option<u64> = None;
        for e in self.sq.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            let Some(st_addr) = e.addr else {
                return false; // unknown older store address: wait
            };
            let st_n = e.width.bytes() as u64;
            let overlap = st_addr < addr + n && addr < st_addr + st_n;
            if !overlap {
                continue;
            }
            if st_addr == addr && st_n == n {
                match e.data {
                    Some(d) => {
                        forwarded = Some(d & width_mask(width));
                        break;
                    }
                    None => return false, // data not ready yet
                }
            } else {
                return false; // partial overlap: wait for the store to drain
            }
        }

        let cycle = self.cycle;
        let (value, latency, fault) = if let Some(v) = forwarded {
            (v, 1, None)
        } else if !self.mem.contains(addr, width.bytes()) {
            (0, 1, Some(MemFault {
                addr,
                len: width.bytes(),
            }))
        } else {
            let latency = self.demand_access(addr);
            match self.mem.read(addr, width) {
                Ok(raw) => (raw, latency, None),
                // `contains` passed just above, so this only happens if
                // memory shrank under us; surface it as a load fault
                // (reported at commit) rather than aborting.
                Err(fault) => (0, 1, Some(fault)),
            }
        };
        let value = if signed {
            sign_extend(value, width.bytes())
        } else {
            value
        };
        let uop = &mut self.rob[idx];
        uop.executing = true;
        uop.done_cycle = cycle + latency;
        uop.result = value;
        uop.addr = Some(addr);
        uop.mem_width = Some(width);
        uop.fault = fault;
        true
    }

    /// Executes the store at ROB index `idx` (address + data capture).
    fn issue_store(&mut self, idx: usize) -> Seq {
        let uop = &self.rob[idx];
        let Instr::Store { offset, width, .. } = uop.instr else {
            unreachable!("store uop holds a store instruction");
        };
        let addr = self.val(uop.srcs[0]).wrapping_add(offset as u64);
        let data = self.val(uop.srcs[1]);
        let seq = uop.seq;
        let cycle = self.cycle;
        let fault = (!self.mem.contains(addr, width.bytes())).then_some(MemFault {
            addr,
            len: width.bytes(),
        });
        if let Some(e) = self.sq.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
            e.data = Some(data);
        }
        let uop = &mut self.rob[idx];
        uop.executing = true;
        uop.done_cycle = cycle + 1;
        uop.addr = Some(addr);
        uop.fault = fault;
        self.trace.push(TraceEvent::StoreResolved {
            cycle,
            pc: uop.pc,
            addr,
        });
        seq
    }

    fn issue_flush(&mut self, idx: usize) {
        let uop = &self.rob[idx];
        let Instr::Flush { offset, .. } = uop.instr else {
            unreachable!("flush uop holds a flush instruction");
        };
        let addr = self.val(uop.srcs[0]).wrapping_add(offset as u64);
        self.hier.flush_line(addr);
        let cycle = self.cycle;
        let uop = &mut self.rob[idx];
        uop.executing = true;
        uop.done_cycle = cycle + 2;
    }

    /// Issues a non-memory uop if a port is available.
    fn try_issue_compute(
        &mut self,
        idx: usize,
        alu: &mut AluSlots,
        muldiv: &mut usize,
        fp: &mut usize,
    ) -> bool {
        let (instr, pc, srcs, pred_target, kind) = {
            let uop = &self.rob[idx];
            (
                uop.instr,
                uop.pc,
                uop.srcs.clone(),
                uop.pred_target,
                uop.kind,
            )
        };
        let lat = self.cfg.latency;
        let opts = self.cfg.opts;
        let cycle = self.cycle;

        // Resolve operand values and the execution plan.
        #[allow(clippy::type_complexity)]
        let (plan, result, actual_target, reuse_info, reuse_hit): (
            ExecPlan,
            u64,
            usize,
            Option<([u64; 2], [Option<Reg>; 2])>,
            bool,
        ) = match instr {
            Instr::AluRR { op, rs1, rs2, .. } => {
                let (a, b) = (self.val(srcs[0]), self.val(srcs[1]));
                let regs = [Some(rs1), Some(rs2)];
                let eligible = op.is_mul() || op.is_div() || opts.reuse_simple_alu;
                if let Some((plan, r, info, hit)) =
                    self.plan_reusable(pc, a, b, regs, eligible, || {
                        op.eval(a, b)
                    }, |a, b| plan_alu(op, a, b, &lat, &opts))
                {
                    (plan, r, 0, info, hit)
                } else {
                    return false;
                }
            }
            Instr::AluRI { op, imm, rs1, .. } => {
                let (a, b) = (self.val(srcs[0]), imm as u64);
                let regs = [Some(rs1), None];
                let eligible = op.is_mul() || op.is_div() || opts.reuse_simple_alu;
                if let Some((plan, r, info, hit)) =
                    self.plan_reusable(pc, a, b, regs, eligible, || {
                        op.eval(a, b)
                    }, |a, b| plan_alu(op, a, b, &lat, &opts))
                {
                    (plan, r, 0, info, hit)
                } else {
                    return false;
                }
            }
            Instr::Fp { op, rs1, rs2, .. } => {
                let (a, b) = (self.val(srcs[0]), self.val(srcs[1]));
                let regs = [Some(rs1), Some(rs2)];
                if let Some((plan, r, info, hit)) = self.plan_reusable(
                    pc,
                    a,
                    b,
                    regs,
                    true,
                    || op.eval(a, b),
                    |a, b| plan_fp(op, a, b, &lat, &opts),
                ) {
                    (plan, r, 0, info, hit)
                } else {
                    return false;
                }
            }
            Instr::Li { imm, .. } => (
                ExecPlan {
                    latency: 1,
                    port: PortClass::None,
                    event: None,
                },
                imm,
                0,
                None,
                false,
            ),
            Instr::RdCycle { .. } => (
                ExecPlan {
                    latency: 1,
                    port: PortClass::None,
                    event: None,
                },
                cycle,
                0,
                None,
                false,
            ),
            Instr::Jal { .. } => (
                ExecPlan {
                    latency: 1,
                    port: PortClass::None,
                    event: None,
                },
                (pc + 1) as u64,
                pred_target,
                None,
                false,
            ),
            Instr::Jalr { offset, .. } => {
                let target = self.val(srcs[0]).wrapping_add(offset as u64) as usize;
                (
                    ExecPlan {
                        latency: 1,
                        port: PortClass::Alu,
                        event: None,
                    },
                    (pc + 1) as u64,
                    target,
                    None,
                    false,
                )
            }
            Instr::Branch { cond, target, .. } => {
                let (a, b) = (self.val(srcs[0]), self.val(srcs[1]));
                let taken = cond.eval(a, b);
                (
                    ExecPlan {
                        latency: 1,
                        port: PortClass::Alu,
                        event: None,
                    },
                    0,
                    if taken { target } else { pc + 1 },
                    None,
                    false,
                )
            }
            _ => unreachable!("memory and system uops are issued elsewhere"),
        };

        // Port availability.
        let narrow = match instr {
            Instr::AluRR { .. } => {
                packable(self.val(srcs[0]), self.val(srcs[1]))
            }
            Instr::AluRI { imm, .. } => packable(self.val(srcs[0]), imm as u64),
            _ => false,
        };
        match plan.port {
            PortClass::Alu => {
                if !alu.take(narrow && matches!(kind, UopKind::Alu)) {
                    return false;
                }
            }
            PortClass::MulDiv => {
                if *muldiv == 0 {
                    return false;
                }
                *muldiv -= 1;
            }
            PortClass::Fp => {
                if *fp == 0 {
                    return false;
                }
                *fp -= 1;
            }
            PortClass::None => {}
            PortClass::Load | PortClass::Store => {
                unreachable!("memory ports handled in issue()")
            }
        }

        if reuse_hit {
            self.stats.reuse_hits += 1;
        } else if reuse_info.is_some() {
            self.stats.reuse_misses += 1;
        }
        let uop = &mut self.rob[idx];
        uop.executing = true;
        uop.done_cycle = cycle + plan.latency.max(1);
        uop.result = result;
        uop.actual_target = actual_target;
        uop.reuse_info = reuse_info;
        uop.simpl_event = plan.event;
        true
    }

    /// Wraps plan construction with the computation-reuse lookup. Always
    /// returns `Some`; the `Option` keeps call sites uniform. The last
    /// tuple element reports a memo hit; hit/miss statistics are
    /// accounted by the caller once the uop actually issues (a
    /// port-blocked uop retries and must not double-count).
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn plan_reusable(
        &mut self,
        pc: usize,
        a: u64,
        b: u64,
        srcs: [Option<Reg>; 2],
        eligible: bool,
        eval: impl FnOnce() -> u64,
        plan: impl FnOnce(u64, u64) -> ExecPlan,
    ) -> Option<(ExecPlan, u64, Option<([u64; 2], [Option<Reg>; 2])>, bool)> {
        if self.cfg.opts.comp_reuse && eligible {
            if let Some(result) = self.reuse.lookup(pc, [a, b], srcs) {
                return Some((
                    ExecPlan {
                        latency: 1,
                        port: PortClass::None,
                        event: None,
                    },
                    result,
                    None,
                    true,
                ));
            }
            return Some((plan(a, b), eval(), Some(([a, b], srcs)), false));
        }
        Some((plan(a, b), eval(), None, false))
    }

    // ---- Dispatch / rename -------------------------------------------

    fn dispatch(&mut self) -> Result<(), SimError> {
        let p = self.cfg.pipeline;
        for _ in 0..p.dispatch_width {
            let Some(&(pc, instr, pred_target)) = self.fetch_buf.front() else {
                break;
            };
            if self.rob.len() >= p.rob_size {
                self.stats.backend_stalls += 1;
                break;
            }
            let kind = classify(&instr);
            let needs_iq = !matches!(kind, UopKind::Nop | UopKind::Fence | UopKind::Halt);
            if needs_iq && self.iq_count >= p.iq_size {
                self.stats.backend_stalls += 1;
                break;
            }
            match kind {
                UopKind::Load if self.lq.len() >= p.lq_size => {
                    self.stats.backend_stalls += 1;
                    break;
                }
                UopKind::Store if self.sq.len() >= p.sq_size => {
                    self.stats.sq_full_stalls += 1;
                    break;
                }
                _ => {}
            }
            let dest = instr.dest();
            if dest.is_some() && self.live_tags >= p.prf_size {
                self.stats.rename_stalls_prf += 1;
                break;
            }

            // All resources available: rename and dispatch.
            self.fetch_buf.pop_front();
            let srcs: Vec<PTag> = instr
                .sources()
                .iter()
                .map(|r| self.rat[r.index()])
                .collect();
            let (dst, prev) = match dest {
                Some(rd) => {
                    let Some(tag) = self.alloc_tag() else {
                        // Gated on live_tags < prf_size above, so the
                        // free list can only be empty if tag accounting
                        // was corrupted.
                        return Err(SimError::ResourceExhausted {
                            resource: format!(
                                "physical register file ({} tags)",
                                p.prf_size
                            ),
                            cycle: self.cycle,
                        });
                    };
                    let prev = self.rat[rd.index()];
                    self.rat[rd.index()] = tag;
                    self.reuse.invalidate_reg(rd);
                    (Some(tag), Some((rd, prev)))
                }
                None => (None, None),
            };
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut uop = Uop {
                seq,
                pc,
                instr,
                kind,
                srcs,
                dst,
                prev,
                in_iq: needs_iq,
                executing: false,
                done: !needs_iq,
                done_cycle: self.cycle,
                result: 0,
                addr: None,
                mem_width: None,
                fault: None,
                pred_target,
                actual_target: 0,
                vp_pred: None,
                reuse_info: None,
                simpl_event: None,
            };

            match kind {
                UopKind::Load => {
                    self.lq.push_back(seq);
                    if self.cfg.opts.value_pred {
                        if let Some(pred) = self.vp.predict(pc) {
                            let Some(dst) = uop.dst else {
                                return Err(self.invalid_state(format!(
                                    "load at pc {pc} dispatched without a \
                                     destination tag"
                                )));
                            };
                            let tag = dst as usize;
                            self.prf_vals[tag] = pred;
                            self.prf_ready[tag] = true;
                            uop.vp_pred = Some(pred);
                            self.stats.vp_predictions += 1;
                        }
                    }
                }
                UopKind::Store => {
                    let Instr::Store { width, .. } = instr else {
                        unreachable!("store kind");
                    };
                    self.sq.push_back(SqEntry {
                        seq,
                        pc,
                        width,
                        addr: None,
                        data: None,
                        committed: false,
                        ss: SsState::NotChecked,
                        performing_until: None,
                        at_head_traced: false,
                    });
                }
                UopKind::Fence => {
                    self.fences_inflight += 1;
                }
                _ => {}
            }
            if needs_iq {
                self.iq_count += 1;
            }
            self.rob.push_back(uop);
        }
        Ok(())
    }

    // ---- Fetch -------------------------------------------------------

    fn fetch(&mut self) {
        if self.halted || self.fetch_blocked || self.cycle < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.pipeline.fetch_width {
            if self.fetch_buf.len() >= 2 * self.cfg.pipeline.dispatch_width.max(4) {
                break;
            }
            let Some(&instr) = self.prog.get(self.fetch_pc) else {
                break;
            };
            let pc = self.fetch_pc;
            match instr {
                Instr::Branch { target, .. } => {
                    let taken = self.bimodal.predict(pc);
                    let next = if taken { target } else { pc + 1 };
                    self.fetch_buf.push_back((pc, instr, next));
                    self.fetch_pc = next;
                    if taken {
                        break;
                    }
                }
                Instr::Jal { target, .. } => {
                    self.fetch_buf.push_back((pc, instr, target));
                    self.fetch_pc = target;
                    break;
                }
                Instr::Jalr { .. } => {
                    let next = self.btb.predict(pc).unwrap_or(pc + 1);
                    self.fetch_buf.push_back((pc, instr, next));
                    self.fetch_pc = next;
                    break;
                }
                Instr::Fence | Instr::Halt => {
                    self.fetch_buf.push_back((pc, instr, pc + 1));
                    self.fetch_pc = pc + 1;
                    self.fetch_blocked = true;
                    break;
                }
                _ => {
                    self.fetch_buf.push_back((pc, instr, pc + 1));
                    self.fetch_pc = pc + 1;
                }
            }
        }
    }
}

fn width_mask(w: Width) -> u64 {
    match w.bytes() {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;
    use pandora_isa::{Asm, BranchCond};

    fn run_prog(cfg: SimConfig, build: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(cfg);
        m.load_program(&p);
        m.run(1_000_000).unwrap();
        m
    }

    #[test]
    fn straight_line_arithmetic() {
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 6);
            a.li(Reg::T1, 7);
            a.mul(Reg::T2, Reg::T0, Reg::T1);
            a.addi(Reg::T2, Reg::T2, 100);
        });
        assert_eq!(m.reg(Reg::T2), 142);
    }

    #[test]
    fn loops_and_branches() {
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 0);
            a.li(Reg::T1, 100);
            a.label("l");
            a.add(Reg::T0, Reg::T0, Reg::T1);
            a.addi(Reg::T1, Reg::T1, -1);
            a.bnez(Reg::T1, "l");
        });
        assert_eq!(m.reg(Reg::T0), 5050);
    }

    #[test]
    fn memory_store_load_roundtrip() {
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 0xabcd);
            a.sd(Reg::T0, Reg::ZERO, 256);
            a.ld(Reg::T1, Reg::ZERO, 256);
        });
        assert_eq!(m.reg(Reg::T1), 0xabcd);
        assert_eq!(m.mem().read_u64(256).unwrap(), 0xabcd);
    }

    #[test]
    fn store_to_load_forwarding_before_dequeue() {
        // The load must see the in-flight store's data even though the
        // store has not written memory yet.
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 7);
            a.sd(Reg::T0, Reg::ZERO, 64);
            a.ld(Reg::T1, Reg::ZERO, 64);
            a.addi(Reg::T1, Reg::T1, 1);
        });
        assert_eq!(m.reg(Reg::T1), 8);
    }

    #[test]
    fn branch_mispredicts_squash_correctly() {
        // Data-dependent branch pattern the bimodal predictor cannot
        // track perfectly; architectural result must still be exact.
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 0); // acc
            a.li(Reg::T1, 50); // i
            a.label("l");
            a.andi(Reg::T2, Reg::T1, 1);
            a.beqz(Reg::T2, "even");
            a.addi(Reg::T0, Reg::T0, 3);
            a.j("next");
            a.label("even");
            a.addi(Reg::T0, Reg::T0, 5);
            a.label("next");
            a.addi(Reg::T1, Reg::T1, -1);
            a.bnez(Reg::T1, "l");
        });
        // 25 odd iterations (+3) and 25 even iterations (+5).
        assert_eq!(m.reg(Reg::T0), 25 * 3 + 25 * 5);
        assert!(m.stats().branch_squashes > 0, "pattern must mispredict");
    }

    #[test]
    fn jalr_via_btb() {
        let m = run_prog(SimConfig::default(), |a| {
            a.jal(Reg::RA, "f");
            a.li(Reg::T1, 1);
            a.j("end");
            a.label("f");
            a.li(Reg::T0, 9);
            a.ret();
            a.label("end");
        });
        assert_eq!(m.reg(Reg::T0), 9);
        assert_eq!(m.reg(Reg::T1), 1);
    }

    #[test]
    fn rdcycle_monotonic() {
        let m = run_prog(SimConfig::default(), |a| {
            a.rdcycle(Reg::T0);
            a.fence();
            a.li(Reg::T2, 10);
            a.label("l");
            a.addi(Reg::T2, Reg::T2, -1);
            a.bnez(Reg::T2, "l");
            a.fence();
            a.rdcycle(Reg::T1);
        });
        assert!(m.reg(Reg::T1) > m.reg(Reg::T0));
    }

    #[test]
    fn fence_drains_store_queue() {
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 5);
            a.sd(Reg::T0, Reg::ZERO, 128);
            a.fence();
            a.rdcycle(Reg::T1);
        });
        // After the fence the store must be in memory.
        assert_eq!(m.mem().read_u64(128).unwrap(), 5);
        assert_eq!(m.stats().performed_stores, 1);
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        assert_eq!(m.run(1000), Err(SimError::Timeout { cycles: 1000 }));
    }

    #[test]
    fn committed_fault_is_reported() {
        let mut a = Asm::new();
        a.li(Reg::T0, 1 << 40);
        a.ld(Reg::T1, Reg::T0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p);
        assert!(matches!(m.run(100_000), Err(SimError::Mem { pc: 1, .. })));
    }

    #[test]
    fn wrong_path_fault_is_harmless() {
        // A load behind a mispredicted branch accesses garbage; once the
        // branch resolves the load is squashed and the program finishes.
        let m = run_prog(SimConfig::default(), |a| {
            a.li(Reg::T0, 1 << 40); // wild address
            a.li(Reg::T1, 1);
            a.bnez(Reg::T1, "skip"); // predicted not-taken initially
            a.ld(Reg::T2, Reg::T0, 0); // wrong-path wild load
            a.label("skip");
            a.li(Reg::T3, 77);
        });
        assert_eq!(m.reg(Reg::T3), 77);
    }

    #[test]
    fn silent_store_detected_and_skipped() {
        let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
        let m = run_prog(cfg, |a| {
            a.li(Reg::T0, 42);
            a.sd(Reg::T0, Reg::ZERO, 512); // writes 42
            a.fence();
            a.sd(Reg::T0, Reg::ZERO, 512); // same value: silent
            a.fence();
        });
        assert_eq!(m.stats().silent_stores, 1);
        assert_eq!(m.stats().performed_stores, 1);
        assert_eq!(m.mem().read_u64(512).unwrap(), 42);
    }

    #[test]
    fn non_silent_store_performs() {
        let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
        let m = run_prog(cfg, |a| {
            a.li(Reg::T0, 42);
            a.li(Reg::T1, 43);
            a.sd(Reg::T0, Reg::ZERO, 512);
            a.fence();
            a.sd(Reg::T1, Reg::ZERO, 512); // different value
            a.fence();
        });
        assert_eq!(m.stats().silent_stores, 0);
        assert_eq!(m.mem().read_u64(512).unwrap(), 43);
    }

    #[test]
    fn value_prediction_squashes_on_change() {
        let mut opts = OptConfig::baseline();
        opts.value_pred = true;
        opts.vp_confidence = 2;
        let m = run_prog(SimConfig::with_opts(opts), |a| {
            a.li(Reg::T3, 9);
            a.sd(Reg::T3, Reg::ZERO, 640);
            a.fence();
            a.li(Reg::T1, 16); // loop counter
            a.li(Reg::T6, 8); // iteration at which the value changes
            a.label("l");
            a.ld(Reg::T2, Reg::ZERO, 640); // same static load every iteration
            a.addi(Reg::T1, Reg::T1, -1);
            a.bne(Reg::T1, Reg::T6, "skip");
            // Halfway through, overwrite the loaded location: the next
            // trip around mispredicts the trained value.
            a.li(Reg::T4, 10);
            a.sd(Reg::T4, Reg::ZERO, 640);
            a.fence();
            a.label("skip");
            a.bnez(Reg::T1, "l");
            a.mv(Reg::T5, Reg::T2);
        });
        assert_eq!(m.reg(Reg::T5), 10, "architectural correctness");
        assert!(m.stats().vp_predictions > 0);
        assert!(m.stats().vp_squashes >= 1);
    }

    #[test]
    fn computation_reuse_hits_on_repeat() {
        let mut opts = OptConfig::baseline();
        opts.comp_reuse = true;
        let m = run_prog(SimConfig::with_opts(opts), |a| {
            a.li(Reg::T0, 123);
            a.li(Reg::T1, 77);
            a.li(Reg::T3, 6);
            a.label("l");
            a.mul(Reg::T2, Reg::T0, Reg::T1); // same pc, same operands
            a.addi(Reg::T3, Reg::T3, -1);
            a.bnez(Reg::T3, "l");
        });
        assert_eq!(m.reg(Reg::T2), 123 * 77);
        assert!(m.stats().reuse_hits >= 4, "later iterations memoized");
    }

    #[test]
    fn comp_simpl_changes_mul_timing() {
        let time = |operand: u64| {
            let mut opts = OptConfig::baseline();
            opts.comp_simpl = true;
            let m = run_prog(SimConfig::with_opts(opts), |a| {
                a.li(Reg::T0, operand);
                a.li(Reg::T1, 3);
                a.li(Reg::T3, 200);
                a.label("l");
                // Dependent chain so latency accumulates.
                a.mul(Reg::T1, Reg::T1, Reg::T0);
                a.alui(pandora_isa::AluOp::Or, Reg::T1, Reg::T1, 3);
                a.addi(Reg::T3, Reg::T3, -1);
                a.bnez(Reg::T3, "l");
            });
            m.stats().cycles
        };
        let zero = time(0);
        let nonzero = time(5);
        assert!(
            zero + 100 < nonzero,
            "zero-skip must be clearly faster: {zero} vs {nonzero}"
        );
    }

    #[test]
    fn rfc_reduces_prf_pressure() {
        // Tight PRF: producing many zeros compresses and renames faster.
        let mut cfg = SimConfig::default();
        cfg.pipeline.prf_size = 36;
        let body = |val: u64| {
            move |a: &mut Asm| {
                a.li(Reg::T0, val);
                a.li(Reg::T3, 300);
                a.label("l");
                for rd in [Reg::T1, Reg::T2, Reg::T4, Reg::T5, Reg::S2, Reg::S3] {
                    a.alu(pandora_isa::AluOp::And, rd, Reg::T0, Reg::T0);
                }
                a.addi(Reg::T3, Reg::T3, -1);
                a.bnez(Reg::T3, "l");
            }
        };
        let mut on = cfg;
        on.opts.rf_compress = true;
        let compressed = {
            let m = run_prog(on, body(0));
            assert!(m.stats().rfc_shares > 0);
            m.stats().cycles
        };
        let uncompressed = {
            let m = run_prog(on, body(0xdead_beef_cafe));
            m.stats().cycles
        };
        assert!(
            compressed < uncompressed,
            "zero results compress: {compressed} vs {uncompressed}"
        );
    }

    #[test]
    fn branch_cond_variants_execute() {
        for (cond, a_val, b_val, taken) in [
            (BranchCond::Eq, 3u64, 3u64, true),
            (BranchCond::Ne, 3, 3, false),
            (BranchCond::Ltu, 2, 3, true),
            (BranchCond::Geu, 2, 3, false),
        ] {
            let m = run_prog(SimConfig::default(), |asm| {
                asm.li(Reg::T0, a_val);
                asm.li(Reg::T1, b_val);
                asm.branch(cond, Reg::T0, Reg::T1, "yes");
                asm.li(Reg::T2, 1);
                asm.j("end");
                asm.label("yes");
                asm.li(Reg::T2, 2);
                asm.label("end");
            });
            assert_eq!(m.reg(Reg::T2), if taken { 2 } else { 1 }, "{cond:?}");
        }
    }

    /// Builds a program wedged by a dropped completion: a load's result
    /// never arrives, so commit stalls forever while cycles keep
    /// ticking — the artificial no-progress case.
    fn wedged_machine(cfg: SimConfig) -> Machine {
        let mut a = Asm::new();
        a.li(Reg::T0, 100_000);
        a.label("l");
        a.ld(Reg::T1, Reg::ZERO, 0x100);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "l");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(cfg);
        m.load_program(&p);
        m.inject_faults(FaultPlan::single(50, FaultKind::DroppedCompletion));
        m
    }

    #[test]
    fn no_progress_yields_deadlock_not_timeout() {
        let mut m = wedged_machine(SimConfig::default());
        let err = m.run(10_000_000).unwrap_err();
        let SimError::Deadlock { cycle, diagnostics } = err else {
            panic!("expected Deadlock, got {err}");
        };
        assert!(
            cycle < 1_000_000,
            "watchdog fired long before the cycle budget (at {cycle})"
        );
        assert!(diagnostics.rob_len > 0, "the wedged uop is still in the ROB");
        assert!(
            cycle - diagnostics.last_progress_cycle
                >= SimConfig::default().watchdog_cycles.unwrap()
        );
    }

    #[test]
    fn disabled_watchdog_reports_timeout_instead() {
        let cfg = SimConfig { watchdog_cycles: None, ..SimConfig::default() };
        let mut m = wedged_machine(cfg);
        assert_eq!(m.run(30_000), Err(SimError::Timeout { cycles: 30_000 }));
    }

    #[test]
    fn deadlock_diagnostics_render_the_stall_site() {
        let mut m = wedged_machine(SimConfig::default());
        let Err(SimError::Deadlock { diagnostics, .. }) = m.run(10_000_000) else {
            panic!("expected Deadlock");
        };
        let text = diagnostics.to_string();
        assert!(text.contains("rob"), "snapshot names the ROB: {text}");
    }
}
