//! The machine facade: a thin scheduler over the stage modules.
//!
//! A single-core, speculative, out-of-order machine in the shape of the
//! paper's "Baseline" (§III): fetch with branch prediction → rename
//! (physical register file + free list) → issue queue → execution ports
//! → load/store queues → reorder buffer → in-order commit, over a
//! two-level cache hierarchy. Stores dequeue from the store queue in
//! program order and only after their line is present in the L1
//! (§V-A1) — the property the silent-store amplification gadget relies
//! on.
//!
//! The pipeline itself lives in [`crate::pipeline`], one module per
//! stage; the seven Table I optimization classes are
//! [`crate::opt::hook::OptHook`]s assembled by
//! [`Hooks::from_config`], so a [`Machine`] is "baseline stages + a
//! list of hooks". All cross-cutting observation (statistics, trace,
//! DMP patterns) flows through the state's single
//! [`crate::event::EventBus`]. Fault injection
//! ([`Machine::inject_faults`]) installs a
//! [`crate::opt::hook::FaultHook`] on the same layer.
//!
//! Recovery from branch and value mispredictions uses ROB-walk rename
//! undo, so any instruction can be a squash point without checkpoints.

use pandora_isa::{Program, Reg};

use crate::config::SimConfig;
use crate::fault::FaultPlan;
use crate::mem::hierarchy::Hierarchy;
use crate::mem::memory::Memory;
use crate::opt::hook::{FaultHook, Hooks};
use crate::pipeline::{PipelineStage, PipelineState, Stages};
use crate::stats::SimStats;
use crate::trace::Trace;

pub use crate::error::{DeadlockDiagnostics, SimError};

/// The simulated machine: one out-of-order core, two cache levels, flat
/// memory.
///
/// ```
/// use pandora_isa::{Asm, Reg};
/// use pandora_sim::{Machine, SimConfig};
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 21);
/// a.add(Reg::T0, Reg::T0, Reg::T0);
/// a.halt();
/// let prog = a.assemble().unwrap();
///
/// let mut m = Machine::new(SimConfig::default());
/// m.load_program(&prog);
/// let stats = m.run(10_000).unwrap();
/// assert_eq!(m.reg(Reg::T0), 42);
/// assert!(stats.committed >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    state: PipelineState,
    stages: Stages,
    hooks: Hooks,
}

impl Machine {
    /// Creates a machine with zeroed memory and registers; the enabled
    /// Table I optimization classes in `cfg.opts` become the hook list.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Machine {
        Machine {
            hooks: Hooks::from_config(&cfg),
            state: PipelineState::new(cfg),
            stages: Stages::default(),
        }
    }

    /// Installs the program to run (fetch starts at instruction 0).
    pub fn load_program(&mut self, prog: &Program) {
        self.state.prog = prog.clone();
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.state.cfg
    }

    /// The committed architectural value of register `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.state.arch_regs[r.index()]
    }

    /// Sets register `r` before the run starts (`x0` is ignored).
    ///
    /// # Panics
    ///
    /// Panics if called after the machine has started executing.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        assert_eq!(self.state.cycle, 0, "set_reg is only valid before run()");
        if r.is_zero() {
            return;
        }
        self.state.arch_regs[r.index()] = v;
        let tag = self.state.rat[r.index()] as usize;
        self.state.prf_vals[tag] = v;
    }

    /// Read-only memory access.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.state.mem
    }

    /// Mutable memory access (for setting up experiment state).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.state.mem
    }

    /// The cache hierarchy (for receivers probing residency).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.state.hier
    }

    /// Mutable hierarchy access (for priming/flushing cache state).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.state.hier
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Whether `halt` has committed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.state.halted
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        self.state.bus.stats()
    }

    /// Enables microarchitectural event tracing.
    pub fn enable_trace(&mut self) {
        self.state.bus.trace_mut().enable();
    }

    /// The event trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        self.state.bus.trace()
    }

    /// The DMP's confirmed `(src_pc, dst_pc, base, scale)` patterns, as
    /// retained by the event bus (empty without a DMP).
    #[must_use]
    pub fn dmp_patterns(&self) -> &[(usize, usize, u64, u64)] {
        self.state.bus.dmp_patterns()
    }

    /// Rewinds to the post-construction state — cycle 0, zeroed memory
    /// and registers, cold caches and predictors, fresh statistics —
    /// while keeping every allocation and the loaded program, so
    /// calibration loops can re-run trials without re-allocating a
    /// machine. The hook list is rewound in place (no hook is
    /// re-boxed), which also discards any installed [`FaultPlan`] and
    /// all optimization learning state (reuse memos, value-predictor
    /// confidence, DMP correlations); the noise hook's RNG streams are
    /// re-derived from their seeds so a reset machine replays the
    /// identical noise sequence.
    pub fn reset(&mut self) {
        self.state.reset();
        self.hooks.reset_from_config(&self.state.cfg);
    }

    /// Rewinds the machine *into a different configuration*: the fleet
    /// primitive for recycling one allocated machine across the trials
    /// of a sweep whose members differ only in seeds, noise,
    /// optimization switches, latencies, or watchdog settings.
    ///
    /// When [`SimConfig::same_shape`] holds between the current and new
    /// configs, this is an in-place [`Machine::reset`] under the new
    /// config — every buffer survives at its high-water mark, the
    /// loaded program is kept, and `true` is returned. The result is
    /// bit-equal to a fresh `Machine::new(cfg)` with the same program
    /// loaded (the differential test in `tests/fleet_differential.rs`
    /// pins this).
    ///
    /// When the new config changes allocation shape (memory size,
    /// pipeline geometry, cache geometry, memory latencies), the
    /// machine is rebuilt from scratch and `false` is returned — the
    /// caller must re-load its program.
    pub fn reset_to(&mut self, cfg: SimConfig) -> bool {
        if self.state.cfg.same_shape(&cfg) {
            if self.state.cfg == cfg {
                // Identical config: the cheap in-place path, no re-boxing.
                self.reset();
            } else {
                // Hooks are rebuilt rather than reset in place: a
                // hook's `reset` re-derives from the config it was
                // *built* with (e.g. the noise hook replays its own
                // stored seed), which is exactly wrong when the config
                // changed. The big allocations (memory, caches, PRF)
                // all live in `PipelineState` and survive.
                self.state.cfg = cfg;
                self.state.reset();
                self.hooks = Hooks::from_config(&cfg);
            }
            true
        } else {
            *self = Machine::new(cfg);
            false
        }
    }

    /// Installs a fault plan: each scheduled event is applied at the
    /// start of its cycle on subsequent [`Machine::step`]s. Replaces
    /// any previously installed plan; events scheduled at or before the
    /// current cycle are dropped rather than fired retroactively.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        let cursor = plan
            .events()
            .iter()
            .position(|e| e.cycle > self.state.cycle)
            .unwrap_or(plan.len());
        self.hooks.install(Box::new(FaultHook::new(plan, cursor)));
    }

    /// Runs until `halt` commits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] if the budget runs out,
    /// * [`SimError::Mem`] if a committed access faults,
    /// * [`SimError::WildPc`] if control flow leaves the program,
    /// * [`SimError::Deadlock`] if the watchdog sees no progress,
    /// * [`SimError::ResourceExhausted`] / [`SimError::InvalidState`]
    ///   if a pipeline invariant breaks (malformed program or
    ///   injected fault).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let limit = self.state.cycle + max_cycles;
        while !self.state.halted {
            if self.state.cycle >= limit {
                return Err(SimError::Timeout { cycles: max_cycles });
            }
            self.step()?;
        }
        Ok(*self.state.bus.stats())
    }

    /// Advances the machine one cycle: stages tick in reverse pipeline
    /// order (commit first) so a result produced in cycle *n* is
    /// consumed no earlier than cycle *n + 1*.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn step(&mut self) -> Result<(), SimError> {
        let st = &mut self.state;
        st.cycle += 1;
        st.bus.begin_cycle(st.cycle);
        self.hooks.on_cycle_start(st);
        self.stages.commit.tick(st, &mut self.hooks)?;
        if st.halted {
            st.bus.set_cycles(st.cycle);
            return Ok(());
        }
        self.stages.lsq.tick(st, &mut self.hooks)?;
        self.stages.execute.tick(st, &mut self.hooks)?;
        self.stages.issue.tick(st, &mut self.hooks)?;
        self.stages.rename.tick(st, &mut self.hooks)?;
        self.stages.fetch.tick(st, &mut self.hooks)?;
        st.bus.set_cycles(st.cycle);
        if st.cfg.paranoid_checks {
            st.paranoid_validate()?;
        }
        // Wild control flow: nothing in flight and nothing fetchable.
        if st.rob.is_empty()
            && st.fetch_buf.is_empty()
            && st.sq.is_empty()
            && !st.fetch_blocked
            && st.cycle >= st.fetch_stall_until
            && st.prog.get(st.fetch_pc).is_none()
        {
            return Err(SimError::WildPc { pc: st.fetch_pc });
        }
        // Watchdog: work is in flight but nothing has committed or
        // drained for a whole window — the pipeline is wedged, and
        // spinning to the cycle cap would only mislabel it a Timeout.
        if let Some(window) = st.cfg.watchdog_cycles {
            if st.cycle.saturating_sub(st.last_progress_cycle) >= window {
                return Err(SimError::Deadlock {
                    cycle: st.cycle,
                    diagnostics: st.deadlock_snapshot(),
                });
            }
        }
        Ok(())
    }
}
