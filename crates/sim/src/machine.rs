//! The machine facade: a thin scheduler over the stage modules.
//!
//! A single-core, speculative, out-of-order machine in the shape of the
//! paper's "Baseline" (§III): fetch with branch prediction → rename
//! (physical register file + free list) → issue queue → execution ports
//! → load/store queues → reorder buffer → in-order commit, over a
//! two-level cache hierarchy. Stores dequeue from the store queue in
//! program order and only after their line is present in the L1
//! (§V-A1) — the property the silent-store amplification gadget relies
//! on.
//!
//! The pipeline itself lives in [`crate::pipeline`], one module per
//! stage; the seven Table I optimization classes are
//! [`crate::opt::hook::OptHook`]s assembled by
//! [`Hooks::from_config`], so a [`Machine`] is "baseline stages + a
//! list of hooks". All cross-cutting observation (statistics, trace,
//! DMP patterns) flows through the state's single
//! [`crate::event::EventBus`]. Fault injection
//! ([`Machine::inject_faults`]) installs a
//! [`crate::opt::hook::FaultHook`] on the same layer.
//!
//! Recovery from branch and value mispredictions uses ROB-walk rename
//! undo, so any instruction can be a squash point without checkpoints.

use pandora_isa::{Program, Reg};

use crate::config::SimConfig;
use crate::fault::FaultPlan;
use crate::func::{EmuError, Emulator};
use crate::mem::hierarchy::Hierarchy;
use crate::mem::memory::Memory;
use crate::opt::hook::{FaultHook, Hooks};
use crate::pipeline::{PipelineStage, PipelineState, Stages};
use crate::stats::SimStats;
use crate::trace::Trace;

pub use crate::error::{DeadlockDiagnostics, SimError};

/// A point-in-time image of a [`Machine`], taken by
/// [`Machine::snapshot`] and re-imposed by [`Machine::restore`].
///
/// A checkpoint is a *deep copy of everything that determines future
/// behaviour*: the architectural state (registers, memory with its
/// `dirty_hi` write high-water mark, program), the microarchitectural
/// window (fetch buffer, rename tables, ROB, load/store queues),
/// the cache hierarchy and branch predictors, the accumulated
/// statistics/trace, and the full hook list — including learned
/// optimization tables and the noise hook's `SmallRng` streams *at
/// their current positions*, so trials forked from one warmed
/// checkpoint resume the exact noise sequence a serial replay would
/// see.
///
/// The pipeline stages themselves are stateless schedulers and are not
/// part of the image.
///
/// Checkpoints are the fleet's fork primitive: wrap one in an
/// [`std::sync::Arc`] and hand it to many
/// [`crate::fleet::MemberSpec`]s to run each trial from the shared
/// warm state instead of replaying the prefix.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    state: PipelineState,
    hooks: Hooks,
}

impl Checkpoint {
    /// The cycle the snapshot was taken at. `0` means the machine had
    /// not stepped yet (a "warm prep" checkpoint); restored machines
    /// resume counting from here.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.state.cycle()
    }

    /// The configuration the snapshotted machine ran under.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.state.cfg
    }

    /// Read-only view of the snapshotted memory image.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.state.mem
    }
}

/// The simulated machine: one out-of-order core, two cache levels, flat
/// memory.
///
/// ```
/// use pandora_isa::{Asm, Reg};
/// use pandora_sim::{Machine, SimConfig};
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 21);
/// a.add(Reg::T0, Reg::T0, Reg::T0);
/// a.halt();
/// let prog = a.assemble().unwrap();
///
/// let mut m = Machine::new(SimConfig::default());
/// m.load_program(&prog);
/// let stats = m.run(10_000).unwrap();
/// assert_eq!(m.reg(Reg::T0), 42);
/// assert!(stats.committed >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    state: PipelineState,
    stages: Stages,
    hooks: Hooks,
}

impl Machine {
    /// Creates a machine with zeroed memory and registers; the enabled
    /// Table I optimization classes in `cfg.opts` become the hook list.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Machine {
        Machine {
            hooks: Hooks::from_config(&cfg),
            state: PipelineState::new(cfg),
            stages: Stages::default(),
        }
    }

    /// Installs the program to run (fetch starts at instruction 0).
    pub fn load_program(&mut self, prog: &Program) {
        self.state.prog = prog.clone();
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.state.cfg
    }

    /// The committed architectural value of register `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.state.arch_regs[r.index()]
    }

    /// Sets register `r` before the run starts (`x0` is ignored).
    ///
    /// # Panics
    ///
    /// Panics if called after the machine has started executing.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        assert_eq!(self.state.cycle, 0, "set_reg is only valid before run()");
        if r.is_zero() {
            return;
        }
        self.state.arch_regs[r.index()] = v;
        let tag = self.state.rat[r.index()] as usize;
        self.state.prf_vals[tag] = v;
    }

    /// Read-only memory access.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.state.mem
    }

    /// Mutable memory access (for setting up experiment state).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.state.mem
    }

    /// The cache hierarchy (for receivers probing residency).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.state.hier
    }

    /// Mutable hierarchy access (for priming/flushing cache state).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.state.hier
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Whether `halt` has committed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.state.halted
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        self.state.bus.stats()
    }

    /// Enables microarchitectural event tracing.
    pub fn enable_trace(&mut self) {
        self.state.bus.trace_mut().enable();
    }

    /// The event trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        self.state.bus.trace()
    }

    /// The DMP's confirmed `(src_pc, dst_pc, base, scale)` patterns, as
    /// retained by the event bus (empty without a DMP).
    #[must_use]
    pub fn dmp_patterns(&self) -> &[(usize, usize, u64, u64)] {
        self.state.bus.dmp_patterns()
    }

    /// Rewinds to the post-construction state — cycle 0, zeroed memory
    /// and registers, cold caches and predictors, fresh statistics —
    /// while keeping every allocation and the loaded program, so
    /// calibration loops can re-run trials without re-allocating a
    /// machine. The hook list is rewound in place (no hook is
    /// re-boxed), which also discards any installed [`FaultPlan`] and
    /// all optimization learning state (reuse memos, value-predictor
    /// confidence, DMP correlations); the noise hook's RNG streams are
    /// re-derived from their seeds so a reset machine replays the
    /// identical noise sequence.
    pub fn reset(&mut self) {
        self.state.reset();
        self.hooks.reset_from_config(&self.state.cfg);
    }

    /// Rewinds the machine *into a different configuration*: the fleet
    /// primitive for recycling one allocated machine across the trials
    /// of a sweep whose members differ only in seeds, noise,
    /// optimization switches, latencies, or watchdog settings.
    ///
    /// When [`SimConfig::same_shape`] holds between the current and new
    /// configs, this is an in-place [`Machine::reset`] under the new
    /// config — every buffer survives at its high-water mark, the
    /// loaded program is kept, and `true` is returned. The result is
    /// bit-equal to a fresh `Machine::new(cfg)` with the same program
    /// loaded (the differential test in `tests/fleet_differential.rs`
    /// pins this).
    ///
    /// When the new config changes allocation shape (memory size,
    /// pipeline geometry, cache geometry, memory latencies), the
    /// machine is rebuilt from scratch and `false` is returned — the
    /// caller must re-load its program.
    pub fn reset_to(&mut self, cfg: SimConfig) -> bool {
        if self.state.cfg.same_shape(&cfg) {
            if self.state.cfg == cfg {
                // Identical config: the cheap in-place path, no re-boxing.
                self.reset();
            } else {
                // Hooks are rebuilt rather than reset in place: a
                // hook's `reset` re-derives from the config it was
                // *built* with (e.g. the noise hook replays its own
                // stored seed), which is exactly wrong when the config
                // changed. The big allocations (memory, caches, PRF)
                // all live in `PipelineState` and survive.
                self.state.cfg = cfg;
                self.state.reset();
                self.hooks = Hooks::from_config(&cfg);
            }
            true
        } else {
            *self = Machine::new(cfg);
            false
        }
    }

    /// Captures a deep [`Checkpoint`] of the machine — see
    /// [`Checkpoint`] for exactly what the image contains. The machine
    /// is not perturbed; snapshotting mid-run and continuing produces
    /// the same statistics as never snapshotting.
    #[must_use]
    pub fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            state: self.state.clone(),
            hooks: self.hooks.clone(),
        }
    }

    /// Re-imposes a [`Checkpoint`] on this machine, in place.
    ///
    /// This is a *restore*, not a reset: no hook is re-derived from its
    /// seed — the noise RNG streams, learned optimization tables, and
    /// accumulated statistics all resume exactly where the snapshot
    /// left them, so a restored machine's continuation is bit-equal to
    /// the snapshotted machine's (the golden-stats checkpoint gate
    /// pins this). Works from *any* prior machine state, including a
    /// recycled pool machine of a different shape; memory restores via
    /// [`Memory::restore_from`], which zeroes the stale dirty tail and
    /// adopts the checkpoint's high-water mark so no bytes from the
    /// previous occupant survive.
    pub fn restore(&mut self, ck: &Checkpoint) {
        self.state.restore_from(&ck.state);
        self.hooks = ck.hooks.clone();
    }

    /// Builds a fresh machine directly from a checkpoint — the
    /// fork-entry path for pool slots that have no machine to recycle.
    #[must_use]
    pub fn from_checkpoint(ck: &Checkpoint) -> Machine {
        Machine {
            state: ck.state.clone(),
            stages: Stages::default(),
            hooks: ck.hooks.clone(),
        }
    }

    /// Replaces the environmental-noise configuration, rebuilding the
    /// noise hook with streams derived from the new seed (and removing
    /// it when the new config is quiet).
    ///
    /// Intended for **cycle-0 checkpoint forks**: before the first
    /// step no noise has been drawn, so swapping the hook here is
    /// bit-equal to constructing the machine under the new config.
    /// Calling this mid-run forfeits byte-identity with a machine that
    /// ran under the new config from the start (the already-elapsed
    /// cycles used the old streams).
    pub fn set_noise(&mut self, noise: crate::noise::NoiseConfig) {
        self.state.cfg.noise = noise;
        self.hooks.set_noise(&self.state.cfg);
    }

    /// Runs until at least `committed` instructions have committed (or
    /// the machine halts), up to `max_cycles` additional cycles — the
    /// warm-up driver for taking a mid-run [`Checkpoint`] at a
    /// deterministic program boundary.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if the budget runs out first; otherwise
    /// as [`Machine::run`].
    pub fn run_until_committed(&mut self, committed: u64, max_cycles: u64) -> Result<(), SimError> {
        let limit = self.state.cycle + max_cycles;
        while !self.state.halted && self.stats().committed < committed {
            if self.state.cycle >= limit {
                return Err(SimError::Timeout { cycles: max_cycles });
            }
            self.step()?;
        }
        Ok(())
    }

    /// Two-tier execution: runs the program prefix up to `boundary_pc`
    /// on the functional [`Emulator`] (timing-free, ~100× cheaper per
    /// instruction) and seeds a fresh pipeline machine from the
    /// resulting *architectural* state — registers, memory, and the
    /// resume pc.
    ///
    /// The tier boundary is architectural only: the returned machine
    /// starts at cycle 0 with cold caches, cold predictors, and fresh
    /// hook state, exactly as if the prefix's register/memory effects
    /// had been preloaded by hand. Microarchitectural warm-up done by
    /// the prefix is *not* carried over — use
    /// [`Machine::snapshot`]/[`Machine::restore`] when cache and
    /// predictor state must survive the boundary.
    ///
    /// The prefix must be timing-free: a `rdcycle` before the boundary
    /// is rejected ([`EmuError::RdCycleInPrefix`]) because the
    /// emulator's timer counts instructions while the pipeline's
    /// counts (noise-quantized) cycles. `rdcycle` *after* the boundary
    /// is fine and measures the cycle-accurate region only.
    ///
    /// # Errors
    ///
    /// As [`Emulator::run_to_pc`].
    pub fn fast_forward(
        cfg: SimConfig,
        prog: &Program,
        boundary_pc: usize,
        max_steps: u64,
    ) -> Result<Machine, EmuError> {
        let mut emu = Emulator::new(Memory::new(cfg.mem_size));
        let pc = emu.run_to_pc(prog, boundary_pc, max_steps)?;
        let mut m = Machine::new(cfg);
        m.load_program(prog);
        m.seed_from_emulator(&emu, pc);
        Ok(m)
    }

    /// Adopts an emulator's architectural state — registers, memory —
    /// and resumes fetch at `resume_pc`. The machine must not have
    /// stepped yet; callers that need to pre-seed memory before the
    /// functional prefix runs can drive [`Emulator::run_to_pc`]
    /// themselves and finish the handoff here.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine has started executing.
    pub fn seed_from_emulator(&mut self, emu: &Emulator, resume_pc: usize) {
        assert_eq!(
            self.state.cycle, 0,
            "seed_from_emulator is only valid before run()"
        );
        for (i, &v) in emu.regs().iter().enumerate() {
            self.state.arch_regs[i] = v;
            let tag = self.state.rat[i] as usize;
            self.state.prf_vals[tag] = v;
        }
        self.state.mem.restore_from(emu.mem());
        self.state.fetch_pc = resume_pc;
    }

    /// Installs a fault plan: each scheduled event is applied at the
    /// start of its cycle on subsequent [`Machine::step`]s. Replaces
    /// any previously installed plan; events scheduled at or before the
    /// current cycle are dropped rather than fired retroactively.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        let cursor = plan
            .events()
            .iter()
            .position(|e| e.cycle > self.state.cycle)
            .unwrap_or(plan.len());
        self.hooks.install(Box::new(FaultHook::new(plan, cursor)));
    }

    /// Runs until `halt` commits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// * [`SimError::Timeout`] if the budget runs out,
    /// * [`SimError::Mem`] if a committed access faults,
    /// * [`SimError::WildPc`] if control flow leaves the program,
    /// * [`SimError::Deadlock`] if the watchdog sees no progress,
    /// * [`SimError::ResourceExhausted`] / [`SimError::InvalidState`]
    ///   if a pipeline invariant breaks (malformed program or
    ///   injected fault).
    pub fn run(&mut self, max_cycles: u64) -> Result<SimStats, SimError> {
        let limit = self.state.cycle + max_cycles;
        while !self.state.halted {
            if self.state.cycle >= limit {
                return Err(SimError::Timeout { cycles: max_cycles });
            }
            self.step()?;
        }
        Ok(*self.state.bus.stats())
    }

    /// Advances the machine one cycle: stages tick in reverse pipeline
    /// order (commit first) so a result produced in cycle *n* is
    /// consumed no earlier than cycle *n + 1*.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn step(&mut self) -> Result<(), SimError> {
        let st = &mut self.state;
        st.cycle += 1;
        st.bus.begin_cycle(st.cycle);
        self.hooks.on_cycle_start(st);
        self.stages.commit.tick(st, &mut self.hooks)?;
        if st.halted {
            st.bus.set_cycles(st.cycle);
            return Ok(());
        }
        self.stages.lsq.tick(st, &mut self.hooks)?;
        self.stages.execute.tick(st, &mut self.hooks)?;
        self.stages.issue.tick(st, &mut self.hooks)?;
        self.stages.rename.tick(st, &mut self.hooks)?;
        self.stages.fetch.tick(st, &mut self.hooks)?;
        st.bus.set_cycles(st.cycle);
        if st.cfg.paranoid_checks {
            st.paranoid_validate()?;
        }
        // Wild control flow: nothing in flight and nothing fetchable.
        if st.rob.is_empty()
            && st.fetch_buf.is_empty()
            && st.sq.is_empty()
            && !st.fetch_blocked
            && st.cycle >= st.fetch_stall_until
            && st.prog.get(st.fetch_pc).is_none()
        {
            return Err(SimError::WildPc { pc: st.fetch_pc });
        }
        // Watchdog: work is in flight but nothing has committed or
        // drained for a whole window — the pipeline is wedged, and
        // spinning to the cycle cap would only mislabel it a Timeout.
        if let Some(window) = st.cfg.watchdog_cycles {
            if st.cycle.saturating_sub(st.last_progress_cycle) >= window {
                return Err(SimError::Deadlock {
                    cycle: st.cycle,
                    diagnostics: st.deadlock_snapshot(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use pandora_isa::Asm;

    fn loop_prog(iters: u64) -> Program {
        let mut a = Asm::new();
        a.li(Reg::T0, iters);
        a.label("l");
        a.ld(Reg::T1, Reg::ZERO, 0x4000);
        a.sd(Reg::T1, Reg::ZERO, 0x6000);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "l");
        a.halt();
        a.assemble().unwrap()
    }

    fn noisy_cfg() -> SimConfig {
        SimConfig {
            noise: NoiseConfig::at_intensity(40, 9).with_window(0x4000, 0x8000),
            ..SimConfig::default()
        }
    }

    #[test]
    fn snapshot_restore_continuation_is_bit_equal_to_straight_run() {
        for cfg in [SimConfig::default(), noisy_cfg()] {
            let mut straight = Machine::new(cfg);
            straight.load_program(&loop_prog(120));
            let want = straight.run(1_000_000).unwrap();

            let mut m = Machine::new(cfg);
            m.load_program(&loop_prog(120));
            m.run_until_committed(60, 1_000_000).unwrap();
            let ck = m.snapshot();
            assert_eq!(ck.cycle(), m.cycle(), "snapshot pins the cycle");
            let cont = m.run(1_000_000).unwrap();
            assert_eq!(cont, want, "snapshotting does not perturb the run");

            // Restore into a machine that is dirty in every dimension:
            // different program, different noise, mid-run.
            let mut dirty = Machine::new(SimConfig {
                noise: NoiseConfig::at_intensity(70, 123),
                ..SimConfig::default()
            });
            dirty.load_program(&loop_prog(300));
            dirty.mem_mut().write_u64(0x9000, 0xdead_beef).unwrap();
            dirty.run_until_committed(200, 1_000_000).unwrap();
            dirty.restore(&ck);
            assert_eq!(dirty.cycle(), ck.cycle());
            let forked = dirty.run(1_000_000).unwrap();
            assert_eq!(forked, want, "restore resumes bit-equal (cfg {cfg:?})");
            assert_eq!(dirty.mem().read_u64(0x9000).unwrap(), 0);
        }
    }

    #[test]
    fn from_checkpoint_matches_restore() {
        let mut m = Machine::new(noisy_cfg());
        m.load_program(&loop_prog(90));
        m.run_until_committed(40, 1_000_000).unwrap();
        let ck = m.snapshot();
        let want = m.run(1_000_000).unwrap();
        let mut fresh = Machine::from_checkpoint(&ck);
        assert_eq!(fresh.run(1_000_000).unwrap(), want);
    }

    #[test]
    fn restore_crosses_machine_shapes() {
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&loop_prog(50));
        m.run_until_committed(30, 1_000_000).unwrap();
        let ck = m.snapshot();
        let want = m.run(1_000_000).unwrap();

        let mut small = Machine::new(SimConfig {
            mem_size: 1 << 16,
            ..SimConfig::little_core()
        });
        small.restore(&ck);
        assert_eq!(small.config(), ck.config(), "restore adopts the config");
        assert_eq!(small.run(1_000_000).unwrap(), want);
    }

    #[test]
    fn set_noise_on_cycle0_fork_matches_fresh_construction() {
        // A warm cycle-0 checkpoint forked under per-trial noise must be
        // indistinguishable from building each trial machine directly.
        let mut warm = Machine::new(SimConfig::default());
        warm.load_program(&loop_prog(100));
        warm.mem_mut().write_u64(0x4000, 77).unwrap();
        let ck = warm.snapshot();

        for seed in [3u64, 19, 1234] {
            let trial = SimConfig {
                noise: NoiseConfig::at_intensity(35, seed).with_window(0x4000, 0x8000),
                ..SimConfig::default()
            };
            let mut direct = Machine::new(trial);
            direct.load_program(&loop_prog(100));
            direct.mem_mut().write_u64(0x4000, 77).unwrap();
            let want = direct.run(1_000_000).unwrap();

            let mut forked = Machine::from_checkpoint(&ck);
            forked.set_noise(trial.noise);
            assert_eq!(*forked.config(), trial);
            assert_eq!(forked.run(1_000_000).unwrap(), want, "seed {seed}");

            // And back to quiet: the hook is removed entirely.
            let mut quiet = Machine::from_checkpoint(&ck);
            quiet.set_noise(NoiseConfig::quiet());
            let mut direct_quiet = Machine::new(SimConfig::default());
            direct_quiet.load_program(&loop_prog(100));
            direct_quiet.mem_mut().write_u64(0x4000, 77).unwrap();
            assert_eq!(
                quiet.run(1_000_000).unwrap(),
                direct_quiet.run(1_000_000).unwrap()
            );
        }
    }
}
