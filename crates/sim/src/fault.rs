//! Deterministic fault injection for robustness experiments.
//!
//! A [`FaultPlan`] is a cycle-ordered list of microarchitectural
//! disturbances — bit-flips, forced evictions, dropped prefetch fills,
//! spurious squashes, lost completions — installed on a [`Machine`]
//! with [`Machine::inject_faults`] and applied at the start of each
//! matching cycle of [`Machine::step`]. Plans are plain data: the same
//! plan on the same program and configuration reproduces the same run
//! bit for bit, which is what makes fault campaigns regression-testable.
//!
//! Two uses in the workspace:
//!
//! * **hardening tests** — assert that a disturbed machine returns a
//!   structured [`SimError`] (e.g. the watchdog's `Deadlock` after a
//!   [`FaultKind::DroppedCompletion`]) instead of aborting;
//! * **noisy-environment modeling** — periodic [`FaultKind::EvictLine`]
//!   events stand in for co-tenant cache pressure when exercising the
//!   attack harnesses' retry logic.
//!
//! [`Machine`]: crate::Machine
//! [`Machine::inject_faults`]: crate::Machine::inject_faults
//! [`Machine::step`]: crate::Machine::step
//! [`SimError`]: crate::SimError

use std::ops::Range;

use pandora_isa::Reg;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One kind of injected disturbance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Flip bit `bit & 7` of the memory byte at `addr` (a no-op if
    /// `addr` is out of bounds).
    MemBitFlip {
        /// The byte address to corrupt.
        addr: u64,
        /// Which bit of the byte to flip (taken modulo 8).
        bit: u8,
    },
    /// Flip bit `bit & 63` of architectural register `reg`, in both the
    /// committed register file and its current physical mapping (a
    /// no-op on `x0`).
    RegBitFlip {
        /// The register to corrupt.
        reg: Reg,
        /// Which bit to flip (taken modulo 64).
        bit: u8,
    },
    /// Drop the next `count` prefetch fills before they install a line
    /// (models lost fill responses / full prefetch queues).
    DropPrefetches {
        /// How many upcoming prefetch fills to swallow.
        count: u32,
    },
    /// Evict the line containing `addr` from every cache level (models
    /// co-tenant contention).
    EvictLine {
        /// An address inside the line to evict.
        addr: u64,
    },
    /// Squash every uncommitted instruction and refetch from the oldest
    /// one's pc (models a glitched recovery event). A no-op when the
    /// ROB is empty.
    SpuriousSquash,
    /// The oldest executing instruction's completion never arrives
    /// (models a lost cache-fill response). The machine wedges at that
    /// instruction, and the deadlock watchdog — not a cycle-cap
    /// timeout — is expected to report it.
    DroppedCompletion,
}

/// A [`FaultKind`] scheduled at a cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// The cycle at whose start the fault applies (the first cycle of
    /// [`Machine::step`] is cycle 1).
    ///
    /// [`Machine::step`]: crate::Machine::step
    pub cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, cycle-ordered fault schedule.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan firing the given events; they are sorted by cycle (stable,
    /// so same-cycle events keep their given order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events }
    }

    /// A plan with one event.
    #[must_use]
    pub fn single(cycle: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::new(vec![FaultEvent { cycle, kind }])
    }

    /// A seeded pseudo-random disturbance plan: `n` events uniformly
    /// spread over `cycles`, drawing memory/eviction targets from
    /// `mem`. The same seed always produces the same plan.
    ///
    /// Only *recoverable* disturbance kinds are drawn (bit-flips,
    /// dropped prefetches, evictions, spurious squashes) — never
    /// [`FaultKind::DroppedCompletion`], which wedges the pipeline by
    /// design and belongs in targeted deadlock tests.
    #[must_use]
    pub fn random(seed: u64, n: usize, cycles: Range<u64>, mem: Range<u64>) -> FaultPlan {
        assert!(!cycles.is_empty(), "empty cycle window");
        assert!(!mem.is_empty(), "empty memory window");
        let mut rng = SmallRng::seed_from_u64(seed);
        let events = (0..n)
            .map(|_| {
                let cycle = rng.gen_range(cycles.clone());
                let kind = match rng.gen_range(0u8..5) {
                    0 => FaultKind::MemBitFlip {
                        addr: rng.gen_range(mem.clone()),
                        bit: rng.gen_range(0u8..8),
                    },
                    1 => FaultKind::RegBitFlip {
                        // x0 is excluded: flipping it is defined as a
                        // no-op and would waste the event.
                        reg: Reg::new(rng.gen_range(1u8..32)),
                        bit: rng.gen_range(0u8..64),
                    },
                    2 => FaultKind::DropPrefetches {
                        count: rng.gen_range(1u32..4),
                    },
                    3 => FaultKind::EvictLine {
                        addr: rng.gen_range(mem.clone()),
                    },
                    _ => FaultKind::SpuriousSquash,
                };
                FaultEvent { cycle, kind }
            })
            .collect();
        FaultPlan::new(events)
    }

    /// The scheduled events, in cycle order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_by_cycle() {
        let p = FaultPlan::new(vec![
            FaultEvent {
                cycle: 90,
                kind: FaultKind::SpuriousSquash,
            },
            FaultEvent {
                cycle: 10,
                kind: FaultKind::EvictLine { addr: 0x40 },
            },
        ]);
        assert_eq!(p.events()[0].cycle, 10);
        assert_eq!(p.events()[1].cycle, 90);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(7, 32, 100..10_000, 0..0x1000);
        let b = FaultPlan::random(7, 32, 100..10_000, 0..0x1000);
        let c = FaultPlan::random(8, 32, 100..10_000, 0..0x1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn random_plans_stay_in_windows_and_exclude_wedges() {
        let p = FaultPlan::random(3, 64, 50..60, 0x100..0x200);
        for e in p.events() {
            assert!((50..60).contains(&e.cycle));
            match e.kind {
                FaultKind::MemBitFlip { addr, .. } | FaultKind::EvictLine { addr } => {
                    assert!((0x100..0x200).contains(&addr));
                }
                FaultKind::RegBitFlip { reg, .. } => assert!(!reg.is_zero()),
                FaultKind::DropPrefetches { count } => assert!(count >= 1),
                FaultKind::SpuriousSquash => {}
                FaultKind::DroppedCompletion => {
                    panic!("random plans must not schedule wedging faults")
                }
            }
        }
    }
}
