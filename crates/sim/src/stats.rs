//! Run statistics: the counters every attack harness reads.

use std::fmt;

/// Counters accumulated over a simulation run.
///
/// Returned by [`Machine::run`]; every attack harness ultimately reads
/// either `cycles` (the victim-visible termination channel) or the cache
/// counters (the receiver-visible channels).
///
/// [`Machine::run`]: crate::Machine::run
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Branch-misprediction squashes.
    pub branch_squashes: u64,
    /// Value-misprediction squashes.
    pub vp_squashes: u64,
    /// Demand accesses served by the L1.
    pub l1_hits: u64,
    /// Demand accesses served by the L2.
    pub l2_hits: u64,
    /// Demand accesses served by DRAM.
    pub dram_accesses: u64,
    /// Cycles rename stalled for lack of a physical register.
    pub rename_stalls_prf: u64,
    /// Cycles dispatch stalled because the store queue was full
    /// (head-of-line blocking — the amplification gadget's lever).
    pub sq_full_stalls: u64,
    /// Cycles dispatch stalled because ROB/IQ/LQ were full.
    pub backend_stalls: u64,
    /// Stores that dequeued silently.
    pub silent_stores: u64,
    /// Stores that performed a memory write at dequeue.
    pub performed_stores: u64,
    /// SS-loads issued (silent-store candidacy checks).
    pub ss_loads: u64,
    /// Stores that could not be checked: no free load port (Fig 4 C).
    pub ss_no_port: u64,
    /// Stores whose SS-load returned too late (Fig 4 D).
    pub ss_late: u64,
    /// Trivial operations bypassed by computation simplification.
    pub trivial_skips: u64,
    /// Multiplies short-circuited by a zero/one operand.
    pub mul_skips: u64,
    /// Multiplies strength-reduced to shifts (power-of-two operand).
    pub mul_strength_reductions: u64,
    /// Divides that took a shortened early-exit latency.
    pub div_early_exits: u64,
    /// Floating-point operations that hit the subnormal slow path.
    pub fp_subnormal_slow: u64,
    /// Pairs of narrow ALU operations packed into one issue port.
    pub packed_pairs: u64,
    /// Computation-reuse memo table hits.
    pub reuse_hits: u64,
    /// Computation-reuse memo table misses (insertions).
    pub reuse_misses: u64,
    /// Value predictions made.
    pub vp_predictions: u64,
    /// Value predictions that were correct.
    pub vp_correct: u64,
    /// Results compressed into an existing physical register.
    pub rfc_shares: u64,
    /// Prefetches issued by the DMP.
    pub dmp_prefetches: u64,
    /// DMP prefetch reads that dereferenced memory (levels ≥ 2).
    pub dmp_deref_reads: u64,
    /// DMP prefetch addresses dropped for being out of physical memory.
    pub dmp_dropped: u64,
    /// Content-directed prefetches issued (pointer-shaped values chased).
    pub cdp_prefetches: u64,
    /// Fault-plan events that actually took effect (a scheduled event
    /// whose target was out of range — e.g. a bit-flip past the end of
    /// memory — does not count).
    pub faults_injected: u64,
    /// Environmental-noise disturbances that took effect (evictions,
    /// fills, and fetch stalls injected by the noise hook; timer
    /// degradation is not counted — it perturbs readings, not state).
    pub noise_events: u64,
}

impl SimStats {
    /// Adds every counter of `other` into `self`.
    ///
    /// This is the fleet reduction primitive: summing the stats of N
    /// independent machines yields grid totals. `cycles` sums like any
    /// other counter, so a merged value means "total simulated cycles
    /// across members", not wall-clock — derived rates ([`Self::ipc`],
    /// [`Self::l1_hit_rate`]) remain meaningful as grid-wide averages
    /// weighted by member length.
    pub fn merge(&mut self, other: &SimStats) {
        macro_rules! add_fields {
            ($($f:ident),* $(,)?) => { $( self.$f += other.$f; )* };
        }
        add_fields!(
            cycles,
            committed,
            branch_squashes,
            vp_squashes,
            l1_hits,
            l2_hits,
            dram_accesses,
            rename_stalls_prf,
            sq_full_stalls,
            backend_stalls,
            silent_stores,
            performed_stores,
            ss_loads,
            ss_no_port,
            ss_late,
            trivial_skips,
            mul_skips,
            mul_strength_reductions,
            div_early_exits,
            fp_subnormal_slow,
            packed_pairs,
            reuse_hits,
            reuse_misses,
            vp_predictions,
            vp_correct,
            rfc_shares,
            dmp_prefetches,
            dmp_deref_reads,
            dmp_dropped,
            cdp_prefetches,
            faults_injected,
            noise_events,
        );
    }

    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Demand L1 hit rate in [0, 1].
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.dram_accesses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

impl std::iter::Sum for SimStats {
    fn sum<I: Iterator<Item = SimStats>>(iter: I) -> SimStats {
        let mut acc = SimStats::default();
        for s in iter {
            acc.merge(&s);
        }
        acc
    }
}

impl<'a> std::iter::Sum<&'a SimStats> for SimStats {
    fn sum<I: Iterator<Item = &'a SimStats>>(iter: I) -> SimStats {
        let mut acc = SimStats::default();
        for s in iter {
            acc.merge(s);
        }
        acc
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} committed={} ipc={:.2}",
            self.cycles,
            self.committed,
            self.ipc()
        )?;
        writeln!(
            f,
            "squashes: branch={} vp={}",
            self.branch_squashes, self.vp_squashes
        )?;
        writeln!(
            f,
            "mem: l1={} l2={} dram={} (l1 rate {:.2})",
            self.l1_hits,
            self.l2_hits,
            self.dram_accesses,
            self.l1_hit_rate()
        )?;
        writeln!(
            f,
            "stalls: prf={} sq_full={} backend={}",
            self.rename_stalls_prf, self.sq_full_stalls, self.backend_stalls
        )?;
        write!(
            f,
            "opts: silent={}/{} ss_loads={} packs={} reuse={}/{} vp={}/{} rfc={} dmp={}",
            self.silent_stores,
            self.silent_stores + self.performed_stores,
            self.ss_loads,
            self.packed_pairs,
            self.reuse_hits,
            self.reuse_hits + self.reuse_misses,
            self.vp_correct,
            self.vp_predictions,
            self.rfc_shares,
            self.dmp_prefetches
        )?;
        if self.faults_injected > 0 {
            write!(f, "\nfaults injected: {}", self.faults_injected)?;
        }
        if self.noise_events > 0 {
            write!(f, "\nnoise events: {}", self.noise_events)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        let s = SimStats {
            cycles: 10,
            committed: 25,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate() {
        let s = SimStats {
            l1_hits: 3,
            l2_hits: 1,
            dram_accesses: 0,
            ..SimStats::default()
        };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(SimStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
    }

    /// Every field participates in `merge`. The exhaustive literal (no
    /// `..Default::default()`) means adding a counter breaks this test
    /// at compile time until `merge`'s field list is extended; the
    /// distinct nonzero values mean dropping a field from `merge`
    /// breaks the doubling assertion at run time.
    #[test]
    fn merge_covers_every_field() {
        let probe = SimStats {
            cycles: 1,
            committed: 2,
            branch_squashes: 3,
            vp_squashes: 4,
            l1_hits: 5,
            l2_hits: 6,
            dram_accesses: 7,
            rename_stalls_prf: 8,
            sq_full_stalls: 9,
            backend_stalls: 10,
            silent_stores: 11,
            performed_stores: 12,
            ss_loads: 13,
            ss_no_port: 14,
            ss_late: 15,
            trivial_skips: 16,
            mul_skips: 17,
            mul_strength_reductions: 18,
            div_early_exits: 19,
            fp_subnormal_slow: 20,
            packed_pairs: 21,
            reuse_hits: 22,
            reuse_misses: 23,
            vp_predictions: 24,
            vp_correct: 25,
            rfc_shares: 26,
            dmp_prefetches: 27,
            dmp_deref_reads: 28,
            dmp_dropped: 29,
            cdp_prefetches: 30,
            faults_injected: 31,
            noise_events: 32,
        };
        let mut doubled = probe;
        doubled.merge(&probe);
        // Field-wise doubling, checked without naming fields again:
        // every field *value* in the Debug rendering must have doubled.
        // Values follow ": " separators; field names (l1_hits, ...)
        // contain digits and must not be parsed.
        let nums = |s: &SimStats| -> Vec<u64> {
            format!("{s:?}")
                .split(": ")
                .skip(1)
                .map(|t| {
                    t.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse::<u64>()
                        .unwrap()
                })
                .collect()
        };
        let before = nums(&probe);
        let after = nums(&doubled);
        assert_eq!(before.len(), after.len());
        assert!(before.iter().zip(&after).all(|(b, a)| *a == 2 * *b));
    }

    /// Merged stats equal serially accumulated ones: folding with
    /// `merge` and summing with `Sum` agree field-for-field.
    #[test]
    fn sum_matches_serial_merge() {
        let a = SimStats {
            cycles: 100,
            committed: 40,
            l1_hits: 9,
            silent_stores: 2,
            ..SimStats::default()
        };
        let b = SimStats {
            cycles: 250,
            committed: 90,
            l2_hits: 4,
            noise_events: 6,
            ..SimStats::default()
        };
        let c = SimStats {
            cycles: 13,
            dram_accesses: 5,
            faults_injected: 1,
            ..SimStats::default()
        };
        let mut serial = SimStats::default();
        serial.merge(&a);
        serial.merge(&b);
        serial.merge(&c);
        let summed: SimStats = [a, b, c].iter().sum();
        assert_eq!(summed, serial);
        assert_eq!(summed.cycles, 363);
        assert_eq!(summed.committed, 130);
        assert_eq!(summed.l1_hits, 9);
        assert_eq!(summed.l2_hits, 4);
        assert_eq!(summed.dram_accesses, 5);
        assert_eq!(summed.silent_stores, 2);
        assert_eq!(summed.noise_events, 6);
        assert_eq!(summed.faults_injected, 1);
        let owned: SimStats = [a, b, c].into_iter().sum();
        assert_eq!(owned, serial);
    }
}
