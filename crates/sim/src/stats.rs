//! Run statistics: the counters every attack harness reads.

use std::fmt;

/// Counters accumulated over a simulation run.
///
/// Returned by [`Machine::run`]; every attack harness ultimately reads
/// either `cycles` (the victim-visible termination channel) or the cache
/// counters (the receiver-visible channels).
///
/// [`Machine::run`]: crate::Machine::run
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Branch-misprediction squashes.
    pub branch_squashes: u64,
    /// Value-misprediction squashes.
    pub vp_squashes: u64,
    /// Demand accesses served by the L1.
    pub l1_hits: u64,
    /// Demand accesses served by the L2.
    pub l2_hits: u64,
    /// Demand accesses served by DRAM.
    pub dram_accesses: u64,
    /// Cycles rename stalled for lack of a physical register.
    pub rename_stalls_prf: u64,
    /// Cycles dispatch stalled because the store queue was full
    /// (head-of-line blocking — the amplification gadget's lever).
    pub sq_full_stalls: u64,
    /// Cycles dispatch stalled because ROB/IQ/LQ were full.
    pub backend_stalls: u64,
    /// Stores that dequeued silently.
    pub silent_stores: u64,
    /// Stores that performed a memory write at dequeue.
    pub performed_stores: u64,
    /// SS-loads issued (silent-store candidacy checks).
    pub ss_loads: u64,
    /// Stores that could not be checked: no free load port (Fig 4 C).
    pub ss_no_port: u64,
    /// Stores whose SS-load returned too late (Fig 4 D).
    pub ss_late: u64,
    /// Trivial operations bypassed by computation simplification.
    pub trivial_skips: u64,
    /// Multiplies short-circuited by a zero/one operand.
    pub mul_skips: u64,
    /// Multiplies strength-reduced to shifts (power-of-two operand).
    pub mul_strength_reductions: u64,
    /// Divides that took a shortened early-exit latency.
    pub div_early_exits: u64,
    /// Floating-point operations that hit the subnormal slow path.
    pub fp_subnormal_slow: u64,
    /// Pairs of narrow ALU operations packed into one issue port.
    pub packed_pairs: u64,
    /// Computation-reuse memo table hits.
    pub reuse_hits: u64,
    /// Computation-reuse memo table misses (insertions).
    pub reuse_misses: u64,
    /// Value predictions made.
    pub vp_predictions: u64,
    /// Value predictions that were correct.
    pub vp_correct: u64,
    /// Results compressed into an existing physical register.
    pub rfc_shares: u64,
    /// Prefetches issued by the DMP.
    pub dmp_prefetches: u64,
    /// DMP prefetch reads that dereferenced memory (levels ≥ 2).
    pub dmp_deref_reads: u64,
    /// DMP prefetch addresses dropped for being out of physical memory.
    pub dmp_dropped: u64,
    /// Content-directed prefetches issued (pointer-shaped values chased).
    pub cdp_prefetches: u64,
    /// Fault-plan events that actually took effect (a scheduled event
    /// whose target was out of range — e.g. a bit-flip past the end of
    /// memory — does not count).
    pub faults_injected: u64,
    /// Environmental-noise disturbances that took effect (evictions,
    /// fills, and fetch stalls injected by the noise hook; timer
    /// degradation is not counted — it perturbs readings, not state).
    pub noise_events: u64,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Demand L1 hit rate in [0, 1].
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.dram_accesses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} committed={} ipc={:.2}",
            self.cycles,
            self.committed,
            self.ipc()
        )?;
        writeln!(
            f,
            "squashes: branch={} vp={}",
            self.branch_squashes, self.vp_squashes
        )?;
        writeln!(
            f,
            "mem: l1={} l2={} dram={} (l1 rate {:.2})",
            self.l1_hits,
            self.l2_hits,
            self.dram_accesses,
            self.l1_hit_rate()
        )?;
        writeln!(
            f,
            "stalls: prf={} sq_full={} backend={}",
            self.rename_stalls_prf, self.sq_full_stalls, self.backend_stalls
        )?;
        write!(
            f,
            "opts: silent={}/{} ss_loads={} packs={} reuse={}/{} vp={}/{} rfc={} dmp={}",
            self.silent_stores,
            self.silent_stores + self.performed_stores,
            self.ss_loads,
            self.packed_pairs,
            self.reuse_hits,
            self.reuse_hits + self.reuse_misses,
            self.vp_correct,
            self.vp_predictions,
            self.rfc_shares,
            self.dmp_prefetches
        )?;
        if self.faults_injected > 0 {
            write!(f, "\nfaults injected: {}", self.faults_injected)?;
        }
        if self.noise_events > 0 {
            write!(f, "\nnoise events: {}", self.noise_events)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        let s = SimStats {
            cycles: 10,
            committed: 25,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate() {
        let s = SimStats {
            l1_hits: 3,
            l2_hits: 1,
            dram_accesses: 0,
            ..SimStats::default()
        };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(SimStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SimStats::default().to_string().is_empty());
    }
}
