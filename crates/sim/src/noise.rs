//! Deterministic environmental noise: co-tenant interference as a
//! seeded, reproducible machine property.
//!
//! The fault layer ([`crate::fault`]) models *discrete* disturbances
//! scheduled at known cycles; this module models the *continuous*
//! background a real attack fights — cache pressure from co-tenants,
//! coarse/jittery timers, frontend hiccups — while keeping every run
//! bit-for-bit reproducible:
//!
//! * [`NoiseConfig`] lives inside [`SimConfig`], so it is covered by
//!   [`SimConfig::stable_hash`] and by the experiment runner's resume
//!   manifest: two machines with equal configurations produce equal
//!   noise, and `runall --resume` re-verifies noisy runs byte for byte.
//! * [`NoiseHook`] rides the ordinary [`OptHook`] layer (like
//!   [`FaultHook`]) and draws from [`SmallRng`] streams seeded only by
//!   [`NoiseConfig::seed`] — never by wall-clock or global state.
//! * [`traffic_program`] builds a seeded co-runner for
//!   [`crate::DuoMachine`], so cross-core experiments can run against a
//!   live interfering tenant instead of (or on top of) injected noise.
//!
//! Three mechanisms, all off by default:
//!
//! 1. **Cache-line evictions/fills** — each cycle, with probability
//!    `evict_permille`/`fill_permille` per mille, a random line in the
//!    configured window is flushed from (or filled into) the whole
//!    hierarchy, modeling a co-tenant's conflict misses and fills.
//! 2. **Timer coarsening + jitter** — `rdcycle` reads are floored to
//!    multiples of [`NoiseConfig::timer_quantum`] after adding up to
//!    [`NoiseConfig::timer_jitter`] extra cycles, modeling the degraded
//!    timers real systems deploy against timing receivers.
//! 3. **Pipeline stall jitter** — each cycle, with probability
//!    `stall_permille` per mille, fetch stalls for 1–3 cycles,
//!    modeling frontend interference (shared fetch bandwidth, SMT).
//!
//! Every disturbance that takes effect emits
//! [`SimEvent::NoiseInjected`], counted in
//! [`SimStats::noise_events`](crate::SimStats::noise_events).
//!
//! [`SimConfig`]: crate::SimConfig
//! [`SimConfig::stable_hash`]: crate::SimConfig::stable_hash
//! [`FaultHook`]: crate::FaultHook

use pandora_isa::{Asm, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::SimEvent;
use crate::mem::hierarchy::PrefetchFill;
use crate::opt::hook::OptHook;
use crate::pipeline::PipelineState;

/// Seed-driven environmental noise switches, embedded in
/// [`SimConfig`](crate::SimConfig) (and therefore covered by its
/// `stable_hash`). The default is completely quiet, so existing
/// configurations and golden statistics are unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NoiseConfig {
    /// Per-cycle probability (in thousandths) of evicting one random
    /// cache line in the window from every level.
    pub evict_permille: u16,
    /// Per-cycle probability (in thousandths) of filling one random
    /// cache line in the window into every level.
    pub fill_permille: u16,
    /// Per-cycle probability (in thousandths) of a 1–3 cycle fetch
    /// stall (frontend interference).
    pub stall_permille: u16,
    /// `rdcycle` reads are floored to multiples of this quantum
    /// (values ≤ 1 leave the timer exact).
    pub timer_quantum: u64,
    /// Maximum extra cycles added to each `rdcycle` read before
    /// quantization (0 leaves the timer exact).
    pub timer_jitter: u64,
    /// Seed of the noise streams. Changing only the seed yields an
    /// independent but equally reproducible interference pattern.
    pub seed: u64,
    /// Lower bound of the disturbed address window.
    pub mem_lo: u64,
    /// Exclusive upper bound of the disturbed address window; `0`
    /// means "the whole of memory".
    pub mem_hi: u64,
}

impl NoiseConfig {
    /// The quiet configuration (identical to `Default`): no evictions,
    /// no fills, no stalls, exact timers.
    #[must_use]
    pub fn quiet() -> NoiseConfig {
        NoiseConfig::default()
    }

    /// A one-knob preset mapping an intensity in `0..=100` onto all
    /// three mechanisms: eviction/fill/stall probabilities scale
    /// linearly, and the timer degrades from exact (intensity 0) to
    /// coarse and jittery. Intensity 0 is exactly [`NoiseConfig::quiet`].
    #[must_use]
    pub fn at_intensity(intensity: u16, seed: u64) -> NoiseConfig {
        let i = intensity.min(100);
        if i == 0 {
            return NoiseConfig {
                seed,
                ..NoiseConfig::quiet()
            };
        }
        NoiseConfig {
            evict_permille: i,
            fill_permille: i,
            stall_permille: i / 2,
            timer_quantum: 1 + u64::from(i) / 8,
            timer_jitter: u64::from(i) / 4,
            seed,
            mem_lo: 0,
            mem_hi: 0,
        }
    }

    /// Restricts evictions and fills to `[lo, hi)` — the shape of a
    /// co-tenant sharing the victim's cache sets. Timer and stall noise
    /// are unaffected (they are not address-targeted).
    #[must_use]
    pub fn with_window(mut self, lo: u64, hi: u64) -> NoiseConfig {
        self.mem_lo = lo;
        self.mem_hi = hi;
        self
    }

    /// Replaces the noise seed, keeping every intensity knob.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> NoiseConfig {
        self.seed = seed;
        self
    }

    /// Whether any noise mechanism is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.evict_permille > 0
            || self.fill_permille > 0
            || self.stall_permille > 0
            || self.timer_quantum > 1
            || self.timer_jitter > 0
    }

    /// The effective eviction/fill window given the machine's memory
    /// size (resolves the `mem_hi == 0` "whole memory" default; an
    /// inverted window degenerates to one line at `mem_lo`).
    #[must_use]
    pub fn window(&self, mem_size: usize) -> (u64, u64) {
        let hi = if self.mem_hi == 0 {
            mem_size as u64
        } else {
            self.mem_hi.min(mem_size as u64)
        };
        (self.mem_lo, hi.max(self.mem_lo + 1))
    }
}

/// The environmental-noise hook: applies a [`NoiseConfig`]'s cache and
/// frontend disturbances at every cycle start, and filters `rdcycle`
/// reads through the configured timer degradation.
///
/// Installed automatically by
/// [`Hooks::from_config`](crate::Hooks::from_config) whenever
/// `cfg.noise.enabled()`, so [`Machine::reset`](crate::Machine::reset)
/// reproduces the identical noise stream.
#[derive(Clone, Debug)]
pub struct NoiseHook {
    cfg: NoiseConfig,
    /// Environment stream: eviction/fill/stall draws, one sequence per
    /// run regardless of program length.
    env: SmallRng,
    /// Timer stream, kept separate so the jitter seen by the Nth
    /// `rdcycle` does not depend on how many cache events fired before
    /// it.
    timer: SmallRng,
}

impl NoiseHook {
    /// Builds the hook for a noise configuration; both streams derive
    /// only from [`NoiseConfig::seed`].
    #[must_use]
    pub fn new(cfg: NoiseConfig) -> NoiseHook {
        NoiseHook {
            cfg,
            env: SmallRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            timer: SmallRng::seed_from_u64(cfg.seed ^ 0x6a09_e667_f3bc_c909),
        }
    }
}

impl OptHook for NoiseHook {
    fn name(&self) -> &'static str {
        "noise"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(self.clone())
    }

    fn reset(&mut self, _cfg: &crate::SimConfig) {
        // Re-derive both streams exactly as `new` does, so a reset
        // machine replays the identical noise sequence.
        *self = NoiseHook::new(self.cfg);
    }

    fn on_cycle_start(&mut self, st: &mut PipelineState) {
        let n = self.cfg;
        let (lo, hi) = n.window(st.cfg.mem_size);
        if n.evict_permille > 0 && self.env.gen_range(0u16..1000) < n.evict_permille {
            let addr = self.env.gen_range(lo..hi);
            st.hier.flush_line(addr);
            st.bus.emit(SimEvent::NoiseInjected);
        }
        if n.fill_permille > 0 && self.env.gen_range(0u16..1000) < n.fill_permille {
            let addr = self.env.gen_range(lo..hi);
            st.hier.prefetch(addr, PrefetchFill::AllLevels);
            st.bus.emit(SimEvent::NoiseInjected);
        }
        if n.stall_permille > 0 && self.env.gen_range(0u16..1000) < n.stall_permille {
            let until = st.cycle + self.env.gen_range(1u64..4);
            if until > st.fetch_stall_until {
                st.fetch_stall_until = until;
            }
            st.bus.emit(SimEvent::NoiseInjected);
        }
    }

    fn read_cycle(&mut self, cycle: u64) -> Option<u64> {
        let n = self.cfg;
        if n.timer_quantum <= 1 && n.timer_jitter == 0 {
            return None;
        }
        let mut c = cycle;
        if n.timer_jitter > 0 {
            c += self.timer.gen_range(0..n.timer_jitter + 1);
        }
        if n.timer_quantum > 1 {
            c -= c % n.timer_quantum;
        }
        Some(c)
    }
}

/// Builds a seeded co-runner traffic generator for
/// [`DuoMachine`](crate::DuoMachine) experiments: `rounds` iterations
/// of a load/store loop over pseudo-random lines in
/// `[base, base + span)`, creating live shared-L2 pressure from the
/// other core. The same seed always produces the same program (and,
/// on the same configuration, the same interference).
///
/// Every fourth touched line is written rather than read, so the
/// co-runner dirties shared lines as a real tenant would.
///
/// # Panics
///
/// Panics if `span` covers no complete cache line.
#[must_use]
pub fn traffic_program(seed: u64, base: u64, span: u64, rounds: u64) -> Program {
    let lines = span / 64;
    assert!(lines > 0, "traffic window must cover at least one line");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = Asm::new();
    a.li(Reg::T2, rounds.max(1));
    a.label("traffic_round");
    // An unrolled burst of 8 pseudo-random line touches per round.
    for k in 0..8 {
        let addr = base + rng.gen_range(0..lines) * 64;
        if k % 4 == 3 {
            a.sd(Reg::T1, Reg::ZERO, addr as i64);
        } else {
            a.ld(Reg::T1, Reg::ZERO, addr as i64);
        }
    }
    a.addi(Reg::T2, Reg::T2, -1);
    a.bnez(Reg::T2, "traffic_round");
    a.halt();
    a.assemble().expect("traffic generator assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, SimConfig};

    fn victim_prog() -> Program {
        let mut a = Asm::new();
        a.li(Reg::T0, 200);
        a.label("l");
        a.ld(Reg::T1, Reg::ZERO, 0x4000);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "l");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn quiet_config_is_disabled_and_default() {
        assert!(!NoiseConfig::quiet().enabled());
        assert_eq!(NoiseConfig::quiet(), NoiseConfig::default());
        assert!(!NoiseConfig::at_intensity(0, 7).enabled());
        assert!(NoiseConfig::at_intensity(1, 7).enabled());
        assert!(NoiseConfig::at_intensity(200, 0).evict_permille <= 100);
    }

    #[test]
    fn window_resolves_whole_memory_default() {
        let n = NoiseConfig::at_intensity(30, 0);
        assert_eq!(n.window(4096), (0, 4096));
        let w = n.with_window(0x100, 0x200);
        assert_eq!(w.window(4096), (0x100, 0x200));
        // Out-of-memory upper bounds clamp; inverted windows degenerate.
        assert_eq!(w.with_window(0x100, 1 << 40).window(4096), (0x100, 4096));
        assert_eq!(w.with_window(0x500, 0x100).window(0x200), (0x500, 0x501));
    }

    #[test]
    fn noisy_runs_are_deterministic_per_seed() {
        let cfg = SimConfig {
            noise: NoiseConfig::at_intensity(40, 11).with_window(0x4000, 0x8000),
            ..SimConfig::default()
        };
        let run = |cfg: SimConfig| {
            let mut m = Machine::new(cfg);
            m.load_program(&victim_prog());
            m.run(1_000_000).unwrap()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b, "same noise config ⇒ identical stats");
        assert!(a.noise_events > 0, "intensity 40 must actually disturb");

        let mut reseeded = cfg;
        reseeded.noise.seed ^= 1;
        let c = run(reseeded);
        assert_ne!(a, c, "a different seed is a different environment");
    }

    #[test]
    fn reset_reproduces_the_noise_stream() {
        let cfg = SimConfig {
            noise: NoiseConfig::at_intensity(40, 3),
            ..SimConfig::default()
        };
        let mut m = Machine::new(cfg);
        m.load_program(&victim_prog());
        let a = m.run(1_000_000).unwrap();
        m.reset();
        let b = m.run(1_000_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn clone_resumes_streams_at_position_reset_rewinds_them() {
        // Checkpoints capture the noise hook by cloning it, so a clone
        // must continue both RNG streams exactly where the original
        // stands — not rewind to the seed the way `reset` does.
        let cfg = NoiseConfig {
            timer_jitter: 1000,
            seed: 41,
            ..NoiseConfig::quiet()
        };
        let mut h = NoiseHook::new(cfg);
        let burn: Vec<u64> = (0..17).map(|_| h.read_cycle(0).unwrap()).collect();

        let mut forked = h.clone();
        let cont: Vec<u64> = (0..32).map(|_| h.read_cycle(0).unwrap()).collect();
        let forked_cont: Vec<u64> = (0..32).map(|_| forked.read_cycle(0).unwrap()).collect();
        assert_eq!(cont, forked_cont, "clone resumes mid-stream");

        forked.reset(&SimConfig::default());
        let rewound: Vec<u64> = (0..17).map(|_| forked.read_cycle(0).unwrap()).collect();
        assert_eq!(rewound, burn, "reset re-derives the stream from seed");
        assert_ne!(cont[..17], burn[..], "jitter stream has real state");
    }

    #[test]
    fn eviction_noise_slows_a_cache_resident_loop() {
        let quiet = {
            let mut m = Machine::new(SimConfig::default());
            m.load_program(&victim_prog());
            m.run(1_000_000).unwrap()
        };
        // Eviction pressure focused exactly on the loop's one hot line.
        let cfg = SimConfig {
            noise: NoiseConfig {
                evict_permille: 100,
                seed: 5,
                ..NoiseConfig::quiet()
            }
            .with_window(0x4000, 0x4040),
            ..SimConfig::default()
        };
        let noisy = {
            let mut m = Machine::new(cfg);
            m.load_program(&victim_prog());
            m.run(1_000_000).unwrap()
        };
        assert!(
            noisy.cycles > quiet.cycles + 100,
            "evictions must cost misses: quiet {} noisy {}",
            quiet.cycles,
            noisy.cycles
        );
        assert!(noisy.dram_accesses > quiet.dram_accesses);
    }

    #[test]
    fn timer_noise_coarsens_rdcycle_deltas() {
        let prog = {
            let mut a = Asm::new();
            a.rdcycle(Reg::T0);
            a.fence();
            a.rdcycle(Reg::T1);
            a.sub(Reg::T1, Reg::T1, Reg::T0);
            a.halt();
            a.assemble().unwrap()
        };
        let cfg = SimConfig {
            noise: NoiseConfig {
                timer_quantum: 16,
                seed: 2,
                ..NoiseConfig::quiet()
            },
            ..SimConfig::default()
        };
        let mut m = Machine::new(cfg);
        m.load_program(&prog);
        m.run(100_000).unwrap();
        assert_eq!(
            m.reg(Reg::T1) % 16,
            0,
            "quantized reads differ by a multiple of the quantum"
        );
    }

    #[test]
    fn traffic_program_is_deterministic_and_runs() {
        let p1 = traffic_program(9, 0x10_0000, 0x1000, 32);
        let p2 = traffic_program(9, 0x10_0000, 0x1000, 32);
        let p3 = traffic_program(10, 0x10_0000, 0x1000, 32);
        assert_eq!(p1.len(), p2.len());
        assert_ne!(
            format!("{p1:?}"),
            format!("{p3:?}"),
            "different seeds touch different lines"
        );
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&p1);
        let stats = m.run(1_000_000).unwrap();
        assert!(m.is_halted());
        assert!(stats.dram_accesses > 0, "the co-runner generates traffic");
    }
}
