//! Two cores sharing an L2 — the *cloud setting*'s receiver placement
//! (§II-3: the receiver may run "concurrent to the victim … on another
//! physical core").
//!
//! Each core is a full [`Machine`] with its own pipeline, memory and
//! private L1; the [`DuoMachine`] interleaves them cycle by cycle while
//! threading one shared L2 through both, so cross-core cache channels
//! (Prime+Probe over the L2, shared-address Flush+Reload) behave as on
//! a real multicore. Addresses are physical, so two cores using the
//! same address genuinely share a line (the shared-library / page-dedup
//! scenario attacks rely on).

use crate::machine::{Machine, SimError};
use crate::mem::cache::Cache;
use crate::stats::SimStats;

/// Two machines in lockstep with a shared L2.
#[derive(Clone, Debug)]
pub struct DuoMachine {
    a: Machine,
    b: Machine,
    shared_l2: Cache,
}

impl DuoMachine {
    /// Pairs two machines. Their private L2s are discarded in favour of
    /// a single shared L2 taken from machine `a`'s configuration; each
    /// core's own L2 slot is marked *detached*, so its
    /// `hierarchy().l2()` / `in_l2()` views panic instead of answering
    /// from the stale placeholder left behind between steps.
    #[must_use]
    pub fn new(mut a: Machine, mut b: Machine) -> DuoMachine {
        let shared_l2 = a.hierarchy().l2().clone();
        a.hierarchy_mut().mark_l2_detached();
        b.hierarchy_mut().mark_l2_detached();
        DuoMachine { a, b, shared_l2 }
    }

    /// Core A (e.g. the victim).
    #[must_use]
    pub fn core_a(&self) -> &Machine {
        &self.a
    }

    /// Mutable core A.
    pub fn core_a_mut(&mut self) -> &mut Machine {
        &mut self.a
    }

    /// Core B (e.g. the receiver).
    #[must_use]
    pub fn core_b(&self) -> &Machine {
        &self.b
    }

    /// Mutable core B.
    pub fn core_b_mut(&mut self) -> &mut Machine {
        &mut self.b
    }

    /// The shared L2 itself.
    ///
    /// This is the only authoritative view of L2 state:
    /// [`DuoMachine::step`] swaps the shared cache into a core only for
    /// the duration of that core's tick, so between steps each core's
    /// own `hierarchy().l2()` slot holds a detached placeholder — and
    /// the hierarchy's L2 views panic rather than answer from it.
    #[must_use]
    pub fn shared_l2(&self) -> &Cache {
        &self.shared_l2
    }

    /// Mutable access to the shared L2 (for priming or flushing lines
    /// between steps).
    pub fn shared_l2_mut(&mut self) -> &mut Cache {
        &mut self.shared_l2
    }

    /// Whether the shared L2 currently holds the line of `addr`.
    #[must_use]
    pub fn l2_holds(&self, addr: u64) -> bool {
        self.shared_l2.probe(addr)
    }

    fn step_core(
        core: &mut Machine,
        shared: &mut Cache,
    ) -> Result<(), SimError> {
        if core.is_halted() {
            return Ok(());
        }
        core.hierarchy_mut().swap_in_l2(shared);
        let r = core.step();
        core.hierarchy_mut().swap_out_l2(shared);
        r
    }

    /// Advances both cores one cycle (A first, then B).
    ///
    /// # Errors
    ///
    /// Propagates either core's [`SimError`].
    pub fn step(&mut self) -> Result<(), SimError> {
        DuoMachine::step_core(&mut self.a, &mut self.shared_l2)?;
        DuoMachine::step_core(&mut self.b, &mut self.shared_l2)
    }

    /// Runs until both cores halt or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if either core is still running at the
    /// budget, or either core's own error.
    pub fn run(&mut self, max_cycles: u64) -> Result<(SimStats, SimStats), SimError> {
        for _ in 0..max_cycles {
            if self.a.is_halted() && self.b.is_halted() {
                return Ok((*self.a.stats(), *self.b.stats()));
            }
            self.step()?;
        }
        if self.a.is_halted() && self.b.is_halted() {
            Ok((*self.a.stats(), *self.b.stats()))
        } else {
            Err(SimError::Timeout { cycles: max_cycles })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use pandora_isa::{Asm, Reg};

    fn machine(build: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        m
    }

    #[test]
    fn both_cores_run_to_completion() {
        let a = machine(|a| {
            a.li(Reg::T0, 100);
            a.label("l");
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, "l");
            a.li(Reg::T1, 0xA);
        });
        let b = machine(|a| {
            a.li(Reg::T1, 0xB);
        });
        let mut duo = DuoMachine::new(a, b);
        duo.run(100_000).unwrap();
        assert_eq!(duo.core_a().reg(Reg::T1), 0xA);
        assert_eq!(duo.core_b().reg(Reg::T1), 0xB);
    }

    #[test]
    fn sender_fills_are_visible_in_the_shared_l2() {
        let sender = machine(|a| {
            a.ld(Reg::T0, Reg::ZERO, 0x4000);
            a.fence();
        });
        let idle = machine(|a| {
            a.nop();
        });
        let mut duo = DuoMachine::new(sender, idle);
        duo.run(100_000).unwrap();
        assert!(duo.l2_holds(0x4000), "sender's fill lands in the shared L2");
        assert!(
            !duo.core_b().hierarchy().in_l1(0x4000),
            "receiver's private L1 is untouched"
        );
    }

    #[test]
    fn both_cores_observe_the_same_l2_lines() {
        // A fills 0x8000; B later loads the same address and must be
        // served by the *shared* L2 (an L2 hit), not go to DRAM — the
        // property every cross-core channel in this repo relies on.
        let a = machine(|a| {
            a.ld(Reg::T0, Reg::ZERO, 0x8000);
            a.fence();
        });
        let b = machine(|a| {
            a.li(Reg::T6, 200);
            a.label("wait");
            a.addi(Reg::T6, Reg::T6, -1);
            a.bnez(Reg::T6, "wait");
            a.ld(Reg::T1, Reg::ZERO, 0x8000);
            a.ld(Reg::T2, Reg::ZERO, 0x9000);
            a.fence();
        });
        let mut duo = DuoMachine::new(a, b);
        duo.run(1_000_000).unwrap();
        assert!(duo.l2_holds(0x8000), "A's fill is in the shared L2");
        assert!(
            duo.core_b().stats().l2_hits >= 1,
            "B's load of A's line hits the shared L2, not DRAM: {:?}",
            duo.core_b().stats()
        );
        // B's own fill lands in the very same cache A fills — it is one
        // cache, not a copy per core.
        assert!(duo.shared_l2().probe(0x9000), "B's fill is in the shared L2");
        // A core's own L2 view is *detached* outside step(): consulting
        // it would answer from a stale placeholder, so it panics
        // instead of lying.
        let hier = duo.core_a().hierarchy();
        let view =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hier.l2().probe(0x9000)));
        assert!(
            view.is_err(),
            "a detached per-core l2() view must panic, not answer stale state"
        );
        let probe =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hier.in_l2(0x9000)));
        assert!(probe.is_err(), "detached in_l2() must panic too");
    }

    #[test]
    fn cross_core_covert_channel_round_trips() {
        // Sender on core A encodes a symbol by touching one of 16 lines;
        // receiver on core B times all 16: its L1 misses, so the shared
        // L2 serves the touched line fast and DRAM serves the rest.
        const BASE: u64 = 0x4_0000;
        const SYMBOL: u64 = 11;
        let sender = machine(|a| {
            a.ld(Reg::T0, Reg::ZERO, (BASE + SYMBOL * 64) as i64);
            a.fence();
        });
        let receiver = machine(|a| {
            // Give the sender time to transmit first.
            a.li(Reg::T6, 100);
            a.label("wait");
            a.addi(Reg::T6, Reg::T6, -1);
            a.bnez(Reg::T6, "wait");
            for i in 0..16u64 {
                let line = (i * 7) % 16; // permuted probe order
                a.fence();
                a.rdcycle(Reg::T3);
                a.ld(Reg::T4, Reg::ZERO, (BASE + line * 64) as i64);
                a.fence();
                a.rdcycle(Reg::T5);
                a.sub(Reg::T5, Reg::T5, Reg::T3);
                a.sd(Reg::T5, Reg::ZERO, (0x100 + line * 8) as i64);
            }
        });
        let mut duo = DuoMachine::new(sender, receiver);
        duo.run(1_000_000).unwrap();
        let timings: Vec<u64> = (0..16)
            .map(|i| duo.core_b().mem().read_u64(0x100 + i * 8).unwrap())
            .collect();
        let fastest = timings
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i as u64)
            .unwrap();
        assert_eq!(fastest, SYMBOL, "timings: {timings:?}");
    }

    #[test]
    fn receiver_can_evict_the_victims_l2_lines() {
        // Cross-core Prime+Probe priming: core B's fills displace core
        // A's lines from the shared L2 set.
        let victim = machine(|a| {
            a.ld(Reg::T0, Reg::ZERO, 0x4000);
            a.fence();
        });
        // 9 conflicting lines (> 8 ways) in the victim's L2 set.
        let attacker = machine(|a| {
            a.li(Reg::T6, 50);
            a.label("wait");
            a.addi(Reg::T6, Reg::T6, -1);
            a.bnez(Reg::T6, "wait");
            for k in 1..=9i64 {
                a.ld(Reg::T1, Reg::ZERO, 0x4000 + k * 0x4000);
            }
            a.fence();
        });
        let mut duo = DuoMachine::new(victim, attacker);
        duo.run(1_000_000).unwrap();
        assert!(!duo.l2_holds(0x4000), "victim's line displaced from L2");
        assert!(
            duo.core_a().hierarchy().in_l1(0x4000),
            "victim's private L1 copy is out of the attacker's reach"
        );
    }
}
