//! Computation reuse (§IV-C2; MLD Example 6).
//!
//! A hardware memoization table in the style of Sodani & Sohi's
//! *dynamic instruction reuse*. The table is PC-indexed
//! (direct-mapped); each entry records the keying information of the
//! last memoized dynamic instance and its result. A hit skips the
//! functional unit.
//!
//! Two keying flavours are modelled, matching the paper's defense
//! discussion (§VI-A3):
//!
//! * **Sv** — key on operand *values*: highest reuse, but a hit reveals
//!   that the in-flight operands equal values captured in
//!   microarchitectural state (the equality-oracle leak).
//! * **Sn** — key on operand *register ids*, with entries invalidated
//!   whenever a source register is redefined: only reveals which static
//!   instruction is executing (control flow).
//!
//! Per the paper's footnote 5, the table is *not* cleared on a squash,
//! so transient instructions can poison it.

use pandora_isa::Reg;

use crate::config::ReuseKey;

#[derive(Clone, Copy, Debug)]
struct ReuseEntry {
    pc: usize,
    /// Sv: operand values. Sn: operand register indices.
    key: [u64; 2],
    /// Sn only: source registers this entry depends on.
    srcs: [Option<Reg>; 2],
    result: u64,
    valid: bool,
}

/// The memoization table.
#[derive(Clone, Debug)]
pub struct ReuseTable {
    entries: Vec<Option<ReuseEntry>>,
    key_kind: ReuseKey,
}

impl ReuseTable {
    /// Creates a direct-mapped table with `entries` slots.
    #[must_use]
    pub fn new(entries: usize, key_kind: ReuseKey) -> ReuseTable {
        ReuseTable {
            entries: vec![None; entries.max(1)],
            key_kind,
        }
    }

    /// Forgets every memoized entry in place (capacity kept).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    fn slot(&self, pc: usize) -> usize {
        pc % self.entries.len()
    }

    fn make_key(&self, values: [u64; 2], srcs: [Option<Reg>; 2]) -> [u64; 2] {
        match self.key_kind {
            ReuseKey::Values => values,
            ReuseKey::RegIds => [
                srcs[0].map_or(u64::MAX, |r| r.index() as u64),
                srcs[1].map_or(u64::MAX, |r| r.index() as u64),
            ],
        }
    }

    /// Looks up the instruction at `pc` with operand `values` read from
    /// architectural registers `srcs`. Returns the memoized result on a
    /// hit.
    #[must_use]
    pub fn lookup(&self, pc: usize, values: [u64; 2], srcs: [Option<Reg>; 2]) -> Option<u64> {
        let e = self.entries[self.slot(pc)]?;
        let key = self.make_key(values, srcs);
        (e.valid && e.pc == pc && e.key == key).then_some(e.result)
    }

    /// Inserts the resolved instance into the table.
    pub fn insert(&mut self, pc: usize, values: [u64; 2], srcs: [Option<Reg>; 2], result: u64) {
        let key = self.make_key(values, srcs);
        let slot = self.slot(pc);
        self.entries[slot] = Some(ReuseEntry {
            pc,
            key,
            srcs,
            result,
            valid: true,
        });
    }

    /// Invalidates entries that depend on architectural register `r`.
    /// Only meaningful under [`ReuseKey::RegIds`] (Sv entries key on
    /// values, which remain correct by construction).
    pub fn invalidate_reg(&mut self, r: Reg) {
        if self.key_kind != ReuseKey::RegIds {
            return;
        }
        for e in self.entries.iter_mut().flatten() {
            if e.srcs.contains(&Some(r)) {
                e.valid = false;
            }
        }
    }

    /// The keying flavour.
    #[must_use]
    pub fn key_kind(&self) -> ReuseKey {
        self.key_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRCS: [Option<Reg>; 2] = [Some(Reg::T0), Some(Reg::T1)];

    #[test]
    fn sv_hits_only_on_equal_values() {
        let mut t = ReuseTable::new(16, ReuseKey::Values);
        assert_eq!(t.lookup(100, [2, 3], SRCS), None);
        t.insert(100, [2, 3], SRCS, 6);
        assert_eq!(t.lookup(100, [2, 3], SRCS), Some(6));
        assert_eq!(t.lookup(100, [2, 4], SRCS), None, "value mismatch");
    }

    #[test]
    fn sv_survives_register_redefinition() {
        let mut t = ReuseTable::new(16, ReuseKey::Values);
        t.insert(100, [2, 3], SRCS, 6);
        t.invalidate_reg(Reg::T0);
        assert_eq!(
            t.lookup(100, [2, 3], SRCS),
            Some(6),
            "Sv keys on values; redefinition is irrelevant"
        );
    }

    #[test]
    fn sn_hits_regardless_of_values_until_invalidated() {
        let mut t = ReuseTable::new(16, ReuseKey::RegIds);
        t.insert(100, [2, 3], SRCS, 6);
        assert_eq!(
            t.lookup(100, [9, 9], SRCS),
            Some(6),
            "Sn ignores operand values"
        );
        t.invalidate_reg(Reg::T1);
        assert_eq!(t.lookup(100, [2, 3], SRCS), None, "invalidated");
    }

    #[test]
    fn direct_mapping_conflicts_replace() {
        let mut t = ReuseTable::new(4, ReuseKey::Values);
        t.insert(0, [1, 1], SRCS, 2);
        t.insert(4, [1, 1], SRCS, 9); // same slot
        assert_eq!(t.lookup(0, [1, 1], SRCS), None, "displaced");
        assert_eq!(t.lookup(4, [1, 1], SRCS), Some(9));
    }

    #[test]
    fn different_pcs_different_slots() {
        let mut t = ReuseTable::new(16, ReuseKey::Values);
        t.insert(1, [5, 5], SRCS, 10);
        t.insert(2, [5, 5], SRCS, 25);
        assert_eq!(t.lookup(1, [5, 5], SRCS), Some(10));
        assert_eq!(t.lookup(2, [5, 5], SRCS), Some(25));
    }
}
