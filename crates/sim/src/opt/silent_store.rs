//! Silent stores (§IV-C1, §V-A; MLD Example 5).
//!
//! Implements the *read-port stealing* scheme of Lepak & Lipasti
//! (MICRO'00), the design the paper's Gem5 proof of concept follows
//! (§V-A1): as soon as a store's address and data resolve and a load
//! port is free, an *SS-load* is issued that reads memory at the store
//! address. If the SS-load returns before the store is performed and
//! the loaded value equals the store data, the store is marked silent
//! and later dequeues from the store queue without touching the cache;
//! consecutive silent stores dequeue in the same cycle.
//!
//! The four possible per-store sequences are the paper's Figure 4:
//!
//! * **A** — SS-load returned, values equal → silent dequeue,
//! * **B** — SS-load returned, values differ → performed normally,
//! * **C** — no free load port at execute → never checked,
//! * **D** — SS-load still outstanding at dequeue time → performed
//!   normally.
//!
//! The state machine lives here; the store-queue plumbing that drives
//! it lives in the pipeline.

use crate::trace::NonSilentReason;

/// Silent-store candidacy state carried by each store-queue entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SsState {
    /// The store has not executed yet, or silent stores are disabled.
    #[default]
    NotChecked,
    /// No load port was free when the store executed (Fig 4 case C).
    NoPort,
    /// An SS-load is in flight; it returns at `done_cycle`.
    Outstanding {
        /// The cycle the SS-load's data arrives.
        done_cycle: u64,
    },
    /// The SS-load returned and the candidacy decision is known.
    Checked {
        /// Whether the store data matched.
        silent: bool,
    },
}

impl SsState {
    /// Resolves the dequeue-time decision: `Ok(())` means the store is
    /// silent; `Err(reason)` carries why it must perform (Fig 4 B–D).
    /// [`SsState::NotChecked`] (silent stores disabled) also performs,
    /// reported as [`NonSilentReason::NoLoadPort`]'s operational
    /// equivalent per §V-A1 ("Case C is operationally equivalent to an
    /// architecture that does not implement silent stores").
    pub fn dequeue_decision(self) -> Result<(), NonSilentReason> {
        match self {
            SsState::Checked { silent: true } => Ok(()),
            SsState::Checked { silent: false } => Err(NonSilentReason::ValueMismatch),
            SsState::Outstanding { .. } => Err(NonSilentReason::SsLoadLate),
            SsState::NoPort | SsState::NotChecked => Err(NonSilentReason::NoLoadPort),
        }
    }

    /// Whether an SS-load is currently in flight.
    #[must_use]
    pub fn is_outstanding(self) -> bool {
        matches!(self, SsState::Outstanding { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_a_silent() {
        assert_eq!(SsState::Checked { silent: true }.dequeue_decision(), Ok(()));
    }

    #[test]
    fn case_b_value_mismatch() {
        assert_eq!(
            SsState::Checked { silent: false }.dequeue_decision(),
            Err(NonSilentReason::ValueMismatch)
        );
    }

    #[test]
    fn case_c_no_port() {
        assert_eq!(
            SsState::NoPort.dequeue_decision(),
            Err(NonSilentReason::NoLoadPort)
        );
        assert_eq!(
            SsState::NotChecked.dequeue_decision(),
            Err(NonSilentReason::NoLoadPort)
        );
    }

    #[test]
    fn case_d_late() {
        let s = SsState::Outstanding { done_cycle: 99 };
        assert!(s.is_outstanding());
        assert_eq!(s.dequeue_decision(), Err(NonSilentReason::SsLoadLate));
    }
}
