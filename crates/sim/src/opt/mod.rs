//! The seven microarchitectural optimization classes studied by the
//! paper (Table I / Table II), plus the baseline branch predictor.
//!
//! Each submodule documents which paper section and MLD it implements;
//! [`hook`] packages each class as an [`hook::OptHook`] the pipeline
//! stages consult, so a [`crate::Machine`] is "baseline + a list of
//! hooks". Everything is off by default
//! ([`crate::OptConfig::baseline`]) so the default machine matches
//! Table I's "Baseline" column.

pub mod bpred;
pub mod cdp;
pub mod comp_reuse;
pub mod comp_simpl;
pub mod dmp;
pub mod hook;
pub mod pipe_compress;
pub mod rf_compress;
pub mod silent_store;
pub mod value_pred;
