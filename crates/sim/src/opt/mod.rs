//! The seven microarchitectural optimization classes studied by the
//! paper (Table I / Table II), plus the baseline branch predictor.
//!
//! Each submodule documents which paper section and MLD it implements;
//! the pipeline in [`crate::Machine`] wires them together. Everything
//! is off by default ([`crate::OptConfig::baseline`]) so the default
//! machine matches Table I's "Baseline" column.

pub mod bpred;
pub mod cdp;
pub mod comp_reuse;
pub mod comp_simpl;
pub mod dmp;
pub mod pipe_compress;
pub mod rf_compress;
pub mod silent_store;
pub mod value_pred;
