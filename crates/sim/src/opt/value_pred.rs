//! Load value prediction (§IV-C3; MLD Example 7).
//!
//! A PC-indexed last-value predictor with a saturating confidence
//! counter, the threshold-based structure the paper describes as common
//! to "nearly all" proposals. A prediction is only made above the
//! confidence threshold; a resolved mispredict squashes younger
//! instructions (the receiver-visible event) and resets confidence.
//!
//! The leakage, per the paper's MLD: whether an in-flight load's
//! *result* equals the value stored in predictor state — an equality
//! oracle an active attacker can replay with chosen training values.

use std::collections::HashMap;

/// The prediction heuristic (the paper notes proposals range "from
/// simple last-level and stride predictors to hybrid predictors", all
/// threshold-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VpKind {
    /// Predict the last observed value.
    #[default]
    LastValue,
    /// Predict `last + stride`, confidence on a stable stride.
    Stride,
}

#[derive(Clone, Copy, Debug)]
struct VpEntry {
    last: u64,
    stride: u64,
    conf: u8,
}

/// The load value predictor table.
#[derive(Clone, Debug)]
pub struct ValuePredictor {
    table: HashMap<usize, VpEntry>,
    threshold: u8,
    kind: VpKind,
}

impl ValuePredictor {
    /// Creates a last-value predictor that predicts once a value has
    /// repeated `threshold` times.
    #[must_use]
    pub fn new(threshold: u8) -> ValuePredictor {
        ValuePredictor::with_kind(threshold, VpKind::LastValue)
    }

    /// Creates a predictor with an explicit heuristic.
    #[must_use]
    pub fn with_kind(threshold: u8, kind: VpKind) -> ValuePredictor {
        ValuePredictor {
            table: HashMap::new(),
            threshold: threshold.max(1),
            kind,
        }
    }

    /// Forgets every learned value in place (capacity kept).
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// The prediction for the load at `pc`, if confidence is above
    /// threshold.
    #[must_use]
    pub fn predict(&self, pc: usize) -> Option<u64> {
        self.table
            .get(&pc)
            .filter(|e| e.conf >= self.threshold)
            .map(|e| match self.kind {
                VpKind::LastValue => e.last,
                VpKind::Stride => e.last.wrapping_add(e.stride),
            })
    }

    /// Trains the entry for `pc` with a resolved load value. A repeat
    /// of the expected pattern bumps confidence; a break replaces the
    /// tracked state and resets confidence.
    pub fn update(&mut self, pc: usize, value: u64) {
        let cap = self.threshold.saturating_mul(3);
        match self.table.get_mut(&pc) {
            Some(e) => {
                let expected_repeat = match self.kind {
                    VpKind::LastValue => e.last == value,
                    VpKind::Stride => value.wrapping_sub(e.last) == e.stride,
                };
                if expected_repeat {
                    e.conf = e.conf.saturating_add(1).min(cap);
                } else {
                    e.stride = value.wrapping_sub(e.last);
                    e.conf = 0;
                }
                e.last = value;
            }
            None => {
                self.table.insert(
                    pc,
                    VpEntry {
                        last: value,
                        stride: 0,
                        conf: 0,
                    },
                );
            }
        }
    }

    /// Current confidence for `pc` (0 if never seen).
    #[must_use]
    pub fn confidence(&self, pc: usize) -> u8 {
        self.table.get(&pc).map_or(0, |e| e.conf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_until_threshold() {
        let mut vp = ValuePredictor::new(3);
        assert_eq!(vp.predict(10), None);
        vp.update(10, 7); // conf 0 -> entry created
        vp.update(10, 7); // conf 1
        vp.update(10, 7); // conf 2
        assert_eq!(vp.predict(10), None);
        vp.update(10, 7); // conf 3
        assert_eq!(vp.predict(10), Some(7));
    }

    #[test]
    fn value_change_resets_confidence() {
        let mut vp = ValuePredictor::new(2);
        for _ in 0..4 {
            vp.update(10, 7);
        }
        assert_eq!(vp.predict(10), Some(7));
        vp.update(10, 8);
        assert_eq!(vp.predict(10), None);
        assert_eq!(vp.confidence(10), 0);
    }

    #[test]
    fn entries_are_per_pc() {
        let mut vp = ValuePredictor::new(1);
        vp.update(1, 5);
        vp.update(1, 5);
        vp.update(2, 9);
        assert_eq!(vp.predict(1), Some(5));
        assert_eq!(vp.predict(2), None, "pc 2 has conf 0");
    }

    #[test]
    fn stride_predictor_follows_arithmetic_sequences() {
        let mut vp = ValuePredictor::with_kind(2, VpKind::Stride);
        for v in [10u64, 17, 24, 31] {
            vp.update(1, v);
        }
        // Stride 7 established with confidence: predicts 38.
        assert_eq!(vp.predict(1), Some(38));
        // A last-value predictor would never gain confidence here.
        let mut lv = ValuePredictor::new(2);
        for v in [10u64, 17, 24, 31] {
            lv.update(1, v);
        }
        assert_eq!(lv.predict(1), None);
    }

    #[test]
    fn stride_break_resets_confidence() {
        let mut vp = ValuePredictor::with_kind(2, VpKind::Stride);
        for v in [10u64, 17, 24, 31] {
            vp.update(1, v);
        }
        vp.update(1, 100); // breaks the stride
        assert_eq!(vp.predict(1), None);
    }

    #[test]
    fn stride_zero_subsumes_last_value() {
        let mut vp = ValuePredictor::with_kind(2, VpKind::Stride);
        for _ in 0..4 {
            vp.update(1, 42);
        }
        assert_eq!(vp.predict(1), Some(42));
    }

    #[test]
    fn threshold_zero_is_clamped() {
        let vp = ValuePredictor::new(0);
        assert_eq!(vp.predict(1), None, "never trained, never predicts");
    }
}
