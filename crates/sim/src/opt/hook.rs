//! The pluggable optimization layer: [`OptHook`] and its aggregator
//! [`Hooks`].
//!
//! The paper's Table I treats each optimization class as an independent
//! transformation over a fixed baseline; here each class is one
//! [`OptHook`] implementation, and a machine is "baseline + a list of
//! hooks" ([`Hooks::from_config`]). The interception points mirror the
//! stages the paper describes:
//!
//! | hook method | stage | optimization class |
//! |---|---|---|
//! | [`OptHook::store_dequeue_decision`], [`OptHook::silent_stores`] | store dequeue / issue | silent stores |
//! | [`OptHook::plan_alu`], [`OptHook::plan_fp`] | execute (latency planning) | computation simplification |
//! | [`OptHook::operand_packing`] | issue (ALU port accounting) | pipeline compression |
//! | [`OptHook::memo_lookup`], [`OptHook::memo_insert`], [`OptHook::on_rename`] | issue / writeback / rename | computation reuse |
//! | [`OptHook::predict_load`], [`OptHook::on_load_writeback`] | dispatch / writeback | value prediction |
//! | [`OptHook::rfc_compresses`] | writeback (early tag release) | register-file compression |
//! | [`OptHook::on_commit_load`] | commit (fill/observe) | DMP prefetching |
//!
//! Fault injection rides the same layer: [`FaultHook`] consumes a
//! [`FaultPlan`] from [`OptHook::on_cycle_start`] instead of bespoke
//! plumbing in `Machine::step`.

use std::fmt;

use pandora_isa::{AluOp, FpOp, Reg, Width};

use crate::config::SimConfig;
use crate::event::{SimEvent, SquashReason};
use crate::fault::{FaultKind, FaultPlan};
use crate::opt::cdp::Cdp;
use crate::opt::comp_reuse::ReuseTable;
use crate::opt::comp_simpl::{plan_alu, plan_fp, ExecPlan};
use crate::opt::dmp::Imp;
use crate::opt::rf_compress::RfCompressor;
use crate::opt::silent_store::SsState;
use crate::opt::value_pred::ValuePredictor;
use crate::pipeline::{squash, PipelineState};
use crate::trace::NonSilentReason;

/// Result of a computation-reuse memo consultation
/// ([`OptHook::memo_lookup`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemoLookup {
    /// No hook handles this operation; plan and evaluate normally and
    /// do not count a lookup.
    NotApplicable,
    /// Memoized: reuse this result with unit latency and no port.
    Hit(u64),
    /// Eligible but absent: evaluate, then offer the result back via
    /// [`OptHook::memo_insert`] at writeback.
    Miss,
}

/// One optimization class (or the fault injector) plugged into the
/// baseline pipeline.
///
/// Every method has a no-op default, so a hook only implements the
/// interception points its optimization uses. Hooks mutate only their
/// own state plus whatever [`PipelineState`] exposes at the call site;
/// all observation is emitted as [`SimEvent`]s.
///
/// `Send + Sync` because hooks are plain data (learned tables, RNG
/// words — mutation always goes through `&mut self`): machines migrate
/// across fleet worker threads, and [`crate::Checkpoint`]s are shared
/// read-only behind `Arc` so forked trials can clone the hook list.
pub trait OptHook: fmt::Debug + Send + Sync {
    /// A short stable identifier; [`Hooks::install`] replaces any
    /// existing hook with the same name.
    fn name(&self) -> &'static str;

    /// Clones this hook into a box (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn OptHook>;

    /// Rewinds this hook to the state [`Hooks::from_config`] would
    /// have built it in, reusing existing allocations: learned state
    /// is forgotten, RNG streams are re-derived from their seeds.
    /// Stateless hooks keep the no-op default.
    fn reset(&mut self, cfg: &SimConfig) {
        let _ = cfg;
    }

    /// Called at the very start of each cycle, before commit.
    fn on_cycle_start(&mut self, st: &mut PipelineState) {
        let _ = st;
    }

    /// Filters the value an `rdcycle` instruction reads: given the
    /// true cycle, return the (possibly coarsened/jittered) value the
    /// program observes, or `None` to leave the timer exact. This is
    /// the noise hook's timer-degradation point.
    fn read_cycle(&mut self, cycle: u64) -> Option<u64> {
        let _ = cycle;
        None
    }

    /// Called when rename redefines architectural register `rd`.
    fn on_rename(&mut self, rd: Reg) {
        let _ = rd;
    }

    /// Value prediction for the load dispatching at `pc`.
    fn predict_load(&self, pc: usize) -> Option<u64> {
        let _ = pc;
        None
    }

    /// Called when a non-faulting load at `pc` writes back `value`.
    fn on_load_writeback(&mut self, pc: usize, value: u64) {
        let _ = (pc, value);
    }

    /// Computation-reuse memo consultation at issue. `base_eligible` is
    /// true for operations the baseline always considers reusable
    /// (multiplies, divides, floating point).
    fn memo_lookup(
        &mut self,
        pc: usize,
        vals: [u64; 2],
        srcs: [Option<Reg>; 2],
        base_eligible: bool,
    ) -> MemoLookup {
        let _ = (pc, vals, srcs, base_eligible);
        MemoLookup::NotApplicable
    }

    /// Offers a computed result for memoization at writeback.
    /// `younger_redefines` reports whether a younger in-flight
    /// instruction already redefined one of the given source registers
    /// (the insert-after-invalidate hazard).
    fn memo_insert(
        &mut self,
        pc: usize,
        vals: [u64; 2],
        srcs: [Option<Reg>; 2],
        result: u64,
        younger_redefines: &mut dyn FnMut(&[Option<Reg>; 2]) -> bool,
    ) {
        let _ = (pc, vals, srcs, result, younger_redefines);
    }

    /// Execution plan for an integer ALU operation (computation
    /// simplification). `None` falls through to the baseline plan.
    fn plan_alu(&self, op: AluOp, a: u64, b: u64) -> Option<ExecPlan> {
        let _ = (op, a, b);
        None
    }

    /// Execution plan for a floating-point operation. `None` falls
    /// through to the baseline plan.
    fn plan_fp(&self, op: FpOp, a: u64, b: u64) -> Option<ExecPlan> {
        let _ = (op, a, b);
        None
    }

    /// Whether narrow ALU operand packing is active this run.
    fn operand_packing(&self) -> bool {
        false
    }

    /// Whether silent-store checking (SS-load issue) is active.
    fn silent_stores(&self) -> bool {
        false
    }

    /// Decides whether the committed store at the SQ head may dequeue
    /// silently (`Ok`) or must perform (`Err` with the reason). `None`
    /// falls through to the baseline, which performs every store.
    fn store_dequeue_decision(&self, ss: SsState) -> Option<Result<(), NonSilentReason>> {
        let _ = ss;
        None
    }

    /// Whether register-file compression shares the tag holding
    /// `result` (given the current architectural registers).
    fn rfc_compresses(&self, result: u64, arch_regs: &[u64]) -> bool {
        let _ = (result, arch_regs);
        false
    }

    /// Called when a load commits: `addr`/`width` are the resolved
    /// access (absent if the load never executed), `value` its result.
    /// This is the DMP observation point.
    fn on_commit_load(
        &mut self,
        st: &mut PipelineState,
        pc: usize,
        addr: Option<u64>,
        value: u64,
        width: Option<Width>,
    ) {
        let _ = (st, pc, addr, value, width);
    }
}

/// An ordered list of [`OptHook`]s with aggregation semantics: "any"
/// for capability flags, "first answer wins" for planning queries, and
/// in-order iteration for notifications.
#[derive(Debug, Default)]
pub struct Hooks {
    list: Vec<Box<dyn OptHook>>,
    /// Cached "any hook enables operand packing / silent stores"
    /// answers. Both are per-hook-type constants, so the aggregate only
    /// changes when the list itself does; the issue stage queries them
    /// every cycle, which made the virtual-dispatch scan measurable.
    packing: bool,
    ss: bool,
}

impl Clone for Hooks {
    fn clone(&self) -> Hooks {
        Hooks {
            list: self.list.iter().map(|h| h.box_clone()).collect(),
            packing: self.packing,
            ss: self.ss,
        }
    }
}

impl Hooks {
    /// An empty hook list (the pure baseline machine).
    #[must_use]
    pub fn new() -> Hooks {
        Hooks::default()
    }

    /// Builds the hook list matching a [`SimConfig`]'s enabled Table I
    /// optimization classes, in the pipeline's canonical order.
    #[must_use]
    pub fn from_config(cfg: &SimConfig) -> Hooks {
        let o = &cfg.opts;
        let mut list: Vec<Box<dyn OptHook>> = Vec::new();
        if o.silent_stores {
            list.push(Box::new(SilentStoreHook));
        }
        if o.comp_simpl || o.fp_subnormal {
            list.push(Box::new(CompSimplHook {
                lat: cfg.latency,
                opts: *o,
            }));
        }
        if o.operand_packing {
            list.push(Box::new(PipeCompressHook));
        }
        if o.comp_reuse {
            list.push(Box::new(CompReuseHook {
                table: ReuseTable::new(o.reuse_entries.max(1), o.reuse_key),
                simple_alu: o.reuse_simple_alu,
            }));
        }
        if o.value_pred {
            list.push(Box::new(ValuePredHook {
                vp: ValuePredictor::with_kind(o.vp_confidence, o.vp_kind),
            }));
        }
        if o.rf_compress {
            list.push(Box::new(RfCompressHook {
                rfc: RfCompressor::new(o.rfc_match),
            }));
        }
        if o.cdp {
            list.push(Box::new(CdpHook {
                cdp: Cdp::new(cfg.l1d.line, o.dmp_fill),
            }));
        }
        if o.dmp {
            list.push(Box::new(ImpHook { imp: Imp::new(o) }));
        }
        if cfg.noise.enabled() {
            // Last, so a cycle's optimization decisions precede the
            // environment's disturbances deterministically.
            list.push(Box::new(crate::noise::NoiseHook::new(cfg.noise)));
        }
        let mut hooks = Hooks {
            list,
            packing: false,
            ss: false,
        };
        hooks.recache_capabilities();
        hooks
    }

    /// Recomputes the cached capability flags from the current list.
    /// Must be called after every mutation of `self.list`.
    fn recache_capabilities(&mut self) {
        self.packing = self.list.iter().any(|h| h.operand_packing());
        self.ss = self.list.iter().any(|h| h.silent_stores());
    }

    /// Installs a hook, replacing any existing hook with the same
    /// [`OptHook::name`].
    pub fn install(&mut self, hook: Box<dyn OptHook>) {
        let name = hook.name();
        self.list.retain(|h| h.name() != name);
        self.list.push(hook);
        self.recache_capabilities();
    }

    /// Replaces the environmental-noise hook to match `cfg.noise`:
    /// removes any installed noise hook, then (when the new config has
    /// noise enabled) appends a fresh [`crate::noise::NoiseHook`] with
    /// streams derived from the new seed — exactly the hook
    /// [`Hooks::from_config`] would have built, in its canonical
    /// last-of-list position.
    ///
    /// This is the per-member noise override used by cycle-0
    /// checkpoint forks ([`crate::Machine::set_noise`]): at cycle 0 no
    /// noise has been drawn yet, so swapping the hook is bit-equal to
    /// constructing the machine under the new config.
    pub fn set_noise(&mut self, cfg: &SimConfig) {
        self.list.retain(|h| h.name() != "noise");
        if cfg.noise.enabled() {
            // Keep the canonical order (noise after every optimization
            // class, before any installed fault hook).
            let at = self
                .list
                .iter()
                .position(|h| h.name() == "fault")
                .unwrap_or(self.list.len());
            self.list
                .insert(at, Box::new(crate::noise::NoiseHook::new(cfg.noise)));
        }
        self.recache_capabilities();
    }

    /// The hook names [`Hooks::from_config`] would install for `cfg`,
    /// in canonical order, without allocating any hook.
    fn config_names(cfg: &SimConfig) -> ([&'static str; 9], usize) {
        let o = &cfg.opts;
        let mut names = [""; 9];
        let mut n = 0;
        let mut add = |name| {
            names[n] = name;
            n += 1;
        };
        if o.silent_stores {
            add("silent_store");
        }
        if o.comp_simpl || o.fp_subnormal {
            add("comp_simpl");
        }
        if o.operand_packing {
            add("pipe_compress");
        }
        if o.comp_reuse {
            add("comp_reuse");
        }
        if o.value_pred {
            add("value_pred");
        }
        if o.rf_compress {
            add("rf_compress");
        }
        if o.cdp {
            add("cdp");
        }
        if o.dmp {
            add("dmp");
        }
        if cfg.noise.enabled() {
            add("noise");
        }
        (names, n)
    }

    /// Rewinds the hook list to what [`Hooks::from_config`] builds for
    /// `cfg` — without re-boxing any hook. Any installed fault hook is
    /// dropped (a reset machine has no pending fault plan), learned
    /// state is cleared in place, and the noise RNG streams are
    /// re-derived from their seeds. If the surviving list does not
    /// match the canonical set (e.g. a custom hook was
    /// [`install`](Hooks::install)ed), it falls back to a full
    /// rebuild.
    pub fn reset_from_config(&mut self, cfg: &SimConfig) {
        self.list.retain(|h| h.name() != "fault");
        let (names, n) = Hooks::config_names(cfg);
        let canonical = self.list.len() == n
            && self.list.iter().zip(&names[..n]).all(|(h, e)| h.name() == *e);
        if !canonical {
            *self = Hooks::from_config(cfg);
            return;
        }
        for h in &mut self.list {
            h.reset(cfg);
        }
        self.recache_capabilities();
    }

    /// The installed hook names, in call order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.list.iter().map(|h| h.name()).collect()
    }

    /// Fans [`OptHook::on_cycle_start`] out to every hook in order.
    pub fn on_cycle_start(&mut self, st: &mut PipelineState) {
        for h in &mut self.list {
            h.on_cycle_start(st);
        }
    }

    /// The first hook's degraded `rdcycle` reading, if any.
    pub fn read_cycle(&mut self, cycle: u64) -> Option<u64> {
        self.list.iter_mut().find_map(|h| h.read_cycle(cycle))
    }

    /// Fans [`OptHook::on_rename`] out to every hook in order.
    pub fn on_rename(&mut self, rd: Reg) {
        for h in &mut self.list {
            h.on_rename(rd);
        }
    }

    /// The first hook's load-value prediction, if any.
    #[must_use]
    pub fn predict_load(&self, pc: usize) -> Option<u64> {
        self.list.iter().find_map(|h| h.predict_load(pc))
    }

    /// Fans [`OptHook::on_load_writeback`] out to every hook in order.
    pub fn on_load_writeback(&mut self, pc: usize, value: u64) {
        for h in &mut self.list {
            h.on_load_writeback(pc, value);
        }
    }

    /// The first non-[`MemoLookup::NotApplicable`] memo answer.
    pub fn memo_lookup(
        &mut self,
        pc: usize,
        vals: [u64; 2],
        srcs: [Option<Reg>; 2],
        base_eligible: bool,
    ) -> MemoLookup {
        for h in &mut self.list {
            match h.memo_lookup(pc, vals, srcs, base_eligible) {
                MemoLookup::NotApplicable => continue,
                answer => return answer,
            }
        }
        MemoLookup::NotApplicable
    }

    /// Fans [`OptHook::memo_insert`] out to every hook in order.
    pub fn memo_insert(
        &mut self,
        pc: usize,
        vals: [u64; 2],
        srcs: [Option<Reg>; 2],
        result: u64,
        younger_redefines: &mut dyn FnMut(&[Option<Reg>; 2]) -> bool,
    ) {
        for h in &mut self.list {
            h.memo_insert(pc, vals, srcs, result, younger_redefines);
        }
    }

    /// The first hook's ALU execution plan, if any.
    #[must_use]
    pub fn plan_alu(&self, op: AluOp, a: u64, b: u64) -> Option<ExecPlan> {
        self.list.iter().find_map(|h| h.plan_alu(op, a, b))
    }

    /// The first hook's FP execution plan, if any.
    #[must_use]
    pub fn plan_fp(&self, op: FpOp, a: u64, b: u64) -> Option<ExecPlan> {
        self.list.iter().find_map(|h| h.plan_fp(op, a, b))
    }

    /// Whether any hook enables narrow ALU operand packing.
    #[must_use]
    pub fn operand_packing(&self) -> bool {
        self.packing
    }

    /// Whether any hook enables silent-store checking.
    #[must_use]
    pub fn silent_stores(&self) -> bool {
        self.ss
    }

    /// The first hook's store-dequeue decision, if any.
    #[must_use]
    pub fn store_dequeue_decision(&self, ss: SsState) -> Option<Result<(), NonSilentReason>> {
        self.list.iter().find_map(|h| h.store_dequeue_decision(ss))
    }

    /// Whether any hook compresses `result` into a shared register.
    #[must_use]
    pub fn rfc_compresses(&self, result: u64, arch_regs: &[u64]) -> bool {
        self.list.iter().any(|h| h.rfc_compresses(result, arch_regs))
    }

    /// Fans [`OptHook::on_commit_load`] out to every hook in order.
    pub fn on_commit_load(
        &mut self,
        st: &mut PipelineState,
        pc: usize,
        addr: Option<u64>,
        value: u64,
        width: Option<Width>,
    ) {
        for h in &mut self.list {
            h.on_commit_load(st, pc, addr, value, width);
        }
    }
}

// ---- The seven Table I optimization classes --------------------------

/// Silent stores (§V-A1): SS-load checking plus silent dequeue.
#[derive(Clone, Copy, Debug)]
pub struct SilentStoreHook;

impl OptHook for SilentStoreHook {
    fn name(&self) -> &'static str {
        "silent_store"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(*self)
    }

    fn silent_stores(&self) -> bool {
        true
    }

    fn store_dequeue_decision(&self, ss: SsState) -> Option<Result<(), NonSilentReason>> {
        Some(ss.dequeue_decision())
    }
}

/// Computation simplification (§V-A2) and FP subnormal timing: plans
/// operand-dependent execution latencies.
#[derive(Clone, Copy, Debug)]
pub struct CompSimplHook {
    lat: crate::config::LatencyConfig,
    opts: crate::config::OptConfig,
}

impl OptHook for CompSimplHook {
    fn name(&self) -> &'static str {
        "comp_simpl"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(*self)
    }

    fn plan_alu(&self, op: AluOp, a: u64, b: u64) -> Option<ExecPlan> {
        Some(plan_alu(op, a, b, &self.lat, &self.opts))
    }

    fn plan_fp(&self, op: FpOp, a: u64, b: u64) -> Option<ExecPlan> {
        Some(plan_fp(op, a, b, &self.lat, &self.opts))
    }
}

/// Pipeline compression (§V-A4): packs two narrow ALU operations into
/// one port.
#[derive(Clone, Copy, Debug)]
pub struct PipeCompressHook;

impl OptHook for PipeCompressHook {
    fn name(&self) -> &'static str {
        "pipe_compress"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(*self)
    }

    fn operand_packing(&self) -> bool {
        true
    }
}

/// Computation reuse (§V-A3): memoizes results keyed by pc + operands.
#[derive(Clone, Debug)]
pub struct CompReuseHook {
    table: ReuseTable,
    simple_alu: bool,
}

impl OptHook for CompReuseHook {
    fn name(&self) -> &'static str {
        "comp_reuse"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(self.clone())
    }

    fn reset(&mut self, _cfg: &SimConfig) {
        self.table.clear();
    }

    fn on_rename(&mut self, rd: Reg) {
        self.table.invalidate_reg(rd);
    }

    fn memo_lookup(
        &mut self,
        pc: usize,
        vals: [u64; 2],
        srcs: [Option<Reg>; 2],
        base_eligible: bool,
    ) -> MemoLookup {
        if !(base_eligible || self.simple_alu) {
            return MemoLookup::NotApplicable;
        }
        match self.table.lookup(pc, vals, srcs) {
            Some(result) => MemoLookup::Hit(result),
            None => MemoLookup::Miss,
        }
    }

    fn memo_insert(
        &mut self,
        pc: usize,
        vals: [u64; 2],
        srcs: [Option<Reg>; 2],
        result: u64,
        younger_redefines: &mut dyn FnMut(&[Option<Reg>; 2]) -> bool,
    ) {
        let stale =
            self.table.key_kind() == crate::config::ReuseKey::RegIds && younger_redefines(&srcs);
        if !stale {
            self.table.insert(pc, vals, srcs, result);
        }
    }
}

/// Value prediction (§V-A5): predicts load values at dispatch, trains
/// at writeback.
#[derive(Clone, Debug)]
pub struct ValuePredHook {
    vp: ValuePredictor,
}

impl OptHook for ValuePredHook {
    fn name(&self) -> &'static str {
        "value_pred"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(self.clone())
    }

    fn reset(&mut self, _cfg: &SimConfig) {
        self.vp.clear();
    }

    fn predict_load(&self, pc: usize) -> Option<u64> {
        self.vp.predict(pc)
    }

    fn on_load_writeback(&mut self, pc: usize, value: u64) {
        self.vp.update(pc, value);
    }
}

/// Register-file compression (§V-A6): early tag release for
/// compressible results.
#[derive(Clone, Copy, Debug)]
pub struct RfCompressHook {
    rfc: RfCompressor,
}

impl OptHook for RfCompressHook {
    fn name(&self) -> &'static str {
        "rf_compress"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(*self)
    }

    fn rfc_compresses(&self, result: u64, arch_regs: &[u64]) -> bool {
        self.rfc.compresses(result, arch_regs)
    }
}

/// Content-directed prefetching (§V-C): scans committed loads' lines
/// for pointer-shaped values.
#[derive(Clone, Copy, Debug)]
pub struct CdpHook {
    cdp: Cdp,
}

impl OptHook for CdpHook {
    fn name(&self) -> &'static str {
        "cdp"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(*self)
    }

    fn on_commit_load(
        &mut self,
        st: &mut PipelineState,
        _pc: usize,
        addr: Option<u64>,
        _value: u64,
        _width: Option<Width>,
    ) {
        if let Some(addr) = addr {
            let PipelineState { mem, hier, bus, .. } = st;
            self.cdp.observe(addr, mem, hier, bus);
        }
    }
}

/// Indirect memory prefetching (§V-B): stream detection, indirection
/// correlation, and chained prefetch launch at commit.
#[derive(Clone, Debug)]
pub struct ImpHook {
    imp: Imp,
}

impl OptHook for ImpHook {
    fn name(&self) -> &'static str {
        "dmp"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(self.clone())
    }

    fn reset(&mut self, _cfg: &SimConfig) {
        self.imp.clear();
    }

    fn on_commit_load(
        &mut self,
        st: &mut PipelineState,
        pc: usize,
        addr: Option<u64>,
        value: u64,
        width: Option<Width>,
    ) {
        if let (Some(addr), Some(width)) = (addr, width) {
            let PipelineState { mem, hier, bus, .. } = st;
            self.imp.observe(pc, addr, value, width, mem, hier, bus);
        }
    }
}

// ---- Fault injection as a hook ---------------------------------------

/// Applies a [`FaultPlan`]'s scheduled events at the start of their
/// cycles — fault injection expressed as just another pipeline hook.
#[derive(Clone, Debug)]
pub struct FaultHook {
    plan: FaultPlan,
    cursor: usize,
}

impl FaultHook {
    /// Wraps a plan; `cursor` indexes the first event not yet applied
    /// (events at or before the install cycle are skipped, not fired
    /// retroactively).
    #[must_use]
    pub fn new(plan: FaultPlan, cursor: usize) -> FaultHook {
        FaultHook { plan, cursor }
    }
}

impl OptHook for FaultHook {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn box_clone(&self) -> Box<dyn OptHook> {
        Box::new(self.clone())
    }

    fn on_cycle_start(&mut self, st: &mut PipelineState) {
        while let Some(ev) = self.plan.events().get(self.cursor) {
            if ev.cycle > st.cycle() {
                break;
            }
            self.cursor += 1;
            apply_fault(st, ev.kind);
        }
    }
}

fn apply_fault(st: &mut PipelineState, kind: FaultKind) {
    match kind {
        FaultKind::MemBitFlip { addr, bit } => {
            // Out-of-bounds targets are no-ops: the plan may be
            // random and the memory small.
            if let Ok(b) = st.mem.read_u8(addr) {
                let _ = st.mem.write_u8(addr, b ^ (1 << (bit & 7)));
                st.bus.emit(SimEvent::FaultInjected);
            }
        }
        FaultKind::RegBitFlip { reg, bit } => {
            if !reg.is_zero() {
                let mask = 1u64 << (bit & 63);
                st.arch_regs[reg.index()] ^= mask;
                // Mirror into the current physical mapping so
                // in-flight readers observe the flip too.
                let tag = st.rat[reg.index()] as usize;
                st.prf_vals[tag] ^= mask;
                st.bus.emit(SimEvent::FaultInjected);
            }
        }
        FaultKind::DropPrefetches { count } => {
            st.hier.suppress_prefetches(count);
            st.bus.emit(SimEvent::FaultInjected);
        }
        FaultKind::EvictLine { addr } => {
            st.hier.flush_line(addr);
            st.bus.emit(SimEvent::FaultInjected);
        }
        FaultKind::SpuriousSquash => {
            if let Some(front) = st.rob.front() {
                let pc = front.pc;
                squash::squash_newer_than(st, None, pc, SquashReason::Fault);
                st.bus.emit(SimEvent::FaultInjected);
            }
        }
        FaultKind::DroppedCompletion => {
            if let Some(u) = st.rob.iter_mut().find(|u| u.executing && !u.done) {
                u.done_cycle = u64::MAX;
                st.bus.emit(SimEvent::FaultInjected);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;

    fn full_cfg() -> SimConfig {
        let mut cfg = SimConfig::with_opts(OptConfig {
            silent_stores: true,
            comp_reuse: true,
            value_pred: true,
            dmp: true,
            ..OptConfig::default()
        });
        cfg.noise = crate::NoiseConfig::at_intensity(10, 7);
        cfg
    }

    #[test]
    fn reset_drops_the_fault_hook_and_keeps_the_boxes() {
        let cfg = full_cfg();
        let mut hooks = Hooks::from_config(&cfg);
        let names_before = hooks.names();
        let ptrs_before: Vec<*const ()> = hooks
            .list
            .iter()
            .map(|h| std::ptr::from_ref::<dyn OptHook>(&**h).cast::<()>())
            .collect();
        hooks.install(Box::new(FaultHook::new(FaultPlan::default(), 0)));
        assert!(hooks.names().contains(&"fault"));

        hooks.reset_from_config(&cfg);
        assert_eq!(hooks.names(), names_before, "canonical order survives reset");
        let ptrs_after: Vec<*const ()> = hooks
            .list
            .iter()
            .map(|h| std::ptr::from_ref::<dyn OptHook>(&**h).cast::<()>())
            .collect();
        assert_eq!(ptrs_before, ptrs_after, "reset must reuse the existing boxes");
    }

    #[test]
    fn reset_clears_learned_state_in_place() {
        let cfg = full_cfg();
        let mut hooks = Hooks::from_config(&cfg);
        // Train the value predictor past its confidence threshold and
        // memoize a multiply result.
        for _ in 0..16 {
            hooks.on_load_writeback(3, 0xdead);
        }
        assert_eq!(hooks.predict_load(3), Some(0xdead));
        hooks.memo_insert(5, [6, 7], [None, None], 42, &mut |_| false);
        assert_eq!(hooks.memo_lookup(5, [6, 7], [None, None], true), MemoLookup::Hit(42));

        hooks.reset_from_config(&cfg);
        assert_eq!(hooks.predict_load(3), None, "VP confidence must be forgotten");
        assert_eq!(
            hooks.memo_lookup(5, [6, 7], [None, None], true),
            MemoLookup::Miss,
            "reuse memos must be forgotten"
        );
    }

    #[test]
    fn reset_falls_back_to_rebuild_for_non_canonical_lists() {
        #[derive(Clone, Debug)]
        struct Custom;
        impl OptHook for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn box_clone(&self) -> Box<dyn OptHook> {
                Box::new(self.clone())
            }
        }
        let cfg = full_cfg();
        let mut hooks = Hooks::from_config(&cfg);
        hooks.install(Box::new(Custom));
        hooks.reset_from_config(&cfg);
        assert_eq!(
            hooks.names(),
            Hooks::from_config(&cfg).names(),
            "a non-canonical list is rebuilt from the config"
        );
    }
}
