//! Pipeline compression via narrow-operand packing (§IV-B2; MLD
//! Example 4, after Brooks & Martonosi HPCA'99).
//!
//! Two pending ALU operations whose operands are all *narrow* (most
//! significant on-bit below bit 16) can be packed into the two halves of
//! one 64-bit execution unit, doubling effective ALU throughput. The
//! leakage: issue bandwidth — and therefore runtime — becomes a function
//! of operand *magnitudes*, breaking constant-time code that assumed
//! bitwise/arithmetic ops were safe.
//!
//! The pipeline models packing by accounting ALU ports in halves: a wide
//! operation consumes a whole port, a narrow one half a port, so two
//! narrow operations co-issued in the same cycle share one port exactly
//! when the MLD's condition (`msb(v) < 16` for all four operands) holds.

/// The bit position below which an operand counts as narrow.
pub const NARROW_BITS: u32 = 16;

/// Whether `v`'s most-significant on-bit is below [`NARROW_BITS`]
/// (`msb(v) < 16` in the paper's MLD notation; zero is narrow).
#[must_use]
pub fn is_narrow(v: u64) -> bool {
    v < (1 << NARROW_BITS)
}

/// Whether an operation with resolved operands `a`, `b` is packable.
#[must_use]
pub fn packable(a: u64, b: u64) -> bool {
    is_narrow(a) && is_narrow(b)
}

/// Half-port accounting for one issue cycle.
///
/// ```
/// use pandora_sim::opt::pipe_compress::AluSlots;
/// let mut s = AluSlots::new(1, true); // one ALU port, packing on
/// assert!(s.take(true));  // narrow op: half the port
/// assert!(s.take(true));  // second narrow op: other half
/// assert!(!s.take(true)); // port exhausted
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AluSlots {
    halves_left: usize,
    packing: bool,
    narrow_issued: u64,
}

impl AluSlots {
    /// Slots for `ports` ALU ports; `packing` enables half-port sharing.
    #[must_use]
    pub fn new(ports: usize, packing: bool) -> AluSlots {
        AluSlots {
            halves_left: ports * 2,
            packing,
            narrow_issued: 0,
        }
    }

    /// Tries to claim capacity for one operation; `narrow` is whether
    /// all its operands are narrow. Returns whether it can issue this
    /// cycle.
    pub fn take(&mut self, narrow: bool) -> bool {
        let need = if self.packing && narrow { 1 } else { 2 };
        if self.halves_left >= need {
            self.halves_left -= need;
            if need == 1 {
                self.narrow_issued += 1;
            }
            true
        } else {
            false
        }
    }

    /// The number of packed *pairs* formed this cycle.
    #[must_use]
    pub fn packed_pairs(&self) -> u64 {
        self.narrow_issued / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowness_boundary() {
        assert!(is_narrow(0));
        assert!(is_narrow(0xffff));
        assert!(!is_narrow(0x1_0000));
        assert!(!is_narrow(u64::MAX));
    }

    #[test]
    fn packable_requires_both_operands_narrow() {
        assert!(packable(1, 2));
        assert!(!packable(1, 0x10000));
        assert!(!packable(0x10000, 1));
    }

    #[test]
    fn without_packing_each_op_takes_a_full_port() {
        let mut s = AluSlots::new(1, false);
        assert!(s.take(true));
        assert!(!s.take(true), "second op needs a second port");
        assert_eq!(s.packed_pairs(), 0);
    }

    #[test]
    fn packing_fits_two_narrow_ops_per_port() {
        let mut s = AluSlots::new(1, true);
        assert!(s.take(true));
        assert!(s.take(true));
        assert!(!s.take(true));
        assert_eq!(s.packed_pairs(), 1);
    }

    #[test]
    fn wide_op_blocks_packing() {
        let mut s = AluSlots::new(1, true);
        assert!(s.take(false), "wide takes the whole port");
        assert!(!s.take(true));
    }

    #[test]
    fn mixed_two_ports() {
        let mut s = AluSlots::new(2, true);
        assert!(s.take(false)); // port 1
        assert!(s.take(true)); // half of port 2
        assert!(s.take(true)); // other half of port 2
        assert!(!s.take(true));
        assert_eq!(s.packed_pairs(), 1);
    }
}
