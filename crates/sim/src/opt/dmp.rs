//! The data memory-dependent prefetcher (§IV-D2, §V-B; MLD Example 9).
//!
//! A model of the *indirect-memory prefetcher* (IMP, Yu et al.
//! MICRO'15, patented by Intel): it watches the retired-load stream,
//! detects a striding *stream* array `Z`, then solves for the base and
//! scale of dependent *indirect* arrays (`Y[Z[i]]`, and for the 3-level
//! variant `X[Y[Z[i]]]`) by correlating values returned to the core
//! with addresses of subsequent loads. Once a pattern is confirmed it
//! prefetches `Δ` elements ahead — dereferencing data memory itself,
//! with **no knowledge of software bounds**.
//!
//! That bounds-obliviousness is the paper's headline result: in the
//! sandbox setting the 3-level IMP forms a *universal read gadget*
//! (Fig 1), while the 2-level IMP leaks only a `Δ`-element window past
//! the stream array (§IV-D4). Both behaviours fall out of this model
//! and are asserted by the workspace's integration tests.

use std::collections::{HashMap, VecDeque};

use pandora_isa::Width;

use crate::config::OptConfig;
use crate::event::{EventBus, PrefetchSource, SimEvent};
use crate::mem::hierarchy::{Hierarchy, PrefetchFill};
use crate::mem::memory::Memory;

/// Scales (element sizes, bytes) the base-solver hypothesizes.
const SCALES: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];
/// Observations of a (base, scale) hypothesis required to confirm it.
const CONFIRM_HITS: u8 = 2;
/// Strides observed before a PC counts as streaming.
const STREAM_CONF: u8 = 2;
/// Recent-load window searched for value→address correlations.
const RECENT_WINDOW: usize = 8;
/// Maximum live candidate hypotheses.
const MAX_CANDIDATES: usize = 128;

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    last_addr: u64,
    stride: i64,
    conf: u8,
}

#[derive(Clone, Copy, Debug)]
struct LoadObs {
    pc: usize,
    value: u64,
}

/// A (possibly unconfirmed) indirection hypothesis: the value returned
/// by the load at `src_pc` feeds the address of the load at `dst_pc`
/// as `addr = base + value * scale`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Indirection {
    src_pc: usize,
    dst_pc: usize,
    base: u64,
    scale: u64,
    width: Width,
    hits: u8,
}

/// The indirect-memory prefetcher.
#[derive(Clone, Debug)]
pub struct Imp {
    levels: u8,
    distance: u64,
    fill: PrefetchFill,
    streams: HashMap<usize, StreamEntry>,
    recent: VecDeque<LoadObs>,
    candidates: Vec<Indirection>,
    confirmed: Vec<Indirection>,
}

impl Imp {
    /// Builds an IMP from the optimization config.
    #[must_use]
    pub fn new(opts: &OptConfig) -> Imp {
        Imp {
            levels: opts.dmp_levels.clamp(2, 4),
            distance: opts.dmp_distance.max(1),
            fill: opts.dmp_fill,
            streams: HashMap::new(),
            recent: VecDeque::with_capacity(RECENT_WINDOW),
            candidates: Vec::new(),
            confirmed: Vec::new(),
        }
    }

    /// Forgets all trained state — streams, the recent-load window,
    /// and candidate/confirmed indirections — in place (capacity
    /// kept).
    pub fn clear(&mut self) {
        self.streams.clear();
        self.recent.clear();
        self.candidates.clear();
        self.confirmed.clear();
    }

    /// The number of indirection levels chased (2 to 4).
    #[must_use]
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Confirmed (src_pc, dst_pc, base, scale) chains, for tests.
    #[must_use]
    pub fn confirmed_patterns(&self) -> Vec<(usize, usize, u64, u64)> {
        self.confirmed
            .iter()
            .map(|i| (i.src_pc, i.dst_pc, i.base, i.scale))
            .collect()
    }

    /// Feeds one committed load into the prefetcher and performs any
    /// resulting prefetch chain against `mem`/`hier`, reporting
    /// observation through the event bus.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        pc: usize,
        addr: u64,
        value: u64,
        width: Width,
        mem: &Memory,
        hier: &mut Hierarchy,
        bus: &mut EventBus,
    ) {
        self.correlate(pc, addr, width, bus);
        let stream_ready = self.update_stream(pc, addr);
        self.recent.push_back(LoadObs { pc, value });
        if self.recent.len() > RECENT_WINDOW {
            self.recent.pop_front();
        }
        if stream_ready {
            self.launch(pc, addr, width, mem, hier, bus);
        }
    }

    /// Updates the stride detector; returns whether `pc` is a confident
    /// stream.
    fn update_stream(&mut self, pc: usize, addr: u64) -> bool {
        let e = self.streams.entry(pc).or_insert(StreamEntry {
            last_addr: addr,
            stride: 0,
            conf: 0,
        });
        if e.conf == 0 && e.stride == 0 && e.last_addr == addr {
            // First observation of this pc.
            return false;
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride != 0 && stride == e.stride {
            e.conf = e.conf.saturating_add(1);
        } else {
            e.stride = stride;
            e.conf = 0;
        }
        e.last_addr = addr;
        e.conf >= STREAM_CONF
    }

    /// Correlates this load's *address* against recently returned
    /// *values* to grow indirection hypotheses.
    fn correlate(&mut self, pc: usize, addr: u64, width: Width, bus: &mut EventBus) {
        for obs in self.recent.iter().rev() {
            if obs.pc == pc {
                continue;
            }
            for scale in SCALES {
                let Some(base) = addr.checked_sub(obs.value.wrapping_mul(scale)) else {
                    continue;
                };
                if let Some(c) = self.candidates.iter_mut().find(|c| {
                    c.src_pc == obs.pc && c.dst_pc == pc && c.scale == scale && c.base == base
                }) {
                    c.hits += 1;
                    c.width = width;
                    if c.hits >= CONFIRM_HITS
                        && !self
                            .confirmed
                            .iter()
                            .any(|k| k.src_pc == c.src_pc && k.dst_pc == c.dst_pc)
                    {
                        bus.emit(SimEvent::PatternConfirmed {
                            src_pc: c.src_pc,
                            dst_pc: c.dst_pc,
                            base: c.base,
                            scale: c.scale,
                        });
                        self.confirmed.push(*c);
                    }
                } else if self.candidates.len() < MAX_CANDIDATES {
                    self.candidates.push(Indirection {
                        src_pc: obs.pc,
                        dst_pc: pc,
                        base,
                        scale,
                        width,
                        hits: 1,
                    });
                }
            }
        }
    }

    /// Issues the prefetch chain for the stream at `pc`, whose current
    /// element address is `addr`: the stream element `Δ` ahead, then up
    /// to `levels - 1` dependent indirections through the confirmed
    /// chain (`Y[Z[i+Δ]]`, `X[Y[Z[i+Δ]]]`, `W[X[Y[Z[i+Δ]]]]`, …).
    fn launch(
        &mut self,
        pc: usize,
        addr: u64,
        width: Width,
        mem: &Memory,
        hier: &mut Hierarchy,
        bus: &mut EventBus,
    ) {
        let Some(stream) = self.streams.get(&pc) else {
            return;
        };
        let ahead = stream.stride.wrapping_mul(self.distance as i64) as u64;
        let mut cur_addr = addr.wrapping_add(ahead);
        let mut cur_width = width;
        let mut cur_pc = pc;

        for level in 0..self.levels {
            // Prefetch the line for the current hop.
            if !mem.contains(cur_addr, cur_width.bytes()) {
                bus.emit(SimEvent::PrefetchDropped);
                return;
            }
            hier.prefetch(cur_addr, self.fill);
            bus.emit(SimEvent::Prefetch {
                source: PrefetchSource::Imp,
                addr: cur_addr,
                level,
            });
            if level + 1 == self.levels {
                return;
            }
            // Follow the next confirmed indirection: dereference the
            // just-prefetched data — the security-critical step: the
            // prefetcher trusts memory contents with no bounds
            // knowledge.
            let Some(link) = self
                .confirmed
                .iter()
                .find(|c| c.src_pc == cur_pc)
                .copied()
            else {
                return;
            };
            let Ok(value) = mem.read(cur_addr, cur_width) else {
                bus.emit(SimEvent::PrefetchDropped);
                return;
            };
            bus.emit(SimEvent::PointerDeref {
                source: PrefetchSource::Imp,
                addr: cur_addr,
                value,
            });
            cur_addr = link.base.wrapping_add(value.wrapping_mul(link.scale));
            cur_width = link.width;
            cur_pc = link.dst_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;
    use crate::mem::cache::CacheConfig;
    use crate::mem::hierarchy::MemLatency;
    use crate::trace::TraceEvent;

    struct Rig {
        imp: Imp,
        mem: Memory,
        hier: Hierarchy,
        bus: EventBus,
    }

    fn rig(levels: u8) -> Rig {
        let mut opts = OptConfig::with_dmp(levels);
        opts.dmp_distance = 2;
        Rig {
            imp: Imp::new(&opts),
            mem: Memory::new(1 << 16),
            hier: Hierarchy::new(
                CacheConfig::l1d(),
                CacheConfig::l2(),
                MemLatency::default(),
                1,
            ),
            bus: EventBus::new(),
        }
    }

    const Z_PC: usize = 10;
    const Y_PC: usize = 20;
    const X_PC: usize = 30;
    const Z_BASE: u64 = 0x1000;
    const Y_BASE: u64 = 0x2000;
    const X_BASE: u64 = 0x4000;

    /// Drives the access pattern X[Y[Z[i]]] (Z: u64 elems, Y: u64 elems
    /// scale 8, X: byte elems scale 64) through the prefetcher for
    /// iterations 0..n, skipping dependent accesses whose index is out
    /// of bounds — the way verified sandbox code would.
    fn drive(r: &mut Rig, n: u64) {
        let observe = |r: &mut Rig, pc: usize, addr: u64, value: u64, i: u64| {
            r.bus.begin_cycle(i);
            r.imp
                .observe(pc, addr, value, Width::Dword, &r.mem, &mut r.hier, &mut r.bus);
        };
        for i in 0..n {
            let addr_z = Z_BASE + 8 * i;
            let z = r.mem.read_u64(addr_z).unwrap();
            observe(r, Z_PC, addr_z, z, i);
            let addr_y = Y_BASE.wrapping_add(z.wrapping_mul(8));
            let Ok(y) = r.mem.read_u64(addr_y) else {
                continue; // bounds check failed: demand code stops here
            };
            observe(r, Y_PC, addr_y, y, i);
            let addr_x = X_BASE.wrapping_add(y.wrapping_mul(64));
            let Ok(x) = r.mem.read_u64(addr_x) else {
                continue;
            };
            observe(r, X_PC, addr_x, x, i);
        }
    }

    fn seed_arrays(r: &mut Rig, z: &[u64], y: &[u64]) {
        for (i, &v) in z.iter().enumerate() {
            r.mem.write_u64(Z_BASE + 8 * i as u64, v).unwrap();
        }
        for (i, &v) in y.iter().enumerate() {
            r.mem.write_u64(Y_BASE + 8 * i as u64, v).unwrap();
        }
    }

    #[test]
    fn confirms_two_level_chain() {
        let mut r = rig(2);
        seed_arrays(&mut r, &[3, 1, 4, 7, 5, 0, 2, 6], &[23, 5, 71, 13, 47, 2, 90, 31]);
        drive(&mut r, 6);
        let pats = r.imp.confirmed_patterns();
        assert!(
            pats.iter()
                .any(|&(s, d, b, k)| s == Z_PC && d == Y_PC && b == Y_BASE && k == 8),
            "Z→Y pattern with base {Y_BASE:#x} scale 8 should confirm; got {pats:?}"
        );
    }

    #[test]
    fn three_level_prefetches_through_both_indirections() {
        let mut r = rig(3);
        seed_arrays(&mut r, &[3, 1, 4, 7, 5, 0, 2, 6], &[23, 5, 71, 13, 47, 2, 90, 31]);
        r.bus.trace_mut().enable();
        drive(&mut r, 6);
        let l2_prefetches: Vec<u64> = r
            .bus
            .trace()
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::DmpPrefetch { addr, level: 2, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert!(
            !l2_prefetches.is_empty(),
            "3-level IMP must reach the X array"
        );
        for a in l2_prefetches {
            assert!(a >= X_BASE, "X prefetch below X base: {a:#x}");
        }
        assert!(r.bus.stats().dmp_deref_reads > 0);
    }

    #[test]
    fn two_level_never_dereferences_y() {
        let mut r = rig(2);
        seed_arrays(&mut r, &[3, 1, 4, 7, 5, 0, 2, 6], &[23, 5, 71, 13, 47, 2, 90, 31]);
        r.bus.trace_mut().enable();
        drive(&mut r, 6);
        let max_level = r
            .bus
            .trace()
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::DmpPrefetch { level, .. } => Some(level),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert!(max_level <= 1, "2-level IMP must stop at Y");
    }

    #[test]
    fn four_level_chain_reaches_the_w_array() {
        // Ainsworth & Jones's W[X[Y[Z[i]]]] pattern (§IV-D2): with a
        // 4-level prefetcher the chain follows three dereferences.
        let mut r = rig(4);
        const W_PC: usize = 40;
        const W_BASE: u64 = 0x8000;
        seed_arrays(&mut r, &[3, 1, 4, 7, 5, 0, 2, 6], &[23, 5, 71, 13, 47, 2, 90, 31]);
        // X holds bytes indexing W: X[64*y] = small values.
        for y in [23u64, 5, 71, 13, 47, 2, 90, 31] {
            r.mem.write_u64(X_BASE + 64 * y, (y % 7) + 1).unwrap();
        }
        r.bus.trace_mut().enable();
        // Drive the 4-deep demand pattern.
        for i in 0..6u64 {
            let addr_z = Z_BASE + 8 * i;
            let z = r.mem.read_u64(addr_z).unwrap();
            let addr_y = Y_BASE + 8 * z;
            let y = r.mem.read_u64(addr_y).unwrap();
            let addr_x = X_BASE + 64 * y;
            let x = r.mem.read_u64(addr_x).unwrap();
            let addr_w = W_BASE + 8 * x;
            let w = r.mem.read_u64(addr_w).unwrap_or_default();
            for (pc, addr, value) in [
                (Z_PC, addr_z, z),
                (Y_PC, addr_y, y),
                (X_PC, addr_x, x),
                (W_PC, addr_w, w),
            ] {
                r.bus.begin_cycle(i);
                r.imp
                    .observe(pc, addr, value, Width::Dword, &r.mem, &mut r.hier, &mut r.bus);
            }
        }
        let max_level = r
            .bus
            .trace()
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::DmpPrefetch { level, .. } => Some(level),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert_eq!(max_level, 3, "4-level IMP must reach W");
        let w_prefetches = r.bus.trace().events().iter().any(|e| {
            matches!(*e, TraceEvent::DmpPrefetch { addr, level: 3, .. } if addr >= W_BASE)
        });
        assert!(w_prefetches, "a W-array line must be prefetched");
    }

    #[test]
    fn prefetcher_ignores_software_bounds() {
        // The attacker's lever (§V-B2): a huge value in Z steers the Y
        // prefetch to an arbitrary address, even though demand code
        // would have bounds-checked it.
        let mut r = rig(2);
        let target_index = 0x500u64; // Y_BASE + 8*0x500 = 0x4800, out of Y's 8 elements
        seed_arrays(
            &mut r,
            &[3, 1, 4, 7, 5, 0, target_index, 2],
            &[23, 5, 71, 13, 47, 2, 90, 31],
        );
        r.bus.trace_mut().enable();
        drive(&mut r, 5); // prefetch distance 2 → deref reaches Z[6]
        let y_prefetches: Vec<u64> = r
            .bus
            .trace()
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::DmpPrefetch { addr, level: 1, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert!(
            y_prefetches.contains(&(Y_BASE + 8 * target_index)),
            "prefetcher should blindly chase the out-of-bounds index; got {y_prefetches:?}"
        );
    }

    #[test]
    fn out_of_memory_prefetches_are_dropped() {
        let mut r = rig(2);
        // The huge value sits at Z[5], which the Δ=2 prefetch dereferences
        // at iteration 3 (the first confident-stream iteration).
        seed_arrays(&mut r, &[3, 1, 4, 7, 5, 1 << 20, 2, 6], &[23, 5, 71, 13, 47, 2, 90, 31]);
        drive(&mut r, 5);
        assert!(r.bus.stats().dmp_dropped > 0);
    }

    #[test]
    fn no_prefetch_without_stream_confidence() {
        let mut r = rig(2);
        // Random (non-strided) Z addresses: observe directly.
        for (i, addr) in [0x1000u64, 0x1040, 0x1008, 0x1100].into_iter().enumerate() {
            r.bus.begin_cycle(i as u64);
            r.imp
                .observe(Z_PC, addr, 0, Width::Dword, &r.mem, &mut r.hier, &mut r.bus);
        }
        assert_eq!(r.bus.stats().dmp_prefetches, 0);
    }

    #[test]
    fn prefetch_fills_cache() {
        let mut r = rig(2);
        seed_arrays(&mut r, &[3, 1, 4, 7, 5, 0, 2, 6], &[23, 5, 71, 13, 47, 2, 90, 31]);
        drive(&mut r, 6);
        // The stream prefetch for Z[i+Δ] must be resident.
        assert!(r.bus.stats().dmp_prefetches > 0);
        assert!(r.hier.in_l1(Z_BASE + 8 * 7) || r.hier.in_l2(Z_BASE + 8 * 7));
    }
}
