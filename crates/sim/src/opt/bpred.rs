//! Frontend branch prediction: a bimodal 2-bit direction predictor plus
//! a branch target buffer for indirect jumps.
//!
//! Branch prediction is part of the paper's *Baseline* machine (Table I:
//! control flow is already Unsafe via known attacks); it is modelled so
//! that squash timing — which value prediction reuses — is realistic.

use std::collections::HashMap;

/// A 2-bit saturating-counter bimodal direction predictor.
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Capacity-preserving restore (see [`PipelineState::restore_from`]).
    ///
    /// [`PipelineState::restore_from`]: crate::pipeline::PipelineState
    pub(crate) fn restore_from(&mut self, src: &Bimodal) {
        self.counters.clone_from(&src.counters);
        self.mask = src.mask;
    }

    /// Creates a predictor with `entries` counters (power of two),
    /// initialised to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Bimodal {
            counters: vec![1; entries],
            mask: entries - 1,
        }
    }

    /// Predicted direction for the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: usize) -> bool {
        self.counters[pc & self.mask] >= 2
    }

    /// Restores every counter to weakly-not-taken, keeping the table
    /// allocation. Equivalent to a freshly constructed predictor.
    pub fn reset(&mut self) {
        self.counters.fill(1);
    }

    /// Trains the counter for `pc` with the resolved direction.
    pub fn update(&mut self, pc: usize, taken: bool) {
        let c = &mut self.counters[pc & self.mask];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// A branch target buffer mapping an indirect jump's pc to its last
/// observed target.
#[derive(Clone, Debug, Default)]
pub struct Btb {
    targets: HashMap<usize, usize>,
}

impl Btb {
    /// Capacity-preserving restore: `HashMap::clone_from` reuses the
    /// bucket allocation when it already fits.
    pub(crate) fn restore_from(&mut self, src: &Btb) {
        self.targets.clone_from(&src.targets);
    }

    /// Creates an empty BTB.
    #[must_use]
    pub fn new() -> Btb {
        Btb::default()
    }

    /// The predicted target for `pc`, if one has been recorded.
    #[must_use]
    pub fn predict(&self, pc: usize) -> Option<usize> {
        self.targets.get(&pc).copied()
    }

    /// Records the resolved target of the jump at `pc`.
    pub fn update(&mut self, pc: usize, target: usize) {
        self.targets.insert(pc, target);
    }

    /// Forgets every recorded target, keeping the table allocation.
    pub fn reset(&mut self) {
        self.targets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_taken() {
        let mut b = Bimodal::new(16);
        assert!(!b.predict(5), "initialised weakly not-taken");
        b.update(5, true);
        assert!(b.predict(5));
        b.update(5, false);
        b.update(5, false);
        assert!(!b.predict(5));
    }

    #[test]
    fn bimodal_counters_saturate() {
        let mut b = Bimodal::new(16);
        for _ in 0..10 {
            b.update(3, true);
        }
        b.update(3, false);
        assert!(b.predict(3), "one not-taken does not flip a saturated counter");
    }

    #[test]
    fn bimodal_aliases_by_mask() {
        let mut b = Bimodal::new(16);
        b.update(1, true);
        assert!(b.predict(17), "1 and 17 share a counter");
    }

    #[test]
    fn btb_round_trip() {
        let mut t = Btb::new();
        assert_eq!(t.predict(9), None);
        t.update(9, 42);
        assert_eq!(t.predict(9), Some(42));
        t.update(9, 43);
        assert_eq!(t.predict(9), Some(43));
    }
}
