//! A content-directed (pointer-chasing) prefetcher — the *other* data
//! memory-dependent prefetcher family the paper studies (§IV-D2, citing
//! Cooksey et al.'s stateless content-directed prefetching and Roth et
//! al.'s dependence-based prefetching for linked data structures).
//!
//! On every demand-filled line, the prefetcher scans the line's
//! contents for values that *look like pointers* (aligned virtual
//! addresses in bounds) and prefetches the lines they point to. No
//! pattern confirmation is needed: the leak is immediate — **any
//! pointer-shaped value at rest in a touched line has its target line
//! filled**, revealing the value itself through the cache channel,
//! regardless of how (or whether) the program computes on it.

use pandora_isa::Width;

use crate::event::{EventBus, PrefetchSource, SimEvent};
use crate::mem::hierarchy::{Hierarchy, PrefetchFill};
use crate::mem::memory::Memory;

/// The content-directed prefetcher.
#[derive(Clone, Copy, Debug)]
pub struct Cdp {
    line: u64,
    fill: PrefetchFill,
}

impl Cdp {
    /// Creates a CDP scanning `line`-byte lines.
    #[must_use]
    pub fn new(line: usize, fill: PrefetchFill) -> Cdp {
        Cdp {
            line: line as u64,
            fill,
        }
    }

    /// Whether `v` is pointer-shaped for this machine: nonzero, 8-byte
    /// aligned, and inside physical memory.
    #[must_use]
    pub fn looks_like_pointer(v: u64, mem: &Memory) -> bool {
        v != 0 && v.is_multiple_of(8) && mem.contains(v, 8)
    }

    /// Feeds one committed load: scans the loaded line for candidate
    /// pointers and prefetches their targets, reporting each chase
    /// through the event bus.
    pub fn observe(&self, addr: u64, mem: &Memory, hier: &mut Hierarchy, bus: &mut EventBus) {
        let line_base = addr & !(self.line - 1);
        for off in (0..self.line).step_by(8) {
            let Ok(v) = mem.read(line_base + off, Width::Dword) else {
                continue;
            };
            if Cdp::looks_like_pointer(v, mem) {
                hier.prefetch(v, self.fill);
                // Trace-only for the CDP: only the IMP's dereferences
                // feed a stats counter.
                bus.emit_trace_only(|| SimEvent::PointerDeref {
                    source: PrefetchSource::Cdp,
                    addr: line_base + off,
                    value: v,
                });
                bus.emit(SimEvent::Prefetch {
                    source: PrefetchSource::Cdp,
                    addr: v,
                    level: 1,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::cache::CacheConfig;
    use crate::mem::hierarchy::MemLatency;

    fn rig() -> (Memory, Hierarchy, EventBus) {
        (
            Memory::new(1 << 16),
            Hierarchy::new(
                CacheConfig::l1d(),
                CacheConfig::l2(),
                MemLatency::default(),
                3,
            ),
            EventBus::new(),
        )
    }

    #[test]
    fn pointer_shaped_values_get_their_targets_prefetched() {
        let (mut mem, mut hier, mut bus) = rig();
        // A line holding one secret pointer among non-pointers.
        mem.write_u64(0x1000, 0x4321).unwrap(); // unaligned value: not a pointer
        mem.write_u64(0x1008, 0x8000).unwrap(); // the secret pointer
        mem.write_u64(0x1010, 0).unwrap(); // null: not a pointer
        let cdp = Cdp::new(64, PrefetchFill::AllLevels);
        cdp.observe(0x1000, &mem, &mut hier, &mut bus);
        assert!(hier.in_l1(0x8000), "the pointed-to line must be filled");
        assert!(!hier.in_l1(0x4321 & !63), "non-pointer value ignored");
        assert_eq!(bus.stats().cdp_prefetches, 1);
    }

    #[test]
    fn out_of_memory_values_are_not_chased() {
        let (mut mem, mut hier, mut bus) = rig();
        mem.write_u64(0x1000, 1 << 40).unwrap();
        let cdp = Cdp::new(64, PrefetchFill::AllLevels);
        cdp.observe(0x1000, &mem, &mut hier, &mut bus);
        assert_eq!(bus.stats().cdp_prefetches, 0);
    }

    #[test]
    fn scans_the_whole_line_not_just_the_accessed_word() {
        let (mut mem, mut hier, mut bus) = rig();
        mem.write_u64(0x1038, 0x9000).unwrap(); // last word of the line
        let cdp = Cdp::new(64, PrefetchFill::AllLevels);
        cdp.observe(0x1000, &mem, &mut hier, &mut bus);
        assert!(hier.in_l1(0x9000));
    }

    #[test]
    fn pointer_predicate() {
        let mem = Memory::new(4096);
        assert!(Cdp::looks_like_pointer(0x800, &mem));
        assert!(!Cdp::looks_like_pointer(0, &mem));
        assert!(!Cdp::looks_like_pointer(0x801, &mem), "unaligned");
        assert!(!Cdp::looks_like_pointer(1 << 20, &mem), "out of memory");
    }
}
