//! Computation simplification (§IV-B1) and the execution-latency model.
//!
//! This module is the single place that decides how long an operation
//! takes to execute and which functional-unit port it occupies — i.e.,
//! it is where data-dependent timing enters the pipeline. With the
//! optimizations *off* it returns fixed, operand-independent latencies
//! (the constant-time baseline); with them *on* it implements:
//!
//! * **zero/one-skip multiply** — `x*0` and `x*1` bypass the multiplier
//!   (the paper's running example, MLD Example 2),
//! * **multiply strength reduction** — `x * 2^k` becomes a shift, the
//!   §VI-B example of a *continuous optimization* that leaks beyond
//!   control flow ("if one were to apply a strength reduction
//!   optimization based on the value of a specific operand, this would
//!   create a security issue"),
//! * **early-exit divide** — latency grows with the magnitude of the
//!   dividend (Coppens et al.-style early termination),
//! * **divide-to-shift strength reduction** for power-of-two divisors,
//! * **trivial ALU bypass** — `x+0`, `x&0`, `x|0`, `x^0`, `x<<0`, … skip
//!   the ALU port entirely (Yi & Lilja; Islam & Stenström),
//! * **subnormal floating-point slow path** — the classic documented
//!   instance (Andrysco et al.) the paper builds its taxonomy on.

use pandora_isa::{AluOp, FpOp};

use crate::config::{LatencyConfig, OptConfig};

/// The functional-unit port class an operation occupies for a cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortClass {
    /// A simple-ALU port.
    Alu,
    /// The multiply/divide port.
    MulDiv,
    /// The floating-point port.
    Fp,
    /// A load (cache read) port.
    Load,
    /// The store port.
    Store,
    /// No execution port: the operation was simplified away, memoized,
    /// or is a non-executing internal op.
    None,
}

/// What the simplification logic decided about one dynamic operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecPlan {
    /// Cycles from issue to result broadcast (minimum 1).
    pub latency: u64,
    /// Port consumed at issue.
    pub port: PortClass,
    /// Which simplification fired, for statistics.
    pub event: Option<SimplEvent>,
}

/// Statistics tag for a simplification event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimplEvent {
    /// A multiply was skipped due to a 0/1 operand.
    MulSkip,
    /// A multiply by a power of two was strength-reduced to a shift
    /// (§VI-B's continuous-optimization example).
    MulStrengthReduced,
    /// A divide exited early (or was strength-reduced).
    DivEarlyExit,
    /// A trivial ALU operation bypassed the ALU.
    TrivialSkip,
    /// A floating-point op took the subnormal slow path.
    FpSubnormal,
}

/// Whether `v` (as an f64 bit pattern) is subnormal (nonzero with a zero
/// exponent field).
#[must_use]
pub fn is_subnormal_bits(v: u64) -> bool {
    let exp = (v >> 52) & 0x7ff;
    let frac = v & ((1 << 52) - 1);
    exp == 0 && frac != 0
}

/// The number of significant bits in `v` (64 - leading zeros; 0 for 0).
#[must_use]
pub fn significant_bits(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Plans the execution of an integer ALU operation with resolved
/// operand values `a` and `b`.
#[must_use]
pub fn plan_alu(op: AluOp, a: u64, b: u64, lat: &LatencyConfig, opts: &OptConfig) -> ExecPlan {
    if op.is_mul() {
        return plan_mul(a, b, lat, opts);
    }
    if op.is_div() {
        return plan_div(a, b, lat, opts);
    }
    if opts.comp_simpl && is_trivial_alu(op, a, b) {
        return ExecPlan {
            latency: 1,
            port: PortClass::None,
            event: Some(SimplEvent::TrivialSkip),
        };
    }
    ExecPlan {
        latency: lat.alu,
        port: PortClass::Alu,
        event: None,
    }
}

fn plan_mul(a: u64, b: u64, lat: &LatencyConfig, opts: &OptConfig) -> ExecPlan {
    if opts.comp_simpl {
        if a <= 1 || b <= 1 {
            return ExecPlan {
                latency: 1,
                port: PortClass::None,
                event: Some(SimplEvent::MulSkip),
            };
        }
        if a.is_power_of_two() || b.is_power_of_two() {
            // Strength-reduce to a shift: a different unit (the ALU)
            // executes — observable both as latency and as arithmetic
            // port contention, the channel §VI-B points at.
            return ExecPlan {
                latency: lat.alu,
                port: PortClass::Alu,
                event: Some(SimplEvent::MulStrengthReduced),
            };
        }
    }
    ExecPlan {
        latency: lat.mul,
        port: PortClass::MulDiv,
        event: None,
    }
}

fn plan_div(a: u64, b: u64, lat: &LatencyConfig, opts: &OptConfig) -> ExecPlan {
    if opts.comp_simpl {
        if b.is_power_of_two() {
            // Strength-reduce to a shift.
            return ExecPlan {
                latency: lat.alu,
                port: PortClass::Alu,
                event: Some(SimplEvent::DivEarlyExit),
            };
        }
        // Early exit: a digit-serial divider retires bits of the
        // dividend per cycle; latency follows the dividend's magnitude.
        let latency = 3 + u64::from(significant_bits(a)) / 8;
        let event = (latency < lat.div).then_some(SimplEvent::DivEarlyExit);
        return ExecPlan {
            latency,
            port: PortClass::MulDiv,
            event,
        };
    }
    ExecPlan {
        latency: lat.div,
        port: PortClass::MulDiv,
        event: None,
    }
}

/// Plans a floating-point operation on f64 bit patterns.
#[must_use]
pub fn plan_fp(op: FpOp, a: u64, b: u64, lat: &LatencyConfig, opts: &OptConfig) -> ExecPlan {
    if opts.fp_subnormal {
        let result = op.eval(a, b);
        if is_subnormal_bits(a) || is_subnormal_bits(b) || is_subnormal_bits(result) {
            return ExecPlan {
                latency: lat.fp + lat.fp_subnormal_penalty,
                port: PortClass::Fp,
                event: Some(SimplEvent::FpSubnormal),
            };
        }
    }
    ExecPlan {
        latency: lat.fp,
        port: PortClass::Fp,
        event: None,
    }
}

/// Whether the operation produces its result without real computation:
/// identity, annihilator, or zero-shift cases on either operand.
#[must_use]
pub fn is_trivial_alu(op: AluOp, a: u64, b: u64) -> bool {
    match op {
        AluOp::Add => a == 0 || b == 0,
        AluOp::Sub => b == 0,
        AluOp::And => a == 0 || b == 0 || a == u64::MAX || b == u64::MAX,
        AluOp::Or => a == 0 || b == 0 || a == u64::MAX || b == u64::MAX,
        AluOp::Xor => a == 0 || b == 0,
        AluOp::Sll | AluOp::Srl | AluOp::Sra => b & 63 == 0 || a == 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> LatencyConfig {
        LatencyConfig::default()
    }

    fn on() -> OptConfig {
        OptConfig {
            comp_simpl: true,
            fp_subnormal: true,
            ..OptConfig::baseline()
        }
    }

    fn off() -> OptConfig {
        OptConfig::baseline()
    }

    #[test]
    fn baseline_latencies_are_operand_independent() {
        for (a, b) in [(0, 0), (1, 7), (u64::MAX, 3)] {
            let p = plan_alu(AluOp::Mul, a, b, &lat(), &off());
            assert_eq!(p.latency, lat().mul);
            assert_eq!(p.port, PortClass::MulDiv);
            assert_eq!(p.event, None);
            let d = plan_alu(AluOp::Divu, a, b, &lat(), &off());
            assert_eq!(d.latency, lat().div);
        }
    }

    #[test]
    fn zero_skip_multiply() {
        let p = plan_alu(AluOp::Mul, 0, 1234, &lat(), &on());
        assert_eq!(p.latency, 1);
        assert_eq!(p.port, PortClass::None);
        assert_eq!(p.event, Some(SimplEvent::MulSkip));
        let q = plan_alu(AluOp::Mul, 7, 9, &lat(), &on());
        assert_eq!(q.latency, lat().mul);
        assert_eq!(q.event, None);
    }

    #[test]
    fn one_skip_multiply() {
        let p = plan_alu(AluOp::Mul, 99, 1, &lat(), &on());
        assert_eq!(p.event, Some(SimplEvent::MulSkip));
    }

    #[test]
    fn power_of_two_multiply_strength_reduces() {
        let p = plan_alu(AluOp::Mul, 99, 8, &lat(), &on());
        assert_eq!(p.event, Some(SimplEvent::MulStrengthReduced));
        assert_eq!(p.latency, lat().alu);
        assert_eq!(p.port, PortClass::Alu);
        // Non-power-of-two operands take the full multiplier.
        let q = plan_alu(AluOp::Mul, 99, 6, &lat(), &on());
        assert_eq!(q.event, None);
        assert_eq!(q.port, PortClass::MulDiv);
    }

    #[test]
    fn early_exit_divide_scales_with_dividend_magnitude() {
        let small = plan_alu(AluOp::Divu, 0xff, 3, &lat(), &on());
        let big = plan_alu(AluOp::Divu, u64::MAX, 3, &lat(), &on());
        assert!(small.latency < big.latency);
        assert_eq!(big.latency, 3 + 8);
        assert_eq!(small.latency, 3 + 1);
    }

    #[test]
    fn power_of_two_divisor_strength_reduces() {
        let p = plan_alu(AluOp::Divu, 12345, 8, &lat(), &on());
        assert_eq!(p.latency, lat().alu);
        assert_eq!(p.port, PortClass::Alu);
        assert_eq!(p.event, Some(SimplEvent::DivEarlyExit));
    }

    #[test]
    fn trivial_alu_bypass() {
        let p = plan_alu(AluOp::Add, 5, 0, &lat(), &on());
        assert_eq!(p.port, PortClass::None);
        assert_eq!(p.event, Some(SimplEvent::TrivialSkip));
        let q = plan_alu(AluOp::Xor, 5, 6, &lat(), &on());
        assert_eq!(q.port, PortClass::Alu);
    }

    #[test]
    fn trivial_cases_table() {
        assert!(is_trivial_alu(AluOp::And, u64::MAX, 9));
        assert!(is_trivial_alu(AluOp::Or, 9, 0));
        assert!(is_trivial_alu(AluOp::Sll, 9, 64), "shift by 64 == 0 mod 64");
        assert!(!is_trivial_alu(AluOp::Sub, 0, 5), "0 - x is not trivial");
        assert!(!is_trivial_alu(AluOp::Slt, 0, 5));
    }

    #[test]
    fn subnormal_fp_slow_path() {
        let sub = f64::from_bits(1); // smallest subnormal
        let p = plan_fp(FpOp::Mul, sub.to_bits(), 2.0f64.to_bits(), &lat(), &on());
        assert_eq!(p.latency, lat().fp + lat().fp_subnormal_penalty);
        assert_eq!(p.event, Some(SimplEvent::FpSubnormal));
        let q = plan_fp(FpOp::Mul, 1.5f64.to_bits(), 2.0f64.to_bits(), &lat(), &on());
        assert_eq!(q.latency, lat().fp);
    }

    #[test]
    fn subnormal_result_also_slow() {
        // min_positive / 4 is subnormal even though inputs are normal.
        let a = f64::MIN_POSITIVE.to_bits();
        let b = 4.0f64.to_bits();
        let p = plan_fp(FpOp::Div, a, b, &lat(), &on());
        assert_eq!(p.event, Some(SimplEvent::FpSubnormal));
    }

    #[test]
    fn is_subnormal_bits_cases() {
        assert!(!is_subnormal_bits(0), "zero is not subnormal");
        assert!(is_subnormal_bits(1));
        assert!(!is_subnormal_bits(1.0f64.to_bits()));
        assert!(is_subnormal_bits((f64::MIN_POSITIVE / 2.0).to_bits()));
    }

    #[test]
    fn significant_bits_cases() {
        assert_eq!(significant_bits(0), 0);
        assert_eq!(significant_bits(1), 1);
        assert_eq!(significant_bits(0xff), 8);
        assert_eq!(significant_bits(u64::MAX), 64);
    }
}
