//! Register-file compression (§IV-D1; MLD Example 8).
//!
//! After Balakrishnan & Sohi (MICRO'03): when an instruction produces a
//! result whose value is already present in the register file, the
//! physical register allocated at rename is returned to the free pool
//! early, so younger instructions rename sooner. Two match sets are
//! modelled:
//!
//! * [`RfcMatch::ZeroOne`] — only results equal to 0 or 1 compress (the
//!   paper's MLD Example 8 checks `register_file[i] <= 1`),
//! * [`RfcMatch::Any`] — a result equal to any value currently live in
//!   the committed architectural register file compresses.
//!
//! The leakage is *data at rest*: rename pressure — and therefore
//! runtime of register-hungry code — becomes a function of the values
//! sitting in the register file, independent of how they got there.
//!
//! The simulator models the free-list *occupancy* effect precisely
//! without aliasing physical storage: a compressed result releases one
//! rename tag's worth of occupancy immediately (`live_tags` drops; the
//! tag is remembered in `shared_tags`), and the later regular release
//! at commit sees the tag there and skips the second occupancy
//! decrement. The tag's value slot itself is never handed to another
//! producer while a reader may still be in flight — it only re-enters
//! circulation through the pipeline's free-tag list, on the same
//! schedule as an uncompressed tag — so sharing can never corrupt an
//! in-flight reader.

use crate::config::RfcMatch;

/// Decides whether results compress, given a view of the committed
/// architectural register values.
#[derive(Clone, Copy, Debug)]
pub struct RfCompressor {
    match_kind: RfcMatch,
}

impl RfCompressor {
    /// Creates a compressor with the given match set.
    #[must_use]
    pub fn new(match_kind: RfcMatch) -> RfCompressor {
        RfCompressor { match_kind }
    }

    /// Whether a newly produced `result` compresses against the
    /// committed architectural register values `arch_regs`.
    #[must_use]
    pub fn compresses(&self, result: u64, arch_regs: &[u64]) -> bool {
        match self.match_kind {
            RfcMatch::ZeroOne => result <= 1,
            RfcMatch::Any => arch_regs.contains(&result),
        }
    }

    /// The configured match set.
    #[must_use]
    pub fn match_kind(&self) -> RfcMatch {
        self.match_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_one_variant() {
        let c = RfCompressor::new(RfcMatch::ZeroOne);
        let regs = [5u64, 9, 0];
        assert!(c.compresses(0, &regs));
        assert!(c.compresses(1, &regs));
        assert!(!c.compresses(2, &regs));
        assert!(!c.compresses(5, &regs), "5 is live but not in {{0,1}}");
    }

    #[test]
    fn any_variant_matches_live_values() {
        let c = RfCompressor::new(RfcMatch::Any);
        let regs = [5u64, 9, 0];
        assert!(c.compresses(5, &regs));
        assert!(c.compresses(9, &regs));
        assert!(c.compresses(0, &regs));
        assert!(!c.compresses(7, &regs));
    }

    #[test]
    fn any_variant_is_the_stronger_oracle() {
        // The attacker-relevant property: under Any, *whether the victim's
        // result equals a register-resident value* is observable.
        let c = RfCompressor::new(RfcMatch::Any);
        let attacker_planted = [0xdead_beefu64];
        assert!(c.compresses(0xdead_beef, &attacker_planted));
        assert!(!c.compresses(0xdead_bef0, &attacker_planted));
    }
}
