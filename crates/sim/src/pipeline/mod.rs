//! The decomposed out-of-order pipeline: one module per stage.
//!
//! The monolithic `Machine::step` is split into stage modules, each
//! implementing [`PipelineStage`] over the shared [`PipelineState`]:
//!
//! ```text
//!   fetch ─→ rename/dispatch ─→ issue ─→ execute ─→ lsq ─→ commit
//!     ▲                                                      │
//!     └───────────────── squash (ROB-walk undo) ◀────────────┘
//! ```
//!
//! [`crate::Machine::step`] drives the stages **commit-first** (reverse
//! pipeline order) so a result produced in cycle *n* is consumed no
//! earlier than cycle *n + 1*, exactly as the monolith did:
//! commit → lsq → execute → issue → rename → fetch.
//!
//! Stages hold no state of their own — everything lives in
//! [`PipelineState`] — and report cross-cutting observations
//! (statistics, trace, DMP patterns) by emitting
//! [`crate::event::SimEvent`]s on the state's [`EventBus`]. Optimization
//! behavior is injected through [`crate::opt::hook::Hooks`], so the
//! baseline stages contain no per-optimization branches.

use std::collections::VecDeque;

use pandora_isa::{Instr, Program, Reg, Width};

use crate::config::SimConfig;
use crate::error::{DeadlockDiagnostics, SimError};
use crate::event::{EventBus, SimEvent};
use crate::mem::hierarchy::Hierarchy;
use crate::mem::memory::{MemFault, Memory};
use crate::opt::bpred::{Bimodal, Btb};
use crate::opt::comp_simpl::SimplEvent;
use crate::opt::hook::Hooks;
use crate::opt::silent_store::SsState;

pub mod commit;
pub mod execute;
pub mod fetch;
pub mod issue;
pub mod lsq;
pub mod rename;
pub mod squash;

#[cfg(test)]
mod tests;

pub use commit::CommitStage;
pub use execute::ExecuteStage;
pub use fetch::FetchStage;
pub use issue::IssueStage;
pub use lsq::LsqStage;
pub use rename::RenameStage;

pub(crate) type Seq = u64;
pub(crate) type PTag = u32;

/// One stage of the pipeline, ticked once per cycle by
/// [`crate::Machine::step`].
///
/// Stages are stateless schedulers over [`PipelineState`]; optimization
/// behavior reaches them only through the [`Hooks`] argument, and all
/// observation leaves them only as [`crate::event::SimEvent`]s.
pub trait PipelineStage {
    /// A short stable name for diagnostics.
    fn name(&self) -> &'static str;

    /// Advances this stage by one cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the stage detects an abnormal
    /// condition (committed memory fault, broken invariant, exhausted
    /// resource); the machine stops cleanly instead of panicking.
    fn tick(&mut self, st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError>;
}

/// The six stage instances [`crate::Machine`] drives each cycle.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stages {
    /// In-order commit (retires, trains prefetch hooks, frees tags).
    pub commit: CommitStage,
    /// Load/store-queue upkeep: SS-load resolution + store dequeue.
    pub lsq: LsqStage,
    /// Writeback / completion and control-flow verification.
    pub execute: ExecuteStage,
    /// Port-constrained selection of ready uops.
    pub issue: IssueStage,
    /// Rename and dispatch from the fetch buffer into the backend.
    pub rename: RenameStage,
    /// In-order fetch with branch prediction.
    pub fetch: FetchStage,
}

/// Classification of an instruction for dispatch-time bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum UopKind {
    Alu,
    Fp,
    Load,
    Store,
    Branch,
    Jal,
    Jalr,
    Flush,
    RdCycle,
    Li,
    Nop,
    Fence,
    Halt,
}

pub(crate) fn classify(i: &Instr) -> UopKind {
    match i {
        Instr::AluRR { .. } | Instr::AluRI { .. } => UopKind::Alu,
        Instr::Fp { .. } => UopKind::Fp,
        Instr::Li { .. } => UopKind::Li,
        Instr::Load { .. } => UopKind::Load,
        Instr::Store { .. } => UopKind::Store,
        Instr::Branch { .. } => UopKind::Branch,
        Instr::Jal { .. } => UopKind::Jal,
        Instr::Jalr { .. } => UopKind::Jalr,
        Instr::RdCycle { .. } => UopKind::RdCycle,
        Instr::Flush { .. } => UopKind::Flush,
        Instr::Fence => UopKind::Fence,
        Instr::Nop => UopKind::Nop,
        Instr::Halt => UopKind::Halt,
    }
}

/// Fixed-capacity physical source-tag list. No instruction reads more
/// than two registers, so `Uop` carries its tags inline instead of on
/// the heap — renaming and the writeback copy in `execute` stay
/// allocation-free. Derefs to a slice, so indexing and iteration read
/// like the `Vec` it replaced.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SrcTags {
    tags: [PTag; 2],
    len: u8,
}

impl SrcTags {
    pub(crate) fn push(&mut self, tag: PTag) {
        debug_assert!(self.len < 2, "no instruction has more than two sources");
        self.tags[self.len as usize] = tag;
        self.len += 1;
    }
}

impl std::ops::Deref for SrcTags {
    type Target = [PTag];
    fn deref(&self) -> &[PTag] {
        &self.tags[..self.len as usize]
    }
}

/// One in-flight dynamic instruction.
///
/// `Copy`: every field is inline (see [`SrcTags`]), so the writeback
/// path can lift a uop out of the ROB without touching the allocator.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Uop {
    pub(crate) seq: Seq,
    pub(crate) pc: usize,
    pub(crate) instr: Instr,
    pub(crate) kind: UopKind,
    pub(crate) srcs: SrcTags,
    pub(crate) dst: Option<PTag>,
    /// The architectural register this uop redefines and its previous
    /// physical mapping — fuels both commit-time freeing and
    /// squash-time rename undo.
    pub(crate) prev: Option<(Reg, PTag)>,
    pub(crate) in_iq: bool,
    pub(crate) executing: bool,
    pub(crate) done: bool,
    pub(crate) done_cycle: u64,
    pub(crate) result: u64,
    /// Loads/stores: the resolved effective address.
    pub(crate) addr: Option<u64>,
    /// Loads: access width (for DMP training).
    pub(crate) mem_width: Option<Width>,
    pub(crate) fault: Option<MemFault>,
    /// Branches/jalr: the fetch-time predicted next pc.
    pub(crate) pred_target: usize,
    /// Branches/jalr: the resolved next pc.
    pub(crate) actual_target: usize,
    /// Value prediction made at dispatch, if any.
    pub(crate) vp_pred: Option<u64>,
    /// Memo-table insertion info captured at issue on a reuse miss.
    pub(crate) reuse_info: Option<([u64; 2], [Option<Reg>; 2])>,
    /// Simplification event to count when the uop completes.
    pub(crate) simpl_event: Option<SimplEvent>,
}

/// A store-queue entry; lives from dispatch until dequeue (possibly
/// after commit).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SqEntry {
    pub(crate) seq: Seq,
    pub(crate) pc: usize,
    pub(crate) width: Width,
    pub(crate) addr: Option<u64>,
    pub(crate) data: Option<u64>,
    pub(crate) committed: bool,
    pub(crate) ss: SsState,
    pub(crate) performing_until: Option<u64>,
    pub(crate) at_head_traced: bool,
}

/// Everything the pipeline stages read and write: the architectural
/// machine (program, memory, caches), the microarchitectural window
/// (fetch buffer, rename tables, ROB, load/store queues), and the
/// [`EventBus`] all observation flows through.
///
/// Stage modules and optimization hooks share this one struct; its
/// fields are crate-internal, so outside the crate it is an opaque
/// handle whose event bus is reachable via [`PipelineState::bus_mut`].
#[derive(Clone, Debug)]
pub struct PipelineState {
    pub(crate) cfg: SimConfig,
    pub(crate) prog: Program,
    pub(crate) mem: Memory,
    pub(crate) hier: Hierarchy,
    pub(crate) cycle: u64,
    pub(crate) next_seq: Seq,
    pub(crate) halted: bool,

    // Frontend.
    pub(crate) fetch_pc: usize,
    pub(crate) fetch_stall_until: u64,
    pub(crate) fetch_blocked: bool,
    /// (pc, instr, predicted next pc).
    pub(crate) fetch_buf: VecDeque<(usize, Instr, usize)>,
    pub(crate) bimodal: Bimodal,
    pub(crate) btb: Btb,

    // Rename / register state.
    pub(crate) rat: [PTag; Reg::COUNT],
    pub(crate) prf_vals: Vec<u64>,
    pub(crate) prf_ready: Vec<bool>,
    pub(crate) live_tags: usize,
    pub(crate) shared_tags: Vec<PTag>,
    /// Dead physical tags available for reallocation. A tag enters
    /// this list only in [`PipelineState::free_tag`], at which point
    /// no in-flight reader can name it (see the free-list safety note
    /// there), so recycling keeps `prf_vals` bounded by the PRF size
    /// instead of growing per rename.
    pub(crate) free_tags: Vec<PTag>,
    pub(crate) arch_regs: [u64; Reg::COUNT],

    // Backend.
    pub(crate) rob: VecDeque<Uop>,
    pub(crate) iq_count: usize,
    pub(crate) lq: VecDeque<Seq>,
    pub(crate) sq: VecDeque<SqEntry>,
    pub(crate) fences_inflight: usize,

    /// The single sink for stats, trace, and pattern observation.
    pub(crate) bus: EventBus,

    /// Per-cycle scratch for the issue stage (stores whose address
    /// resolved this cycle); hung off the state so steady-state cycles
    /// reuse its capacity instead of allocating.
    pub(crate) store_resolve_scratch: Vec<Seq>,

    /// Earliest cycle at which any in-flight uop can complete; the
    /// execute stage skips its ROB scan entirely while
    /// `cycle < exec_wakeup` (the common case during a long cache
    /// miss). Invariant: anything that makes a uop completable at
    /// cycle *c* must call [`PipelineState::note_exec_wakeup`]`(c)`.
    /// The value is allowed to be stale-*low* (it merely costs a scan
    /// that finds nothing — squashes and dropped completions therefore
    /// need no adjustment), never stale-high. `0` forces a scan.
    pub(crate) exec_wakeup: u64,

    /// Last cycle that committed an instruction or dequeued a store —
    /// the watchdog's notion of forward progress.
    pub(crate) last_progress_cycle: u64,
}

impl PipelineState {
    /// Creates the baseline machine state (zeroed memory/registers, an
    /// identity rename map, empty queues).
    pub(crate) fn new(cfg: SimConfig) -> PipelineState {
        let mut prf_vals = Vec::with_capacity(cfg.pipeline.prf_size);
        let mut prf_ready = Vec::with_capacity(cfg.pipeline.prf_size);
        let mut rat = [0 as PTag; Reg::COUNT];
        for (i, slot) in rat.iter_mut().enumerate() {
            *slot = i as PTag;
            prf_vals.push(0);
            prf_ready.push(true);
        }
        PipelineState {
            mem: Memory::new(cfg.mem_size),
            hier: Hierarchy::new(cfg.l1d, cfg.l2, cfg.mem_latency, cfg.seed),
            cycle: 0,
            next_seq: 0,
            halted: false,
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_blocked: false,
            fetch_buf: VecDeque::new(),
            bimodal: Bimodal::new(1024),
            btb: Btb::new(),
            rat,
            prf_vals,
            prf_ready,
            live_tags: Reg::COUNT,
            shared_tags: Vec::new(),
            free_tags: Vec::new(),
            arch_regs: [0; Reg::COUNT],
            rob: VecDeque::new(),
            iq_count: 0,
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            fences_inflight: 0,
            bus: EventBus::new(),
            store_resolve_scratch: Vec::new(),
            exec_wakeup: 0,
            last_progress_cycle: 0,
            prog: Program::default(),
            cfg,
        }
    }

    /// Rewinds to the post-construction state while keeping every
    /// allocation (PRF vectors, queues, memory backing, cache sets) and
    /// the loaded program. The event bus is cleared and the trace
    /// disabled; caches are reseeded from the configured seed so replay
    /// is deterministic.
    pub(crate) fn reset(&mut self) {
        self.cycle = 0;
        self.next_seq = 0;
        self.halted = false;
        self.fetch_pc = 0;
        self.fetch_stall_until = 0;
        self.fetch_blocked = false;
        self.fetch_buf.clear();
        self.bimodal.reset();
        self.btb.reset();
        self.prf_vals.clear();
        self.prf_ready.clear();
        for (i, slot) in self.rat.iter_mut().enumerate() {
            *slot = i as PTag;
            self.prf_vals.push(0);
            self.prf_ready.push(true);
        }
        self.live_tags = Reg::COUNT;
        self.shared_tags.clear();
        self.free_tags.clear();
        self.arch_regs = [0; Reg::COUNT];
        self.store_resolve_scratch.clear();
        self.exec_wakeup = 0;
        self.rob.clear();
        self.iq_count = 0;
        self.lq.clear();
        self.sq.clear();
        self.fences_inflight = 0;
        self.mem
            .clear(0, self.cfg.mem_size)
            .expect("whole-memory clear is in bounds");
        self.hier.reset(self.cfg.seed);
        self.bus.reset();
        self.last_progress_cycle = 0;
    }

    /// Makes `self` equal to `src` in place, reusing every allocation
    /// the shapes share — the restore half of
    /// [`crate::Machine::restore`]. Memory goes through
    /// [`Memory::restore_from`] so only the dirty prefixes move (and
    /// the write high-water mark travels with the contents); the
    /// vector/deque fields use `clone_from` to keep their capacity.
    ///
    /// The exhaustive destructuring below is deliberate: adding a field
    /// to `PipelineState` without deciding how it restores must be a
    /// compile error, not a silent checkpoint divergence.
    pub(crate) fn restore_from(&mut self, src: &PipelineState) {
        let PipelineState {
            cfg,
            prog,
            mem,
            hier,
            cycle,
            next_seq,
            halted,
            fetch_pc,
            fetch_stall_until,
            fetch_blocked,
            fetch_buf,
            bimodal,
            btb,
            rat,
            prf_vals,
            prf_ready,
            live_tags,
            shared_tags,
            free_tags,
            arch_regs,
            rob,
            iq_count,
            lq,
            sq,
            fences_inflight,
            bus,
            store_resolve_scratch,
            exec_wakeup,
            last_progress_cycle,
        } = src;
        self.cfg = *cfg;
        self.prog.clone_from(prog);
        self.mem.restore_from(mem);
        self.hier.restore_from(hier);
        self.cycle = *cycle;
        self.next_seq = *next_seq;
        self.halted = *halted;
        self.fetch_pc = *fetch_pc;
        self.fetch_stall_until = *fetch_stall_until;
        self.fetch_blocked = *fetch_blocked;
        self.fetch_buf.clone_from(fetch_buf);
        self.bimodal.restore_from(bimodal);
        self.btb.restore_from(btb);
        self.rat = *rat;
        self.prf_vals.clone_from(prf_vals);
        self.prf_ready.clone_from(prf_ready);
        self.live_tags = *live_tags;
        self.shared_tags.clone_from(shared_tags);
        self.free_tags.clone_from(free_tags);
        self.arch_regs = *arch_regs;
        self.rob.clone_from(rob);
        self.iq_count = *iq_count;
        self.lq.clone_from(lq);
        self.sq.clone_from(sq);
        self.fences_inflight = *fences_inflight;
        self.bus.restore_from(bus);
        self.store_resolve_scratch.clone_from(store_resolve_scratch);
        self.exec_wakeup = *exec_wakeup;
        self.last_progress_cycle = *last_progress_cycle;
    }

    /// The current cycle (for hooks that need timing context).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The event bus (read side: stats, trace, patterns).
    #[must_use]
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// The event bus, mutably — how hooks emit [`SimEvent`]s.
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    // ---- Register tag plumbing ---------------------------------------

    pub(crate) fn alloc_tag(&mut self) -> Option<PTag> {
        if self.live_tags >= self.cfg.pipeline.prf_size {
            return None;
        }
        self.live_tags += 1;
        if let Some(tag) = self.free_tags.pop() {
            self.prf_vals[tag as usize] = 0;
            self.prf_ready[tag as usize] = false;
            return Some(tag);
        }
        let tag = self.prf_vals.len() as PTag;
        self.prf_vals.push(0);
        self.prf_ready.push(false);
        Some(tag)
    }

    /// Returns `tag` to the free list.
    ///
    /// Free-list safety: this is called in exactly two places, and in
    /// both the tag is provably dead. (1) Commit frees the *previous*
    /// mapping of the register a retiring uop redefines — every
    /// consumer of that mapping is older than the redefiner, so it has
    /// already executed (read the value) and retired. (2) Squash frees
    /// the destination of a squashed uop — its consumers are younger
    /// and were squashed with it. Register-file-compression shares do
    /// *not* enter the free list at release time: a shared tag stays
    /// readable (only its PRF-occupancy charge is dropped) until the
    /// redefiner's commit lands here and recycles it, so sharing can
    /// never corrupt an in-flight reader.
    pub(crate) fn free_tag(&mut self, tag: PTag) {
        if let Some(i) = self.shared_tags.iter().position(|&t| t == tag) {
            // Already released early by register-file compression.
            self.shared_tags.swap_remove(i);
        } else {
            self.live_tags -= 1;
        }
        self.free_tags.push(tag);
    }

    /// Records that a uop may complete at `done_cycle`; see
    /// [`PipelineState::exec_wakeup`].
    #[inline]
    pub(crate) fn note_exec_wakeup(&mut self, done_cycle: u64) {
        if done_cycle < self.exec_wakeup {
            self.exec_wakeup = done_cycle;
        }
    }

    pub(crate) fn srcs_ready(&self, uop: &Uop) -> bool {
        uop.srcs.iter().all(|&t| self.prf_ready[t as usize])
    }

    pub(crate) fn val(&self, tag: PTag) -> u64 {
        self.prf_vals[tag as usize]
    }

    /// Removes the uop at ROB index `idx` from the issue queue (called
    /// when it starts executing). Double removal is a pipeline bug:
    /// debug builds assert, and paranoid runs surface it as a
    /// structured [`SimError::InvalidState`] instead of silently
    /// corrupting the IQ occupancy count.
    pub(crate) fn leave_iq(&mut self, idx: usize) -> Result<(), SimError> {
        let uop = &mut self.rob[idx];
        debug_assert!(uop.in_iq, "uop left the IQ twice");
        if !uop.in_iq && self.cfg.paranoid_checks {
            let (seq, pc) = (uop.seq, uop.pc);
            return Err(self.invalid_state(format!(
                "uop seq {seq} (pc {pc}) left the issue queue twice"
            )));
        }
        uop.in_iq = false;
        self.iq_count = self.iq_count.saturating_sub(1);
        Ok(())
    }

    /// Cross-checks the redundant pipeline occupancy counters against
    /// the queues they summarize; called once per cycle when
    /// [`SimConfig::paranoid_checks`] is set, so release-mode runs
    /// (CI smoke, `runall`) catch broken invariants as structured
    /// errors instead of silently continuing.
    ///
    /// [`SimConfig::paranoid_checks`]: crate::SimConfig::paranoid_checks
    pub(crate) fn paranoid_validate(&self) -> Result<(), SimError> {
        let in_iq = self.rob.iter().filter(|u| u.in_iq).count();
        if in_iq != self.iq_count {
            return Err(self.invalid_state(format!(
                "iq_count {} disagrees with {} in-IQ uops in the ROB",
                self.iq_count, in_iq
            )));
        }
        if self.iq_count > self.cfg.pipeline.iq_size {
            return Err(self.invalid_state(format!(
                "iq_count {} exceeds iq_size {}",
                self.iq_count, self.cfg.pipeline.iq_size
            )));
        }
        if self.live_tags > self.cfg.pipeline.prf_size {
            return Err(self.invalid_state(format!(
                "live_tags {} exceeds prf_size {}",
                self.live_tags, self.cfg.pipeline.prf_size
            )));
        }
        if self.rob.len() > self.cfg.pipeline.rob_size {
            return Err(self.invalid_state(format!(
                "ROB holds {} uops, capacity {}",
                self.rob.len(),
                self.cfg.pipeline.rob_size
            )));
        }
        Ok(())
    }

    /// Performs a demand access, emits the served-by event, and returns
    /// the access latency.
    pub(crate) fn demand_access(&mut self, addr: u64) -> u64 {
        let acc = self.hier.access(addr);
        self.bus.emit(SimEvent::DemandAccess {
            served_by: acc.served_by,
        });
        acc.latency
    }

    pub(crate) fn invalid_state(&self, context: String) -> SimError {
        SimError::InvalidState {
            context,
            cycle: self.cycle,
        }
    }

    pub(crate) fn deadlock_snapshot(&self) -> DeadlockDiagnostics {
        DeadlockDiagnostics {
            rob_head: self.rob.front().map(|u| (u.seq, u.pc)),
            rob_len: self.rob.len(),
            sq_head: self.sq.front().map(|e| (e.seq, e.pc)),
            sq_len: self.sq.len(),
            lq_len: self.lq.len(),
            live_tags: self.live_tags,
            prf_size: self.cfg.pipeline.prf_size,
            fetch_pc: self.fetch_pc,
            last_progress_cycle: self.last_progress_cycle,
        }
    }
}

pub(crate) fn width_mask(w: Width) -> u64 {
    match w.bytes() {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}
