//! In-order commit: retires up to `commit_width` done uops per cycle.
//!
//! Commit is where speculation becomes architectural: faults surface,
//! renamed values land in the architectural register file, previous
//! physical tags free, and committed loads train the prefetch hooks
//! (the paper's DMP observation point) via
//! [`Hooks::on_commit_load`].

use crate::error::SimError;
use crate::event::SimEvent;
use crate::opt::hook::Hooks;

use super::{PipelineStage, PipelineState, UopKind};

/// The commit stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommitStage;

impl PipelineStage for CommitStage {
    fn name(&self) -> &'static str {
        "commit"
    }

    fn tick(&mut self, st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError> {
        for _ in 0..st.cfg.pipeline.commit_width {
            let Some(head) = st.rob.front() else { break };
            if !head.done {
                break;
            }
            if matches!(head.kind, UopKind::Fence | UopKind::Halt) && !st.sq.is_empty() {
                break; // fences and halt drain the store queue first
            }
            let Some(uop) = st.rob.pop_front() else { break };
            if let Some(fault) = uop.fault {
                return Err(SimError::Mem { fault, pc: uop.pc });
            }
            st.last_progress_cycle = st.cycle;
            match uop.kind {
                UopKind::Halt => {
                    st.halted = true;
                    st.bus.emit(SimEvent::InstrCommitted { pc: uop.pc });
                    return Ok(());
                }
                UopKind::Fence => {
                    st.fences_inflight -= 1;
                    if st.fences_inflight == 0 {
                        st.fetch_blocked = false;
                    }
                }
                UopKind::Store => {
                    if let Some(e) = st.sq.iter_mut().find(|e| e.seq == uop.seq) {
                        e.committed = true;
                    }
                }
                UopKind::Load => {
                    st.lq.retain(|&s| s != uop.seq);
                    hooks.on_commit_load(st, uop.pc, uop.addr, uop.result, uop.mem_width);
                }
                _ => {}
            }
            if let Some((arch, prev)) = uop.prev {
                let Some(dst) = uop.dst else {
                    return Err(st.invalid_state(format!(
                        "committing pc {} renames {arch} but has no \
                         destination tag",
                        uop.pc
                    )));
                };
                st.arch_regs[arch.index()] = st.val(dst);
                st.free_tag(prev);
            }
            st.bus.emit(SimEvent::InstrCommitted { pc: uop.pc });
        }
        Ok(())
    }
}
