//! Fetch: in-order instruction supply with branch prediction.
//!
//! Fills the fetch buffer up to `fetch_width` instructions per cycle,
//! predicting conditional branches with the bimodal table and indirect
//! jumps with the BTB. Fences and halts block further fetch until they
//! commit.

use pandora_isa::Instr;

use crate::error::SimError;
use crate::opt::hook::Hooks;

use super::{PipelineStage, PipelineState};

/// The fetch stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchStage;

impl PipelineStage for FetchStage {
    fn name(&self) -> &'static str {
        "fetch"
    }

    fn tick(&mut self, st: &mut PipelineState, _hooks: &mut Hooks) -> Result<(), SimError> {
        if st.halted || st.fetch_blocked || st.cycle < st.fetch_stall_until {
            return Ok(());
        }
        for _ in 0..st.cfg.pipeline.fetch_width {
            if st.fetch_buf.len() >= 2 * st.cfg.pipeline.dispatch_width.max(4) {
                break;
            }
            let Some(&instr) = st.prog.get(st.fetch_pc) else {
                break;
            };
            let pc = st.fetch_pc;
            match instr {
                Instr::Branch { target, .. } => {
                    let taken = st.bimodal.predict(pc);
                    let next = if taken { target } else { pc + 1 };
                    st.fetch_buf.push_back((pc, instr, next));
                    st.fetch_pc = next;
                    if taken {
                        break;
                    }
                }
                Instr::Jal { target, .. } => {
                    st.fetch_buf.push_back((pc, instr, target));
                    st.fetch_pc = target;
                    break;
                }
                Instr::Jalr { .. } => {
                    let next = st.btb.predict(pc).unwrap_or(pc + 1);
                    st.fetch_buf.push_back((pc, instr, next));
                    st.fetch_pc = next;
                    break;
                }
                Instr::Fence | Instr::Halt => {
                    st.fetch_buf.push_back((pc, instr, pc + 1));
                    st.fetch_pc = pc + 1;
                    st.fetch_blocked = true;
                    break;
                }
                _ => {
                    st.fetch_buf.push_back((pc, instr, pc + 1));
                    st.fetch_pc = pc + 1;
                }
            }
        }
        Ok(())
    }
}
