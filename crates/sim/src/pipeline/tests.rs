//! End-to-end pipeline tests driven through the public [`Machine`] API.

use pandora_isa::{Asm, BranchCond, Reg};

use crate::config::{OptConfig, SimConfig};
use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan};
use crate::machine::Machine;

fn run_prog(cfg: SimConfig, build: impl FnOnce(&mut Asm)) -> Machine {
    let mut a = Asm::new();
    build(&mut a);
    a.halt();
    let p = a.assemble().unwrap();
    let mut m = Machine::new(cfg);
    m.load_program(&p);
    m.run(1_000_000).unwrap();
    m
}

#[test]
fn straight_line_arithmetic() {
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 6);
        a.li(Reg::T1, 7);
        a.mul(Reg::T2, Reg::T0, Reg::T1);
        a.addi(Reg::T2, Reg::T2, 100);
    });
    assert_eq!(m.reg(Reg::T2), 142);
}

#[test]
fn loops_and_branches() {
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 100);
        a.label("l");
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "l");
    });
    assert_eq!(m.reg(Reg::T0), 5050);
}

#[test]
fn memory_store_load_roundtrip() {
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 0xabcd);
        a.sd(Reg::T0, Reg::ZERO, 256);
        a.ld(Reg::T1, Reg::ZERO, 256);
    });
    assert_eq!(m.reg(Reg::T1), 0xabcd);
    assert_eq!(m.mem().read_u64(256).unwrap(), 0xabcd);
}

#[test]
fn store_to_load_forwarding_before_dequeue() {
    // The load must see the in-flight store's data even though the
    // store has not written memory yet.
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 7);
        a.sd(Reg::T0, Reg::ZERO, 64);
        a.ld(Reg::T1, Reg::ZERO, 64);
        a.addi(Reg::T1, Reg::T1, 1);
    });
    assert_eq!(m.reg(Reg::T1), 8);
}

#[test]
fn branch_mispredicts_squash_correctly() {
    // Data-dependent branch pattern the bimodal predictor cannot
    // track perfectly; architectural result must still be exact.
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 0); // acc
        a.li(Reg::T1, 50); // i
        a.label("l");
        a.andi(Reg::T2, Reg::T1, 1);
        a.beqz(Reg::T2, "even");
        a.addi(Reg::T0, Reg::T0, 3);
        a.j("next");
        a.label("even");
        a.addi(Reg::T0, Reg::T0, 5);
        a.label("next");
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "l");
    });
    // 25 odd iterations (+3) and 25 even iterations (+5).
    assert_eq!(m.reg(Reg::T0), 25 * 3 + 25 * 5);
    assert!(m.stats().branch_squashes > 0, "pattern must mispredict");
}

#[test]
fn jalr_via_btb() {
    let m = run_prog(SimConfig::default(), |a| {
        a.jal(Reg::RA, "f");
        a.li(Reg::T1, 1);
        a.j("end");
        a.label("f");
        a.li(Reg::T0, 9);
        a.ret();
        a.label("end");
    });
    assert_eq!(m.reg(Reg::T0), 9);
    assert_eq!(m.reg(Reg::T1), 1);
}

#[test]
fn rdcycle_monotonic() {
    let m = run_prog(SimConfig::default(), |a| {
        a.rdcycle(Reg::T0);
        a.fence();
        a.li(Reg::T2, 10);
        a.label("l");
        a.addi(Reg::T2, Reg::T2, -1);
        a.bnez(Reg::T2, "l");
        a.fence();
        a.rdcycle(Reg::T1);
    });
    assert!(m.reg(Reg::T1) > m.reg(Reg::T0));
}

#[test]
fn fence_drains_store_queue() {
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 5);
        a.sd(Reg::T0, Reg::ZERO, 128);
        a.fence();
        a.rdcycle(Reg::T1);
    });
    // After the fence the store must be in memory.
    assert_eq!(m.mem().read_u64(128).unwrap(), 5);
    assert_eq!(m.stats().performed_stores, 1);
}

#[test]
fn timeout_on_infinite_loop() {
    let mut a = Asm::new();
    a.label("spin");
    a.j("spin");
    let p = a.assemble().unwrap();
    let mut m = Machine::new(SimConfig::default());
    m.load_program(&p);
    assert_eq!(m.run(1000), Err(SimError::Timeout { cycles: 1000 }));
}

#[test]
fn committed_fault_is_reported() {
    let mut a = Asm::new();
    a.li(Reg::T0, 1 << 40);
    a.ld(Reg::T1, Reg::T0, 0);
    a.halt();
    let p = a.assemble().unwrap();
    let mut m = Machine::new(SimConfig::default());
    m.load_program(&p);
    assert!(matches!(m.run(100_000), Err(SimError::Mem { pc: 1, .. })));
}

#[test]
fn wrong_path_fault_is_harmless() {
    // A load behind a mispredicted branch accesses garbage; once the
    // branch resolves the load is squashed and the program finishes.
    let m = run_prog(SimConfig::default(), |a| {
        a.li(Reg::T0, 1 << 40); // wild address
        a.li(Reg::T1, 1);
        a.bnez(Reg::T1, "skip"); // predicted not-taken initially
        a.ld(Reg::T2, Reg::T0, 0); // wrong-path wild load
        a.label("skip");
        a.li(Reg::T3, 77);
    });
    assert_eq!(m.reg(Reg::T3), 77);
}

#[test]
fn silent_store_detected_and_skipped() {
    let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
    let m = run_prog(cfg, |a| {
        a.li(Reg::T0, 42);
        a.sd(Reg::T0, Reg::ZERO, 512); // writes 42
        a.fence();
        a.sd(Reg::T0, Reg::ZERO, 512); // same value: silent
        a.fence();
    });
    assert_eq!(m.stats().silent_stores, 1);
    assert_eq!(m.stats().performed_stores, 1);
    assert_eq!(m.mem().read_u64(512).unwrap(), 42);
}

#[test]
fn non_silent_store_performs() {
    let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
    let m = run_prog(cfg, |a| {
        a.li(Reg::T0, 42);
        a.li(Reg::T1, 43);
        a.sd(Reg::T0, Reg::ZERO, 512);
        a.fence();
        a.sd(Reg::T1, Reg::ZERO, 512); // different value
        a.fence();
    });
    assert_eq!(m.stats().silent_stores, 0);
    assert_eq!(m.mem().read_u64(512).unwrap(), 43);
}

#[test]
fn value_prediction_squashes_on_change() {
    let mut opts = OptConfig::baseline();
    opts.value_pred = true;
    opts.vp_confidence = 2;
    let m = run_prog(SimConfig::with_opts(opts), |a| {
        a.li(Reg::T3, 9);
        a.sd(Reg::T3, Reg::ZERO, 640);
        a.fence();
        a.li(Reg::T1, 16); // loop counter
        a.li(Reg::T6, 8); // iteration at which the value changes
        a.label("l");
        a.ld(Reg::T2, Reg::ZERO, 640); // same static load every iteration
        a.addi(Reg::T1, Reg::T1, -1);
        a.bne(Reg::T1, Reg::T6, "skip");
        // Halfway through, overwrite the loaded location: the next
        // trip around mispredicts the trained value.
        a.li(Reg::T4, 10);
        a.sd(Reg::T4, Reg::ZERO, 640);
        a.fence();
        a.label("skip");
        a.bnez(Reg::T1, "l");
        a.mv(Reg::T5, Reg::T2);
    });
    assert_eq!(m.reg(Reg::T5), 10, "architectural correctness");
    assert!(m.stats().vp_predictions > 0);
    assert!(m.stats().vp_squashes >= 1);
}

#[test]
fn computation_reuse_hits_on_repeat() {
    let mut opts = OptConfig::baseline();
    opts.comp_reuse = true;
    let m = run_prog(SimConfig::with_opts(opts), |a| {
        a.li(Reg::T0, 123);
        a.li(Reg::T1, 77);
        a.li(Reg::T3, 6);
        a.label("l");
        a.mul(Reg::T2, Reg::T0, Reg::T1); // same pc, same operands
        a.addi(Reg::T3, Reg::T3, -1);
        a.bnez(Reg::T3, "l");
    });
    assert_eq!(m.reg(Reg::T2), 123 * 77);
    assert!(m.stats().reuse_hits >= 4, "later iterations memoized");
}

#[test]
fn comp_simpl_changes_mul_timing() {
    let time = |operand: u64| {
        let mut opts = OptConfig::baseline();
        opts.comp_simpl = true;
        let m = run_prog(SimConfig::with_opts(opts), |a| {
            a.li(Reg::T0, operand);
            a.li(Reg::T1, 3);
            a.li(Reg::T3, 200);
            a.label("l");
            // Dependent chain so latency accumulates.
            a.mul(Reg::T1, Reg::T1, Reg::T0);
            a.alui(pandora_isa::AluOp::Or, Reg::T1, Reg::T1, 3);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bnez(Reg::T3, "l");
        });
        m.stats().cycles
    };
    let zero = time(0);
    let nonzero = time(5);
    assert!(
        zero + 100 < nonzero,
        "zero-skip must be clearly faster: {zero} vs {nonzero}"
    );
}

#[test]
fn rfc_reduces_prf_pressure() {
    // Tight PRF: producing many zeros compresses and renames faster.
    let mut cfg = SimConfig::default();
    cfg.pipeline.prf_size = 36;
    let body = |val: u64| {
        move |a: &mut Asm| {
            a.li(Reg::T0, val);
            a.li(Reg::T3, 300);
            a.label("l");
            for rd in [Reg::T1, Reg::T2, Reg::T4, Reg::T5, Reg::S2, Reg::S3] {
                a.alu(pandora_isa::AluOp::And, rd, Reg::T0, Reg::T0);
            }
            a.addi(Reg::T3, Reg::T3, -1);
            a.bnez(Reg::T3, "l");
        }
    };
    let mut on = cfg;
    on.opts.rf_compress = true;
    let compressed = {
        let m = run_prog(on, body(0));
        assert!(m.stats().rfc_shares > 0);
        m.stats().cycles
    };
    let uncompressed = {
        let m = run_prog(on, body(0xdead_beef_cafe));
        m.stats().cycles
    };
    assert!(
        compressed < uncompressed,
        "zero results compress: {compressed} vs {uncompressed}"
    );
}

#[test]
fn branch_cond_variants_execute() {
    for (cond, a_val, b_val, taken) in [
        (BranchCond::Eq, 3u64, 3u64, true),
        (BranchCond::Ne, 3, 3, false),
        (BranchCond::Ltu, 2, 3, true),
        (BranchCond::Geu, 2, 3, false),
    ] {
        let m = run_prog(SimConfig::default(), |asm| {
            asm.li(Reg::T0, a_val);
            asm.li(Reg::T1, b_val);
            asm.branch(cond, Reg::T0, Reg::T1, "yes");
            asm.li(Reg::T2, 1);
            asm.j("end");
            asm.label("yes");
            asm.li(Reg::T2, 2);
            asm.label("end");
        });
        assert_eq!(m.reg(Reg::T2), if taken { 2 } else { 1 }, "{cond:?}");
    }
}

/// Builds a program wedged by a dropped completion: a load's result
/// never arrives, so commit stalls forever while cycles keep
/// ticking — the artificial no-progress case.
fn wedged_machine(cfg: SimConfig) -> Machine {
    let mut a = Asm::new();
    a.li(Reg::T0, 100_000);
    a.label("l");
    a.ld(Reg::T1, Reg::ZERO, 0x100);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "l");
    a.halt();
    let p = a.assemble().unwrap();
    let mut m = Machine::new(cfg);
    m.load_program(&p);
    m.inject_faults(FaultPlan::single(50, FaultKind::DroppedCompletion));
    m
}

#[test]
fn no_progress_yields_deadlock_not_timeout() {
    let mut m = wedged_machine(SimConfig::default());
    let err = m.run(10_000_000).unwrap_err();
    let SimError::Deadlock { cycle, diagnostics } = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert!(
        cycle < 1_000_000,
        "watchdog fired long before the cycle budget (at {cycle})"
    );
    assert!(diagnostics.rob_len > 0, "the wedged uop is still in the ROB");
    assert!(
        cycle - diagnostics.last_progress_cycle >= SimConfig::default().watchdog_cycles.unwrap()
    );
}

#[test]
fn disabled_watchdog_reports_timeout_instead() {
    let cfg = SimConfig {
        watchdog_cycles: None,
        ..SimConfig::default()
    };
    let mut m = wedged_machine(cfg);
    assert_eq!(m.run(30_000), Err(SimError::Timeout { cycles: 30_000 }));
}

#[test]
fn deadlock_diagnostics_render_the_stall_site() {
    let mut m = wedged_machine(SimConfig::default());
    let Err(SimError::Deadlock { diagnostics, .. }) = m.run(10_000_000) else {
        panic!("expected Deadlock");
    };
    let text = diagnostics.to_string();
    assert!(text.contains("rob"), "snapshot names the ROB: {text}");
}

#[test]
fn reset_matches_a_fresh_machine_bit_for_bit() {
    // Run an unrelated program first so every structure (caches,
    // predictors, PRF, memory) carries state, then reset and re-run the
    // reference program. Stats and registers must match a fresh machine
    // exactly — reset must not leak timing state across experiments.
    let build_noise = |a: &mut Asm| {
        a.li(Reg::T0, 99);
        a.li(Reg::T1, 40);
        a.label("l");
        a.sd(Reg::T0, Reg::T1, 0x200);
        a.ld(Reg::T2, Reg::T1, 0x200);
        a.addi(Reg::T1, Reg::T1, -8);
        a.bnez(Reg::T1, "l");
        a.halt();
    };
    let build_ref = |a: &mut Asm| {
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 25);
        a.label("l");
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.sd(Reg::T0, Reg::ZERO, 0x100);
        a.ld(Reg::T2, Reg::ZERO, 0x100);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "l");
        a.halt();
    };
    let assemble = |build: fn(&mut Asm)| {
        let mut a = Asm::new();
        build(&mut a);
        a.assemble().unwrap()
    };
    let noise = assemble(build_noise);
    let reference = assemble(build_ref);

    let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
    let mut fresh = Machine::new(cfg);
    fresh.load_program(&reference);
    let fresh_stats = fresh.run(1_000_000).unwrap();

    let mut reused = Machine::new(cfg);
    reused.load_program(&noise);
    reused.run(1_000_000).unwrap();
    reused.reset();
    reused.load_program(&reference);
    let reused_stats = reused.run(1_000_000).unwrap();

    assert_eq!(fresh_stats, reused_stats, "stats must match bit-for-bit");
    for r in [Reg::T0, Reg::T1, Reg::T2] {
        assert_eq!(fresh.reg(r), reused.reg(r), "{r:?}");
    }
    assert_eq!(
        fresh.mem().read_u64(0x100).unwrap(),
        reused.mem().read_u64(0x100).unwrap()
    );
    assert_eq!(reused.mem().read_u64(0x208).unwrap(), 0, "noise wiped");
}

#[test]
fn reset_keeps_the_loaded_program() {
    let mut a = Asm::new();
    a.li(Reg::T0, 7);
    a.halt();
    let p = a.assemble().unwrap();
    let mut m = Machine::new(SimConfig::default());
    m.load_program(&p);
    m.run(10_000).unwrap();
    assert_eq!(m.reg(Reg::T0), 7);
    m.reset();
    assert_eq!(m.cycle(), 0);
    assert!(!m.is_halted());
    m.run(10_000).unwrap();
    assert_eq!(m.reg(Reg::T0), 7, "same program reruns after reset");
}
