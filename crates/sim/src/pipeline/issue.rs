//! Issue: port-constrained selection of ready uops from the ROB.
//!
//! Walks the ROB oldest-first and issues up to `issue_width` uops whose
//! sources are ready, subject to per-class port budgets. ALU port
//! accounting goes through [`AluSlots`] so the pipeline-compression
//! hook can pack two narrow operations into one port. Stores whose
//! address just resolved get a silent-store check load ("SS-load") on a
//! leftover load port when [`Hooks::silent_stores`] is active (Fig 4
//! A/D vs C).

use crate::error::SimError;
use crate::event::SimEvent;
use crate::opt::hook::Hooks;
use crate::opt::pipe_compress::AluSlots;
use crate::opt::silent_store::SsState;

use super::execute::{issue_flush, issue_store, try_issue_compute, try_issue_load};
use super::{PipelineStage, PipelineState, UopKind};

/// The issue stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct IssueStage;

impl PipelineStage for IssueStage {
    fn name(&self) -> &'static str {
        "issue"
    }

    fn tick(&mut self, st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError> {
        // Nothing waiting in the issue queue: skip the ROB walk. This
        // is observationally identical to running it — no uop can
        // issue, no store can resolve, and the `PackedPairs` emit
        // below would add zero to its counter (it has no trace event).
        if st.iq_count == 0 {
            return Ok(());
        }
        let p = st.cfg.pipeline;
        let mut alu = AluSlots::new(p.alu_ports, hooks.operand_packing());
        let mut muldiv = p.muldiv_ports;
        let mut fp = p.fp_ports;
        let mut loads = p.load_ports;
        let mut stores = p.store_ports;
        let mut issued = 0usize;
        // Scratch buffer owned by `PipelineState` so steady-state
        // cycles never allocate; taken (not borrowed) because the ROB
        // walk below needs `st` mutably. An early `?` return leaves an
        // empty buffer behind, which the next tick simply regrows.
        let mut newly_resolved_stores = std::mem::take(&mut st.store_resolve_scratch);
        newly_resolved_stores.clear();

        // Once every in-IQ uop has been visited the rest of the ROB is
        // all issued/done entries — stop walking. Counted by *visits*
        // (not the live `iq_count`, which `leave_iq` decrements).
        let mut pending = st.iq_count;
        for idx in 0..st.rob.len() {
            if issued >= p.issue_width || pending == 0 {
                break;
            }
            let uop = &st.rob[idx];
            if !uop.in_iq || uop.executing || uop.done {
                continue;
            }
            pending -= 1;
            if !st.srcs_ready(uop) {
                continue;
            }
            let kind = uop.kind;
            match kind {
                UopKind::Load => {
                    if loads == 0 {
                        continue;
                    }
                    if try_issue_load(st, idx) {
                        loads -= 1;
                        issued += 1;
                        st.leave_iq(idx)?;
                    }
                }
                UopKind::Store => {
                    if stores == 0 {
                        continue;
                    }
                    let seq = issue_store(st, idx);
                    newly_resolved_stores.push(seq);
                    stores -= 1;
                    issued += 1;
                    st.leave_iq(idx)?;
                }
                UopKind::Flush => {
                    if loads == 0 {
                        continue;
                    }
                    issue_flush(st, idx);
                    loads -= 1;
                    issued += 1;
                    st.leave_iq(idx)?;
                }
                _ => {
                    if try_issue_compute(st, hooks, idx, &mut alu, &mut muldiv, &mut fp) {
                        issued += 1;
                        st.leave_iq(idx)?;
                    }
                }
            }
        }
        // `PackedPairs` is a pure counter add with no trace event, so
        // a zero-pair cycle (every cycle without the packing hook) can
        // skip the emit without observable difference.
        let pairs = alu.packed_pairs();
        if pairs > 0 {
            st.bus.emit(SimEvent::PackedPairs { pairs });
        }

        // Read-port stealing: stores whose address just resolved get an
        // SS-load if a load port is still free this cycle (Fig 4 A/D vs C).
        if hooks.silent_stores() {
            for &seq in &newly_resolved_stores {
                let Some(e) = st.sq.iter().position(|e| e.seq == seq) else {
                    continue;
                };
                let entry = st.sq[e];
                let Some(addr) = entry.addr else {
                    continue;
                };
                let cycle = st.cycle;
                if entry.ss != SsState::NotChecked {
                    continue;
                }
                if loads == 0 {
                    st.sq[e].ss = SsState::NoPort;
                    st.bus.emit(SimEvent::SsLoadNoPort { pc: entry.pc });
                    continue;
                }
                loads -= 1;
                if !st.mem.contains(addr, entry.width.bytes()) {
                    // A faulting store never performs; skip the check.
                    st.sq[e].ss = SsState::NoPort;
                    continue;
                }
                let latency = st.demand_access(addr);
                st.sq[e].ss = SsState::Outstanding {
                    done_cycle: cycle + latency,
                };
                st.bus.emit(SimEvent::SsLoadIssued { pc: entry.pc, addr });
            }
        }
        st.store_resolve_scratch = newly_resolved_stores;
        Ok(())
    }
}
