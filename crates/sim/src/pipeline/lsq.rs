//! Load/store-queue upkeep: SS-load resolution and store dequeue.
//!
//! Stores dequeue from the store queue in program order and only after
//! their line is present in the L1 (paper §V-A1) — the property the
//! silent-store amplification gadget relies on. Whether a committed
//! store may dequeue *silently* is delegated to
//! [`Hooks::store_dequeue_decision`]; the baseline sends every store to
//! the cache.

use crate::error::SimError;
use crate::event::SimEvent;
use crate::opt::hook::Hooks;
use crate::opt::silent_store::SsState;
use crate::trace::NonSilentReason;

use super::{width_mask, PipelineStage, PipelineState};

/// The load/store-queue stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct LsqStage;

impl PipelineStage for LsqStage {
    fn name(&self) -> &'static str {
        "lsq"
    }

    fn tick(&mut self, st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError> {
        resolve_ss_loads(st);
        dequeue_stores(st, hooks)
    }
}

fn resolve_ss_loads(st: &mut PipelineState) {
    let cycle = st.cycle;
    'entries: for i in 0..st.sq.len() {
        let e = st.sq[i];
        if let SsState::Outstanding { done_cycle } = e.ss {
            if done_cycle <= cycle {
                let (Some(addr), Some(data)) = (e.addr, e.data) else {
                    continue;
                };
                // The SS-load is a load: it observes older in-flight
                // stores through store-to-load forwarding, youngest
                // first. An unresolved or partially overlapping older
                // store defers the check (retried next cycle; the
                // store may end up case D instead).
                let n = e.width.bytes() as u64;
                let mut current: Option<u64> = None;
                for j in (0..i).rev() {
                    let older = st.sq[j];
                    let Some(o_addr) = older.addr else {
                        continue 'entries;
                    };
                    let o_n = older.width.bytes() as u64;
                    let overlap = o_addr < addr + n && addr < o_addr + o_n;
                    if !overlap {
                        continue;
                    }
                    if o_addr == addr && o_n == n {
                        match older.data {
                            Some(d) => {
                                current = Some(d & width_mask(e.width));
                                break;
                            }
                            None => continue 'entries,
                        }
                    }
                    continue 'entries; // partial overlap: defer
                }
                let current = match current {
                    Some(v) => v,
                    None => match st.mem.read(addr, e.width) {
                        Ok(v) => v,
                        Err(_) => continue,
                    },
                };
                let silent = current == data & width_mask(e.width);
                st.sq[i].ss = SsState::Checked { silent };
                st.bus
                    .emit_trace_only(|| SimEvent::SsLoadReturned { pc: e.pc, silent });
            }
        }
    }
}

fn dequeue_stores(st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError> {
    loop {
        let cycle = st.cycle;
        let Some(head) = st.sq.front_mut() else { break };
        if !head.committed {
            break;
        }
        let pc = head.pc;
        if !head.at_head_traced {
            head.at_head_traced = true;
            st.bus.emit_trace_only(|| SimEvent::StoreAtHead { pc });
        }
        if let Some(t) = head.performing_until {
            if cycle >= t {
                let width = head.width;
                let (Some(addr), Some(data)) = (head.addr, head.data) else {
                    return Err(st.invalid_state(format!(
                        "committed store at pc {pc} reached dequeue \
                         without a resolved address/data"
                    )));
                };
                if let Err(fault) = st.mem.write(addr, data, width) {
                    // A faulting store should have stopped at commit;
                    // reaching here means memory changed under us
                    // (e.g. an injected fault) after the bounds check.
                    return Err(st.invalid_state(format!(
                        "committed store at pc {pc} faulted at \
                         dequeue: {fault}"
                    )));
                }
                st.sq.pop_front();
                st.last_progress_cycle = cycle;
                st.bus.emit(SimEvent::StoreDequeued { pc });
                // One performed store completes per cycle.
                break;
            }
            break;
        }
        let decision = hooks.store_dequeue_decision(head.ss).unwrap_or_else(|| {
            head.ss
                .dequeue_decision()
                .and(Err(NonSilentReason::NoLoadPort))
        });
        match decision {
            Ok(()) => {
                st.sq.pop_front();
                st.last_progress_cycle = cycle;
                st.bus.emit(SimEvent::StoreSilentDequeue { pc });
                // Consecutive silent stores dequeue in the same cycle.
            }
            Err(reason) => {
                let Some(addr) = head.addr else {
                    return Err(st.invalid_state(format!(
                        "committed store at pc {pc} has no resolved \
                         address at dequeue"
                    )));
                };
                let latency = st.demand_access(addr);
                let Some(head) = st.sq.front_mut() else {
                    return Err(st.invalid_state(format!(
                        "store queue emptied while the head store \
                         (pc {pc}) was being sent to the cache"
                    )));
                };
                head.performing_until = Some(cycle + latency);
                st.bus.emit(SimEvent::StoreSentToCache { pc, reason });
                break;
            }
        }
    }
    Ok(())
}
