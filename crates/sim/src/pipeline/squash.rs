//! Squash: ROB-walk rename undo and fetch redirect.
//!
//! Recovery from branch and value mispredictions (and the
//! spurious-squash fault) walks the ROB from the tail, undoing renames
//! and queue allocations, so any instruction can be a squash point
//! without checkpoints.

use crate::event::{SimEvent, SquashReason};

use super::{PipelineState, Seq, UopKind};

/// Squashes every uop younger than `seq` and redirects fetch to
/// `redirect`, undoing renames by walking the ROB from the tail.
pub(crate) fn squash_after(st: &mut PipelineState, seq: Seq, redirect: usize, reason: SquashReason) {
    squash_newer_than(st, Some(seq), redirect, reason);
}

/// Squashes every uop younger than `keep_upto` (all of them when
/// `None` — the spurious-squash fault uses this to flush the whole
/// window), redirecting fetch to `redirect`.
pub(crate) fn squash_newer_than(
    st: &mut PipelineState,
    keep_upto: Option<Seq>,
    redirect: usize,
    reason: SquashReason,
) {
    let cycle = st.cycle;
    while let Some(tail) = st.rob.back() {
        if keep_upto.is_some_and(|seq| tail.seq <= seq) {
            break;
        }
        let Some(uop) = st.rob.pop_back() else { break };
        if uop.in_iq {
            st.iq_count -= 1;
        }
        if let Some((arch, prev)) = uop.prev {
            st.rat[arch.index()] = prev;
        }
        if let Some(dst) = uop.dst {
            st.free_tag(dst);
        }
        match uop.kind {
            UopKind::Load => st.lq.retain(|&s| s != uop.seq),
            UopKind::Store => st.sq.retain(|e| e.seq != uop.seq),
            UopKind::Fence => {
                st.fences_inflight -= 1;
            }
            _ => {}
        }
    }
    st.fetch_buf.clear();
    st.fetch_pc = redirect;
    st.fetch_stall_until = cycle + st.cfg.pipeline.redirect_penalty;
    st.fetch_blocked = st.fences_inflight > 0;
    st.bus.emit(SimEvent::Squash { reason, redirect });
}
