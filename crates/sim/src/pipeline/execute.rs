//! Execution and writeback: completing uops broadcast results, verify
//! control flow, and feed the writeback-time optimization hooks
//! (memo insert, value-prediction verify, register-file compression).
//!
//! The per-uop execution helpers (`try_issue_load`, `issue_store`,
//! `issue_flush`, `try_issue_compute`) live here too; the issue stage
//! calls them once it has selected a uop and a port.

use pandora_isa::{Instr, Reg};

use crate::error::SimError;
use crate::event::{SimEvent, SquashReason};
use crate::func::sign_extend;
use crate::mem::memory::MemFault;
use crate::opt::comp_simpl::{plan_alu, plan_fp, ExecPlan, PortClass};
use crate::opt::hook::{Hooks, MemoLookup};
use crate::opt::pipe_compress::{packable, AluSlots};

use crate::config::OptConfig;

use super::squash::squash_after;
use super::{PipelineStage, PipelineState, Seq, UopKind};

/// The writeback/completion stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecuteStage;

impl PipelineStage for ExecuteStage {
    fn name(&self) -> &'static str {
        "execute"
    }

    fn tick(&mut self, st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError> {
        let cycle = st.cycle;
        // Nothing in flight can complete yet (the common case while a
        // long cache miss is outstanding): skip the ROB scan. The
        // issue stage lowers `exec_wakeup` for every uop it starts.
        if cycle < st.exec_wakeup {
            return Ok(());
        }
        // One forward pass. This matches the old
        // restart-`position`-from-0 loop cycle-for-cycle: writing back
        // a uop never makes an *older* uop completable (their
        // `done_cycle`s are already set), and a squash only removes
        // *younger* entries — everything at or before the current
        // index survives untouched.
        let mut next_wakeup = u64::MAX;
        let mut idx = 0;
        while idx < st.rob.len() {
            {
                let u = &st.rob[idx];
                if !u.executing || u.done {
                    idx += 1;
                    continue;
                }
                if u.done_cycle > cycle {
                    next_wakeup = next_wakeup.min(u.done_cycle);
                    idx += 1;
                    continue;
                }
            }
            let seq = st.rob[idx].seq;
            // Mark complete and broadcast the result.
            {
                let uop = &mut st.rob[idx];
                uop.done = true;
                uop.executing = false;
            }
            // `Uop` is `Copy` (inline source tags), so lifting it out
            // of the ROB costs a memcpy, not a heap clone.
            let uop = st.rob[idx];
            if let Some(dst) = uop.dst {
                st.prf_vals[dst as usize] = uop.result;
                st.prf_ready[dst as usize] = true;
            }
            if let Some(ev) = uop.simpl_event {
                st.bus.emit(SimEvent::Simplified(ev));
            }
            if let Some((vals, srcs)) = uop.reuse_info {
                // Insert-after-invalidate hazard, Sn only: a younger
                // in-flight instruction may already have redefined one
                // of this entry's source registers — its rename-time
                // invalidation ran before this insert, so inserting now
                // would resurrect a stale register binding. (Sv keys on
                // operand *values*, which are correct by construction.)
                let rob = &st.rob;
                hooks.memo_insert(uop.pc, vals, srcs, uop.result, &mut |s| {
                    rob.iter().any(|u| {
                        u.seq > seq && matches!(u.prev, Some((r, _)) if s.contains(&Some(r)))
                    })
                });
            }
            // Register-file compression: early tag release.
            if let Some(dst) = uop.dst {
                if !st.shared_tags.contains(&dst) && hooks.rfc_compresses(uop.result, &st.arch_regs)
                {
                    st.shared_tags.push(dst);
                    st.live_tags -= 1;
                    st.bus.emit(SimEvent::RfcShared);
                }
            }
            // Control-flow verification.
            match uop.kind {
                UopKind::Branch => {
                    if let Instr::Branch { .. } = uop.instr {
                        st.bimodal.update(uop.pc, uop.actual_target != uop.pc + 1);
                    }
                    if uop.actual_target != uop.pred_target {
                        squash_after(st, seq, uop.actual_target, SquashReason::Branch);
                        continue;
                    }
                }
                UopKind::Jalr => {
                    st.btb.update(uop.pc, uop.actual_target);
                    if uop.actual_target != uop.pred_target {
                        squash_after(st, seq, uop.actual_target, SquashReason::Branch);
                        continue;
                    }
                }
                UopKind::Load if uop.fault.is_none() => {
                    hooks.on_load_writeback(uop.pc, uop.result);
                    if let Some(pred) = uop.vp_pred {
                        if pred == uop.result {
                            st.bus.emit(SimEvent::ValueConfirmed { pc: uop.pc });
                        } else {
                            squash_after(st, seq, uop.pc + 1, SquashReason::Value);
                            continue;
                        }
                    }
                }
                _ => {}
            }
        }
        // Entries issued later this cycle lower this via
        // `note_exec_wakeup`; a squash can only leave it stale-low,
        // which is harmless (see the field's invariant).
        st.exec_wakeup = next_wakeup;
        Ok(())
    }
}

/// Attempts to execute the load at ROB index `idx`. Returns whether
/// it issued (false = blocked on an older store, retry next cycle).
pub(crate) fn try_issue_load(st: &mut PipelineState, idx: usize) -> bool {
    let uop = &st.rob[idx];
    let Instr::Load {
        base: _,
        offset,
        width,
        signed,
        ..
    } = uop.instr
    else {
        unreachable!("load uop holds a load instruction");
    };
    let addr = st.val(uop.srcs[0]).wrapping_add(offset as u64);
    let seq = uop.seq;
    let n = width.bytes() as u64;

    // Scan older stores, youngest first.
    let mut forwarded: Option<u64> = None;
    for e in st.sq.iter().rev() {
        if e.seq >= seq {
            continue;
        }
        let Some(st_addr) = e.addr else {
            return false; // unknown older store address: wait
        };
        let st_n = e.width.bytes() as u64;
        let overlap = st_addr < addr + n && addr < st_addr + st_n;
        if !overlap {
            continue;
        }
        if st_addr == addr && st_n == n {
            match e.data {
                Some(d) => {
                    forwarded = Some(d & super::width_mask(width));
                    break;
                }
                None => return false, // data not ready yet
            }
        } else {
            return false; // partial overlap: wait for the store to drain
        }
    }

    let cycle = st.cycle;
    let (value, latency, fault) = if let Some(v) = forwarded {
        (v, 1, None)
    } else if !st.mem.contains(addr, width.bytes()) {
        (
            0,
            1,
            Some(MemFault {
                addr,
                len: width.bytes(),
            }),
        )
    } else {
        let latency = st.demand_access(addr);
        match st.mem.read(addr, width) {
            Ok(raw) => (raw, latency, None),
            // `contains` passed just above, so this only happens if
            // memory shrank under us; surface it as a load fault
            // (reported at commit) rather than aborting.
            Err(fault) => (0, 1, Some(fault)),
        }
    };
    let value = if signed {
        sign_extend(value, width.bytes())
    } else {
        value
    };
    let uop = &mut st.rob[idx];
    uop.executing = true;
    uop.done_cycle = cycle + latency;
    uop.result = value;
    uop.addr = Some(addr);
    uop.mem_width = Some(width);
    uop.fault = fault;
    st.note_exec_wakeup(cycle + latency);
    true
}

/// Executes the store at ROB index `idx` (address + data capture).
pub(crate) fn issue_store(st: &mut PipelineState, idx: usize) -> Seq {
    let uop = &st.rob[idx];
    let Instr::Store { offset, width, .. } = uop.instr else {
        unreachable!("store uop holds a store instruction");
    };
    let addr = st.val(uop.srcs[0]).wrapping_add(offset as u64);
    let data = st.val(uop.srcs[1]);
    let seq = uop.seq;
    let cycle = st.cycle;
    let fault = (!st.mem.contains(addr, width.bytes())).then_some(MemFault {
        addr,
        len: width.bytes(),
    });
    if let Some(e) = st.sq.iter_mut().find(|e| e.seq == seq) {
        e.addr = Some(addr);
        e.data = Some(data);
    }
    let uop = &mut st.rob[idx];
    uop.executing = true;
    uop.done_cycle = cycle + 1;
    uop.addr = Some(addr);
    uop.fault = fault;
    let pc = uop.pc;
    st.note_exec_wakeup(cycle + 1);
    st.bus.emit_trace_only(|| SimEvent::StoreResolved { pc, addr });
    seq
}

/// Executes the flush at ROB index `idx`.
pub(crate) fn issue_flush(st: &mut PipelineState, idx: usize) {
    let uop = &st.rob[idx];
    let Instr::Flush { offset, .. } = uop.instr else {
        unreachable!("flush uop holds a flush instruction");
    };
    let addr = st.val(uop.srcs[0]).wrapping_add(offset as u64);
    st.hier.flush_line(addr);
    let cycle = st.cycle;
    let uop = &mut st.rob[idx];
    uop.executing = true;
    uop.done_cycle = cycle + 2;
    st.note_exec_wakeup(cycle + 2);
}

/// Issues a non-memory uop if a port is available.
pub(crate) fn try_issue_compute(
    st: &mut PipelineState,
    hooks: &mut Hooks,
    idx: usize,
    alu: &mut AluSlots,
    muldiv: &mut usize,
    fp: &mut usize,
) -> bool {
    let (instr, pc, srcs, pred_target, kind) = {
        let uop = &st.rob[idx];
        (
            uop.instr,
            uop.pc,
            uop.srcs,
            uop.pred_target,
            uop.kind,
        )
    };
    let lat = st.cfg.latency;
    // The hookless fallback plan: fixed latencies, no simplification.
    let base_opts = OptConfig {
        comp_simpl: false,
        fp_subnormal: false,
        ..st.cfg.opts
    };
    let cycle = st.cycle;

    // Resolve operand values and the execution plan.
    #[allow(clippy::type_complexity)]
    let (plan, result, actual_target, reuse_info, reuse_hit): (
        ExecPlan,
        u64,
        usize,
        Option<([u64; 2], [Option<Reg>; 2])>,
        bool,
    ) = match instr {
        Instr::AluRR { op, rs1, rs2, .. } => {
            let (a, b) = (st.val(srcs[0]), st.val(srcs[1]));
            let regs = [Some(rs1), Some(rs2)];
            let base_eligible = op.is_mul() || op.is_div();
            let (plan, r, info, hit) = plan_reusable(
                hooks,
                pc,
                a,
                b,
                regs,
                base_eligible,
                || op.eval(a, b),
                |hooks, a, b| {
                    hooks
                        .plan_alu(op, a, b)
                        .unwrap_or_else(|| plan_alu(op, a, b, &lat, &base_opts))
                },
            );
            (plan, r, 0, info, hit)
        }
        Instr::AluRI { op, imm, rs1, .. } => {
            let (a, b) = (st.val(srcs[0]), imm as u64);
            let regs = [Some(rs1), None];
            let base_eligible = op.is_mul() || op.is_div();
            let (plan, r, info, hit) = plan_reusable(
                hooks,
                pc,
                a,
                b,
                regs,
                base_eligible,
                || op.eval(a, b),
                |hooks, a, b| {
                    hooks
                        .plan_alu(op, a, b)
                        .unwrap_or_else(|| plan_alu(op, a, b, &lat, &base_opts))
                },
            );
            (plan, r, 0, info, hit)
        }
        Instr::Fp { op, rs1, rs2, .. } => {
            let (a, b) = (st.val(srcs[0]), st.val(srcs[1]));
            let regs = [Some(rs1), Some(rs2)];
            let (plan, r, info, hit) = plan_reusable(
                hooks,
                pc,
                a,
                b,
                regs,
                true,
                || op.eval(a, b),
                |hooks, a, b| {
                    hooks
                        .plan_fp(op, a, b)
                        .unwrap_or_else(|| plan_fp(op, a, b, &lat, &base_opts))
                },
            );
            (plan, r, 0, info, hit)
        }
        Instr::Li { imm, .. } => (
            ExecPlan {
                latency: 1,
                port: PortClass::None,
                event: None,
            },
            imm,
            0,
            None,
            false,
        ),
        Instr::RdCycle { .. } => (
            ExecPlan {
                latency: 1,
                port: PortClass::None,
                event: None,
            },
            // The noise hook may coarsen/jitter the reading.
            hooks.read_cycle(cycle).unwrap_or(cycle),
            0,
            None,
            false,
        ),
        Instr::Jal { .. } => (
            ExecPlan {
                latency: 1,
                port: PortClass::None,
                event: None,
            },
            (pc + 1) as u64,
            pred_target,
            None,
            false,
        ),
        Instr::Jalr { offset, .. } => {
            let target = st.val(srcs[0]).wrapping_add(offset as u64) as usize;
            (
                ExecPlan {
                    latency: 1,
                    port: PortClass::Alu,
                    event: None,
                },
                (pc + 1) as u64,
                target,
                None,
                false,
            )
        }
        Instr::Branch { cond, target, .. } => {
            let (a, b) = (st.val(srcs[0]), st.val(srcs[1]));
            let taken = cond.eval(a, b);
            (
                ExecPlan {
                    latency: 1,
                    port: PortClass::Alu,
                    event: None,
                },
                0,
                if taken { target } else { pc + 1 },
                None,
                false,
            )
        }
        _ => unreachable!("memory and system uops are issued elsewhere"),
    };

    // Port availability.
    let narrow = match instr {
        Instr::AluRR { .. } => packable(st.val(srcs[0]), st.val(srcs[1])),
        Instr::AluRI { imm, .. } => packable(st.val(srcs[0]), imm as u64),
        _ => false,
    };
    match plan.port {
        PortClass::Alu => {
            if !alu.take(narrow && matches!(kind, UopKind::Alu)) {
                return false;
            }
        }
        PortClass::MulDiv => {
            if *muldiv == 0 {
                return false;
            }
            *muldiv -= 1;
        }
        PortClass::Fp => {
            if *fp == 0 {
                return false;
            }
            *fp -= 1;
        }
        PortClass::None => {}
        PortClass::Load | PortClass::Store => {
            unreachable!("memory ports handled in issue()")
        }
    }

    if reuse_hit {
        st.bus.emit(SimEvent::ReuseLookup { hit: true });
    } else if reuse_info.is_some() {
        st.bus.emit(SimEvent::ReuseLookup { hit: false });
    }
    let uop = &mut st.rob[idx];
    uop.executing = true;
    uop.done_cycle = cycle + plan.latency.max(1);
    uop.result = result;
    uop.actual_target = actual_target;
    uop.reuse_info = reuse_info;
    uop.simpl_event = plan.event;
    st.note_exec_wakeup(cycle + plan.latency.max(1));
    true
}

/// Wraps plan construction with the computation-reuse memo lookup
/// ([`Hooks::memo_lookup`]). The last tuple element reports a memo
/// hit; hit/miss statistics are accounted by the caller once the uop
/// actually issues (a port-blocked uop retries and must not
/// double-count).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn plan_reusable(
    hooks: &mut Hooks,
    pc: usize,
    a: u64,
    b: u64,
    srcs: [Option<Reg>; 2],
    base_eligible: bool,
    eval: impl FnOnce() -> u64,
    plan: impl FnOnce(&mut Hooks, u64, u64) -> ExecPlan,
) -> (ExecPlan, u64, Option<([u64; 2], [Option<Reg>; 2])>, bool) {
    match hooks.memo_lookup(pc, [a, b], srcs, base_eligible) {
        MemoLookup::Hit(result) => (
            ExecPlan {
                latency: 1,
                port: PortClass::None,
                event: None,
            },
            result,
            None,
            true,
        ),
        looked => {
            let p = plan(hooks, a, b);
            let r = eval();
            (
                p,
                r,
                matches!(looked, MemoLookup::Miss).then_some(([a, b], srcs)),
                false,
            )
        }
    }
}
