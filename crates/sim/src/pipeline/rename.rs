//! Rename/dispatch: moves fetched instructions into the backend.
//!
//! Allocates a physical destination tag, records the previous mapping
//! for squash undo, and claims ROB/IQ/LQ/SQ slots. Optimization hooks
//! intercept at two points: [`Hooks::on_rename`] (computation-reuse
//! invalidation) and [`Hooks::predict_load`] (value prediction).

use pandora_isa::Instr;

use crate::error::SimError;
use crate::event::{SimEvent, StallReason};
use crate::opt::hook::Hooks;
use crate::opt::silent_store::SsState;

use super::{classify, PipelineStage, PipelineState, SqEntry, SrcTags, Uop, UopKind};

/// The rename/dispatch stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct RenameStage;

impl PipelineStage for RenameStage {
    fn name(&self) -> &'static str {
        "rename"
    }

    fn tick(&mut self, st: &mut PipelineState, hooks: &mut Hooks) -> Result<(), SimError> {
        let p = st.cfg.pipeline;
        for _ in 0..p.dispatch_width {
            let Some(&(pc, instr, pred_target)) = st.fetch_buf.front() else {
                break;
            };
            if st.rob.len() >= p.rob_size {
                st.bus.emit(SimEvent::DispatchStall {
                    reason: StallReason::Backend,
                });
                break;
            }
            let kind = classify(&instr);
            let needs_iq = !matches!(kind, UopKind::Nop | UopKind::Fence | UopKind::Halt);
            if needs_iq && st.iq_count >= p.iq_size {
                st.bus.emit(SimEvent::DispatchStall {
                    reason: StallReason::Backend,
                });
                break;
            }
            match kind {
                UopKind::Load if st.lq.len() >= p.lq_size => {
                    st.bus.emit(SimEvent::DispatchStall {
                        reason: StallReason::Backend,
                    });
                    break;
                }
                UopKind::Store if st.sq.len() >= p.sq_size => {
                    st.bus.emit(SimEvent::DispatchStall {
                        reason: StallReason::SqFull,
                    });
                    break;
                }
                _ => {}
            }
            let dest = instr.dest();
            if dest.is_some() && st.live_tags >= p.prf_size {
                st.bus.emit(SimEvent::DispatchStall {
                    reason: StallReason::RenamePrf,
                });
                break;
            }

            // All resources available: rename and dispatch.
            st.fetch_buf.pop_front();
            let (src_regs, n_srcs) = instr.source_pair();
            let mut srcs = SrcTags::default();
            for r in &src_regs[..n_srcs] {
                srcs.push(st.rat[r.index()]);
            }
            let (dst, prev) = match dest {
                Some(rd) => {
                    let Some(tag) = st.alloc_tag() else {
                        // Gated on live_tags < prf_size above, so the
                        // free list can only be empty if tag accounting
                        // was corrupted.
                        return Err(SimError::ResourceExhausted {
                            resource: format!("physical register file ({} tags)", p.prf_size),
                            cycle: st.cycle,
                        });
                    };
                    let prev = st.rat[rd.index()];
                    st.rat[rd.index()] = tag;
                    hooks.on_rename(rd);
                    (Some(tag), Some((rd, prev)))
                }
                None => (None, None),
            };
            let seq = st.next_seq;
            st.next_seq += 1;

            let mut uop = Uop {
                seq,
                pc,
                instr,
                kind,
                srcs,
                dst,
                prev,
                in_iq: needs_iq,
                executing: false,
                done: !needs_iq,
                done_cycle: st.cycle,
                result: 0,
                addr: None,
                mem_width: None,
                fault: None,
                pred_target,
                actual_target: 0,
                vp_pred: None,
                reuse_info: None,
                simpl_event: None,
            };

            match kind {
                UopKind::Load => {
                    st.lq.push_back(seq);
                    if let Some(pred) = hooks.predict_load(pc) {
                        let Some(dst) = uop.dst else {
                            return Err(st.invalid_state(format!(
                                "load at pc {pc} dispatched without a \
                                 destination tag"
                            )));
                        };
                        let tag = dst as usize;
                        st.prf_vals[tag] = pred;
                        st.prf_ready[tag] = true;
                        uop.vp_pred = Some(pred);
                        st.bus.emit(SimEvent::ValuePredicted { pc });
                    }
                }
                UopKind::Store => {
                    let Instr::Store { width, .. } = instr else {
                        unreachable!("store kind");
                    };
                    st.sq.push_back(SqEntry {
                        seq,
                        pc,
                        width,
                        addr: None,
                        data: None,
                        committed: false,
                        ss: SsState::NotChecked,
                        performing_until: None,
                        at_head_traced: false,
                    });
                }
                UopKind::Fence => {
                    st.fences_inflight += 1;
                }
                _ => {}
            }
            if needs_iq {
                st.iq_count += 1;
            }
            st.rob.push_back(uop);
        }
        Ok(())
    }
}
