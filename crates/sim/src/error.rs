//! Simulation error taxonomy.
//!
//! Every abnormal run outcome is reported through [`SimError`] — there
//! are no internal panics on malformed programs or injected faults —
//! so retrying harnesses ([`pandora_channels`-style calibration and
//! attack drivers]) can recover, log, and retry instead of aborting
//! the process.
//!
//! [`pandora_channels`-style calibration and attack drivers]: SimError

use std::error::Error;
use std::fmt;

use crate::mem::memory::MemFault;

/// The pipeline snapshot captured when the deadlock watchdog fires —
/// enough to see *what* wedged without re-running under a tracer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeadlockDiagnostics {
    /// The ROB head's (sequence number, pc) — the instruction commit is
    /// stuck behind — if the ROB is nonempty.
    pub rob_head: Option<(u64, usize)>,
    /// Reorder-buffer occupancy.
    pub rob_len: usize,
    /// The store-queue head's (sequence number, pc), if any.
    pub sq_head: Option<(u64, usize)>,
    /// Store-queue occupancy.
    pub sq_len: usize,
    /// Load-queue occupancy.
    pub lq_len: usize,
    /// Live physical register tags (free list occupancy is
    /// `prf_size - live_tags`).
    pub live_tags: usize,
    /// Configured physical register file size.
    pub prf_size: usize,
    /// Where fetch was pointing.
    pub fetch_pc: usize,
    /// The last cycle that committed an instruction or dequeued a
    /// store.
    pub last_progress_cycle: u64,
}

impl fmt::Display for DeadlockDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rob={}{} sq={}{} lq={} prf={}/{} fetch_pc={} last_progress={}",
            self.rob_len,
            self.rob_head
                .map(|(s, pc)| format!(" (head seq {s} pc {pc})"))
                .unwrap_or_default(),
            self.sq_len,
            self.sq_head
                .map(|(s, pc)| format!(" (head seq {s} pc {pc})"))
                .unwrap_or_default(),
            self.lq_len,
            self.live_tags,
            self.prf_size,
            self.fetch_pc,
            self.last_progress_cycle,
        )
    }
}

/// Why a simulation run stopped abnormally.
///
/// Every abnormal outcome — including pipeline states that earlier
/// revisions treated as internal panics — is reported through this
/// enum, so harnesses driving adversarial or fault-injected programs
/// can recover, log, and retry instead of aborting the process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle budget ran out before `halt` committed (the machine
    /// was still making progress — contrast [`SimError::Deadlock`]).
    Timeout {
        /// The budget that was exhausted.
        cycles: u64,
    },
    /// A committed (architecturally real) memory access faulted.
    Mem {
        /// The fault.
        fault: MemFault,
        /// The faulting instruction's index.
        pc: usize,
    },
    /// Control flow left the program without halting.
    WildPc {
        /// The runaway instruction index.
        pc: usize,
    },
    /// The watchdog saw no commit or store-dequeue progress for the
    /// configured window ([`watchdog_cycles`]): the pipeline is wedged,
    /// not slow.
    ///
    /// [`watchdog_cycles`]: crate::SimConfig::watchdog_cycles
    Deadlock {
        /// The cycle the watchdog fired.
        cycle: u64,
        /// Pipeline state at that moment.
        diagnostics: DeadlockDiagnostics,
    },
    /// A structural resource could not be allocated when the pipeline's
    /// own gating said it must be available — the recoverable form of
    /// what used to be an allocation panic.
    ResourceExhausted {
        /// Which resource ran out.
        resource: String,
        /// The cycle it happened.
        cycle: u64,
    },
    /// An internal pipeline invariant did not hold (e.g. a store
    /// reaching dequeue without a resolved address). These indicate a
    /// malformed program or an injected fault the pipeline could not
    /// absorb; the machine stops cleanly instead of panicking.
    InvalidState {
        /// What was inconsistent, with enough context to debug.
        context: String,
        /// The cycle it was detected.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles } => write!(f, "no halt within {cycles} cycles"),
            SimError::Mem { fault, pc } => write!(f, "{fault} at pc {pc}"),
            SimError::WildPc { pc } => write!(f, "control flow left the program at pc {pc}"),
            SimError::Deadlock { cycle, diagnostics } => {
                write!(f, "pipeline deadlock at cycle {cycle}: {diagnostics}")
            }
            SimError::ResourceExhausted { resource, cycle } => {
                write!(f, "resource exhausted at cycle {cycle}: {resource}")
            }
            SimError::InvalidState { context, cycle } => {
                write!(f, "invalid pipeline state at cycle {cycle}: {context}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagnostics() -> DeadlockDiagnostics {
        DeadlockDiagnostics {
            rob_head: Some((7, 3)),
            rob_len: 12,
            sq_head: Some((5, 2)),
            sq_len: 4,
            lq_len: 6,
            live_tags: 40,
            prf_size: 96,
            fetch_pc: 17,
            last_progress_cycle: 100,
        }
    }

    #[test]
    fn timeout_renders() {
        let e = SimError::Timeout { cycles: 5000 };
        assert_eq!(e.to_string(), "no halt within 5000 cycles");
    }

    #[test]
    fn mem_renders_fault_and_pc() {
        let e = SimError::Mem {
            fault: MemFault { addr: 0x100, len: 8 },
            pc: 42,
        };
        assert_eq!(
            e.to_string(),
            "memory fault: 8-byte access at 0x100 out of bounds at pc 42"
        );
    }

    #[test]
    fn wild_pc_renders() {
        let e = SimError::WildPc { pc: 99 };
        assert_eq!(e.to_string(), "control flow left the program at pc 99");
    }

    #[test]
    fn deadlock_renders_snapshot() {
        let e = SimError::Deadlock {
            cycle: 10_100,
            diagnostics: diagnostics(),
        };
        assert_eq!(
            e.to_string(),
            "pipeline deadlock at cycle 10100: rob=12 (head seq 7 pc 3) \
             sq=4 (head seq 5 pc 2) lq=6 prf=40/96 fetch_pc=17 last_progress=100"
        );
    }

    #[test]
    fn deadlock_diagnostics_elide_empty_queues() {
        let d = DeadlockDiagnostics {
            rob_head: None,
            sq_head: None,
            rob_len: 0,
            sq_len: 0,
            ..diagnostics()
        };
        assert_eq!(
            d.to_string(),
            "rob=0 sq=0 lq=6 prf=40/96 fetch_pc=17 last_progress=100"
        );
    }

    #[test]
    fn resource_exhausted_renders() {
        let e = SimError::ResourceExhausted {
            resource: "physical register file (96 tags)".into(),
            cycle: 12,
        };
        assert_eq!(
            e.to_string(),
            "resource exhausted at cycle 12: physical register file (96 tags)"
        );
    }

    #[test]
    fn invalid_state_renders() {
        let e = SimError::InvalidState {
            context: "committed store at pc 3 has no resolved address at dequeue".into(),
            cycle: 77,
        };
        assert_eq!(
            e.to_string(),
            "invalid pipeline state at cycle 77: committed store at pc 3 \
             has no resolved address at dequeue"
        );
    }

    #[test]
    fn errors_are_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::WildPc { pc: 1 });
        assert!(e.source().is_none());
    }
}
