#![warn(missing_docs)]

//! # pandora-sim
//!
//! A cycle-level, out-of-order CPU simulator built as the experimental
//! substrate for the Pandora reproduction of *"Opening Pandora's Box"*
//! (ISCA 2021). The paper's proofs of concept ran on Gem5 and
//! hypothetical hardware; this crate replaces both with a from-scratch
//! model that exposes the same mechanisms the attacks exploit:
//!
//! * a speculative out-of-order pipeline (fetch + branch prediction,
//!   rename with a physical register file, issue ports, load/store
//!   queues with **in-order store dequeue**, reorder buffer, squash),
//! * a two-level set-associative cache hierarchy over flat memory,
//! * the seven optimization classes of the paper's Table I as
//!   configurable components ([`OptConfig`]), all off by default so the
//!   default machine is the paper's Baseline.
//!
//! Programs are [`pandora_isa::Program`]s; run them with [`Machine`]:
//!
//! ```
//! use pandora_isa::{Asm, Reg};
//! use pandora_sim::{Machine, OptConfig, SimConfig};
//!
//! let mut a = Asm::new();
//! a.li(Reg::T0, 1);
//! a.sd(Reg::T0, Reg::ZERO, 64);
//! a.fence();
//! a.sd(Reg::T0, Reg::ZERO, 64); // stores 1 over 1: silent
//! a.fence();
//! a.halt();
//! let prog = a.assemble().unwrap();
//!
//! let mut m = Machine::new(SimConfig::with_opts(OptConfig::with_silent_stores()));
//! m.load_program(&prog);
//! let stats = m.run(100_000).unwrap();
//! assert_eq!(stats.silent_stores, 1);
//! ```

pub mod config;
pub mod duo;
pub mod error;
pub mod event;
pub mod fault;
pub mod fleet;
pub mod func;
pub mod machine;
pub mod mem;
pub mod noise;
pub mod opt;
pub mod pipeline;
pub mod stats;
pub mod trace;

pub use config::{LatencyConfig, OptConfig, PipelineConfig, ReuseKey, RfcMatch, SimConfig};
pub use opt::value_pred::VpKind;
pub use event::{EventBus, PrefetchSource, SimEvent, SquashReason, StallReason};
pub use func::{EmuError, Emulator};
pub use duo::DuoMachine;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fleet::{Fleet, FleetSpec, MachinePool, MemberError, MemberOutcome, MemberSpec};
pub use machine::{Checkpoint, DeadlockDiagnostics, Machine, SimError};
pub use mem::cache::{Cache, CacheConfig, CacheOutcome, Replacement};
pub use mem::hierarchy::{Access, Hierarchy, MemLatency, PrefetchFill, ServedBy};
pub use mem::memory::{MemFault, Memory};
pub use noise::{traffic_program, NoiseConfig, NoiseHook};
pub use opt::hook::{FaultHook, Hooks, MemoLookup, OptHook};
pub use pipeline::{PipelineStage, PipelineState, Stages};
pub use stats::SimStats;
pub use trace::{NonSilentReason, Trace, TraceEvent};
