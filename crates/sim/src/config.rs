//! Machine configuration: pipeline geometry, latencies, cache
//! geometry, and the per-optimization switches of the paper's Table I.

use crate::mem::cache::CacheConfig;
use crate::mem::hierarchy::{MemLatency, PrefetchFill};
use crate::noise::NoiseConfig;

/// Pipeline structure sizes and widths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: usize,
    /// Instructions issued to execution per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Issue queue entries.
    pub iq_size: usize,
    /// Load queue entries.
    pub lq_size: usize,
    /// Store queue entries. The paper's amplification experiment uses a
    /// 5-entry SQ (§V-A3).
    pub sq_size: usize,
    /// Physical register file size (tags available for renaming).
    pub prf_size: usize,
    /// Cycles between a squash and the first refetched instruction.
    pub redirect_penalty: u64,
    /// Simple-ALU ports per cycle.
    pub alu_ports: usize,
    /// Multiply/divide ports per cycle.
    pub muldiv_ports: usize,
    /// Floating-point ports per cycle.
    pub fp_ports: usize,
    /// Load (cache read) ports per cycle. SS-loads steal these.
    pub load_ports: usize,
    /// Store-address/data ports per cycle.
    pub store_ports: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 4,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 64,
            iq_size: 32,
            lq_size: 16,
            sq_size: 5,
            prf_size: 96,
            redirect_penalty: 6,
            alu_ports: 2,
            muldiv_ports: 1,
            fp_ports: 1,
            load_ports: 2,
            store_ports: 1,
        }
    }
}

/// Execution latencies (cycles) of each operation class, before any
/// computation-simplification optimization shortens them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyConfig {
    /// Simple integer ALU operations.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide/remainder.
    pub div: u64,
    /// Floating-point operations (non-subnormal operands).
    pub fp: u64,
    /// Extra cycles when a floating-point operand or result is subnormal
    /// and the subnormal slow path is enabled.
    pub fp_subnormal_penalty: u64,
}

impl Default for LatencyConfig {
    fn default() -> LatencyConfig {
        LatencyConfig {
            alu: 1,
            mul: 4,
            div: 12,
            fp: 4,
            fp_subnormal_penalty: 40,
        }
    }
}

/// Which values the register-file compressor can share (§IV-D1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RfcMatch {
    /// Only results equal to 0 or 1 compress (Balakrishnan & Sohi 0/1
    /// variant; MLD Example 8).
    #[default]
    ZeroOne,
    /// Any result equal to a value currently live in the committed
    /// architectural register file compresses.
    Any,
}

/// How the computation-reuse memo table is keyed (§IV-C2, §VI-A3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReuseKey {
    /// Sv: key on (pc, operand *values*) — highest reuse, leaks operand
    /// values.
    #[default]
    Values,
    /// Sn: key on (pc, operand *register ids*) — leaks only which
    /// instruction executes (control flow), the paper's suggested
    /// security-conscious variant.
    RegIds,
}

/// Configuration of the seven optimization classes studied by the paper.
/// Everything defaults to *off*: the default machine is the paper's
/// "Baseline" column of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptConfig {
    /// Silent stores (§IV-C1, §V-A): read-port-stealing SS-loads; silent
    /// stores dequeue without a cache write, consecutive silent stores
    /// dequeue together.
    pub silent_stores: bool,
    /// Computation simplification (§IV-B1): zero/one-skip multiply,
    /// trivial ALU bypass, early-exit divide.
    pub comp_simpl: bool,
    /// Floating-point subnormal slow path (classic CS instance).
    pub fp_subnormal: bool,
    /// Pipeline compression (§IV-B2): two narrow-operand ALU operations
    /// pack into one issue port (Brooks & Martonosi).
    pub operand_packing: bool,
    /// Computation reuse (§IV-C2): memoize mul/div/fp results.
    pub comp_reuse: bool,
    /// Memo-table key flavour.
    pub reuse_key: ReuseKey,
    /// Number of memo-table entries.
    pub reuse_entries: usize,
    /// Whether simple ALU operations are memoized too (Sodani & Sohi's
    /// Sv covers "potentially any arithmetic instruction"); multiply,
    /// divide and floating-point are always eligible when reuse is on.
    pub reuse_simple_alu: bool,
    /// Value prediction for loads (§IV-C3): last-value, confidence
    /// threshold; mispredict squashes.
    pub value_pred: bool,
    /// Predictions are made once confidence reaches this count.
    pub vp_confidence: u8,
    /// The prediction heuristic (last-value or stride).
    pub vp_kind: crate::opt::value_pred::VpKind,
    /// Register-file compression (§IV-D1).
    pub rf_compress: bool,
    /// Which values compress.
    pub rfc_match: RfcMatch,
    /// Data memory-dependent prefetcher (§IV-D2, §V-B): the IMP.
    pub dmp: bool,
    /// Number of indirection levels the IMP chases (2 or 3).
    pub dmp_levels: u8,
    /// Prefetch distance Δ in elements ahead of the stream.
    pub dmp_distance: u64,
    /// Where prefetches install lines (models §V-B3 prefetch buffers).
    pub dmp_fill: PrefetchFill,
    /// Content-directed (pointer-chasing) prefetcher: scan demand-filled
    /// lines for pointer-shaped values and prefetch their targets
    /// (Cooksey et al., the paper's other DMP family).
    pub cdp: bool,
}

impl OptConfig {
    /// The baseline machine: every optimization off.
    #[must_use]
    pub fn baseline() -> OptConfig {
        OptConfig {
            reuse_entries: 64,
            reuse_simple_alu: true,
            vp_confidence: 3,
            dmp_levels: 3,
            dmp_distance: 4,
            ..OptConfig::default()
        }
    }

    /// Baseline plus silent stores.
    #[must_use]
    pub fn with_silent_stores() -> OptConfig {
        OptConfig {
            silent_stores: true,
            ..OptConfig::baseline()
        }
    }

    /// Baseline plus the 3-level IMP.
    #[must_use]
    pub fn with_dmp(levels: u8) -> OptConfig {
        OptConfig {
            dmp: true,
            dmp_levels: levels,
            ..OptConfig::baseline()
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// Data memory size in bytes.
    pub mem_size: usize,
    /// Pipeline geometry.
    pub pipeline: PipelineConfig,
    /// Execution latencies.
    pub latency: LatencyConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Hierarchy latencies.
    pub mem_latency: MemLatency,
    /// Optimization switches.
    pub opts: OptConfig,
    /// Seed for all randomized structures (replacement, etc.).
    pub seed: u64,
    /// Deadlock watchdog window: if no instruction commits and no store
    /// dequeues for this many cycles while work is in flight, the run
    /// stops with [`SimError::Deadlock`] and a pipeline snapshot instead
    /// of spinning to the cycle cap. `None` disables the watchdog. The
    /// default (10 000) is far above any legitimate stall on these
    /// machines (the worst case — a full store queue of DRAM misses
    /// draining serially — is a few hundred cycles).
    ///
    /// [`SimError::Deadlock`]: crate::SimError::Deadlock
    pub watchdog_cycles: Option<u64>,
    /// Deterministic environmental noise (co-tenant cache pressure,
    /// degraded timers, frontend jitter). Quiet by default; see
    /// [`NoiseConfig`].
    pub noise: NoiseConfig,
    /// Validate pipeline invariants every cycle and surface violations
    /// as structured [`SimError::InvalidState`] errors even in release
    /// builds (where `debug_assert!` compiles out). Off by default:
    /// the checks walk the ROB each cycle, which costs a few percent
    /// of simulation speed.
    ///
    /// [`SimError::InvalidState`]: crate::SimError::InvalidState
    pub paranoid_checks: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            mem_size: 4 << 20,
            pipeline: PipelineConfig::default(),
            latency: LatencyConfig::default(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            mem_latency: MemLatency::default(),
            opts: OptConfig::baseline(),
            seed: 0x9e3779b97f4a7c15,
            watchdog_cycles: Some(10_000),
            noise: NoiseConfig::quiet(),
            paranoid_checks: false,
        }
    }
}

/// 64-bit FNV-1a, the workspace's stable fingerprint primitive.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl OptConfig {
    /// A deterministic fingerprint of the optimization switches —
    /// FNV-1a over the canonical `Debug` rendering. Two configs hash
    /// equal iff every field is equal.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        fnv1a64(format!("{self:?}").as_bytes())
    }
}

impl SimConfig {
    /// A deterministic fingerprint of the *entire* machine
    /// configuration (geometry, latencies, caches, optimization
    /// switches, seed, watchdog) — FNV-1a over the canonical `Debug`
    /// rendering, so any field change changes the hash.
    ///
    /// The experiment runner records this in its resume manifest:
    /// `runall --resume` refuses to mix journal entries produced under
    /// a different machine configuration, and re-verified experiments
    /// must reproduce their recorded output byte for byte.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        fnv1a64(format!("{self:?}").as_bytes())
    }

    /// Whether a machine built for `self` can be recycled in place for
    /// `other` ([`Machine::reset_to`]): true when every field that
    /// determines *allocation shape* — memory size, pipeline geometry
    /// (queue/PRF sizes, port counts), cache geometry, and the memory
    /// latencies baked into the hierarchy at construction — is equal.
    /// Seeds, optimization switches, noise, latencies, and watchdog
    /// settings may all differ: those are reapplied by a reset.
    ///
    /// [`Machine::reset_to`]: crate::Machine::reset_to
    #[must_use]
    pub fn same_shape(&self, other: &SimConfig) -> bool {
        self.mem_size == other.mem_size
            && self.pipeline == other.pipeline
            && self.l1d == other.l1d
            && self.l2 == other.l2
            && self.mem_latency == other.mem_latency
    }

    /// Default machine with the given optimization switches.
    #[must_use]
    pub fn with_opts(opts: OptConfig) -> SimConfig {
        SimConfig {
            opts,
            ..SimConfig::default()
        }
    }

    /// A small 2-wide core (shallow queues, one load port) — the
    /// ablation point for attack viability on little machines.
    #[must_use]
    pub fn little_core() -> SimConfig {
        SimConfig {
            pipeline: PipelineConfig {
                fetch_width: 2,
                dispatch_width: 2,
                issue_width: 2,
                commit_width: 2,
                rob_size: 24,
                iq_size: 12,
                lq_size: 8,
                sq_size: 4,
                prf_size: 64,
                redirect_penalty: 4,
                alu_ports: 1,
                muldiv_ports: 1,
                fp_ports: 1,
                load_ports: 1,
                store_ports: 1,
            },
            ..SimConfig::default()
        }
    }

    /// A wide 8-issue core with deep queues.
    #[must_use]
    pub fn big_core() -> SimConfig {
        SimConfig {
            pipeline: PipelineConfig {
                fetch_width: 8,
                dispatch_width: 8,
                issue_width: 8,
                commit_width: 8,
                rob_size: 192,
                iq_size: 96,
                lq_size: 48,
                sq_size: 24,
                prf_size: 256,
                redirect_penalty: 8,
                alu_ports: 4,
                muldiv_ports: 2,
                fp_ports: 2,
                load_ports: 3,
                store_ports: 2,
            },
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_baseline() {
        let c = SimConfig::default();
        assert!(!c.opts.silent_stores);
        assert!(!c.opts.dmp);
        assert!(!c.opts.value_pred);
        assert_eq!(c.pipeline.sq_size, 5, "paper's SQ depth");
    }

    #[test]
    fn opt_presets() {
        assert!(OptConfig::with_silent_stores().silent_stores);
        let d = OptConfig::with_dmp(2);
        assert!(d.dmp);
        assert_eq!(d.dmp_levels, 2);
        assert_eq!(d.dmp_distance, 4, "paper's i + 4 delta");
    }

    #[test]
    fn core_presets_are_distinct_and_consistent() {
        let little = SimConfig::little_core();
        let big = SimConfig::big_core();
        assert!(little.pipeline.issue_width < big.pipeline.issue_width);
        assert!(little.pipeline.rob_size < big.pipeline.rob_size);
        assert!(!little.opts.silent_stores && !big.opts.dmp, "presets stay baseline");
    }

    #[test]
    fn with_opts_overrides_only_opts() {
        let c = SimConfig::with_opts(OptConfig::with_silent_stores());
        assert!(c.opts.silent_stores);
        assert_eq!(c.mem_size, SimConfig::default().mem_size);
    }

    #[test]
    fn stable_hash_tracks_every_field() {
        let base = SimConfig::default();
        assert_eq!(base.stable_hash(), SimConfig::default().stable_hash());

        let mut seeded = base;
        seeded.seed ^= 1;
        assert_ne!(base.stable_hash(), seeded.stable_hash(), "seed is hashed");

        let mut opted = base;
        opted.opts.silent_stores = true;
        assert_ne!(base.stable_hash(), opted.stable_hash(), "opts are hashed");

        let mut sized = base;
        sized.pipeline.sq_size += 1;
        assert_ne!(base.stable_hash(), sized.stable_hash(), "geometry is hashed");

        let mut noisy = base;
        noisy.noise = NoiseConfig::at_intensity(30, 0);
        assert_ne!(base.stable_hash(), noisy.stable_hash(), "noise is hashed");
        let mut reseeded = noisy;
        reseeded.noise.seed ^= 1;
        assert_ne!(
            noisy.stable_hash(),
            reseeded.stable_hash(),
            "noise seed is hashed"
        );

        let mut paranoid = base;
        paranoid.paranoid_checks = true;
        assert_ne!(
            base.stable_hash(),
            paranoid.stable_hash(),
            "paranoia is hashed"
        );

        assert_ne!(
            SimConfig::little_core().stable_hash(),
            SimConfig::big_core().stable_hash()
        );
        assert_ne!(
            OptConfig::baseline().stable_hash(),
            OptConfig::with_silent_stores().stable_hash()
        );
    }
}
