//! A functional (in-order, timing-free) reference emulator.
//!
//! Used for differential testing of the out-of-order pipeline: on any
//! program, the architectural state produced by [`Machine`] must match
//! the state produced by [`Emulator`] exactly. Attack code also uses it
//! to precompute expected victim results cheaply.
//!
//! [`Machine`]: crate::Machine

use std::error::Error;
use std::fmt;

use pandora_isa::{Instr, Program, Reg};

use crate::mem::memory::{MemFault, Memory};

/// Why functional execution stopped abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuError {
    /// A data access faulted.
    Mem(MemFault),
    /// The step budget ran out before `halt`.
    StepLimit {
        /// The exhausted budget.
        steps: u64,
    },
    /// Control flow left the program (fell off the end or a wild `jalr`).
    WildPc {
        /// The runaway instruction index.
        pc: usize,
    },
    /// A `rdcycle` was reached inside a fast-forward prefix
    /// ([`Emulator::run_to_pc`]). The emulator's timer is a dynamic
    /// instruction count while the pipeline's is a (noise-quantized)
    /// cycle count, so executing it here would hand the cycle-accurate
    /// region a poisoned timer value; the handoff contract rejects the
    /// prefix instead.
    RdCycleInPrefix {
        /// The offending instruction index.
        pc: usize,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Mem(m) => write!(f, "{m}"),
            EmuError::StepLimit { steps } => {
                write!(f, "no halt within {steps} steps")
            }
            EmuError::WildPc { pc } => write!(f, "control flow left the program at pc {pc}"),
            EmuError::RdCycleInPrefix { pc } => {
                write!(f, "rdcycle at pc {pc} inside a fast-forward prefix")
            }
        }
    }
}

impl Error for EmuError {}

impl From<MemFault> for EmuError {
    fn from(m: MemFault) -> EmuError {
        EmuError::Mem(m)
    }
}

/// The functional emulator: architectural registers plus a memory.
#[derive(Clone, Debug)]
pub struct Emulator {
    regs: [u64; Reg::COUNT],
    mem: Memory,
    /// Dynamic instruction count; also returned by `rdcycle`, so that
    /// functional runs are deterministic (it is *not* a cycle count).
    steps: u64,
}

impl Emulator {
    /// Creates an emulator with a zeroed register file over `mem`.
    #[must_use]
    pub fn new(mem: Memory) -> Emulator {
        Emulator {
            regs: [0; Reg::COUNT],
            mem,
            steps: 0,
        }
    }

    /// Reads an architectural register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an architectural register (`x0` writes are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// All architectural registers, indexed by [`Reg::index`].
    #[must_use]
    pub fn regs(&self) -> &[u64; Reg::COUNT] {
        &self.regs
    }

    /// The memory.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Consumes the emulator, returning its memory.
    #[must_use]
    pub fn into_mem(self) -> Memory {
        self.mem
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs `prog` from instruction 0 until `halt`, for at most
    /// `max_steps` dynamic instructions.
    ///
    /// # Errors
    ///
    /// * [`EmuError::Mem`] on an out-of-bounds data access,
    /// * [`EmuError::StepLimit`] if `halt` is not reached in time,
    /// * [`EmuError::WildPc`] if control flow leaves the program.
    pub fn run(&mut self, prog: &Program, max_steps: u64) -> Result<(), EmuError> {
        let mut pc = 0usize;
        let start = self.steps;
        loop {
            if self.steps - start >= max_steps {
                return Err(EmuError::StepLimit { steps: max_steps });
            }
            let Some(&instr) = prog.get(pc) else {
                return Err(EmuError::WildPc { pc });
            };
            self.steps += 1;
            pc = match self.step_at(instr, pc)? {
                Some(next) => next,
                None => return Ok(()),
            };
        }
    }

    /// Runs `prog` from instruction 0 until control is *about to*
    /// execute `stop_pc`, for at most `max_steps` dynamic instructions
    /// — the functional tier of a two-tier (fast-forward + pipeline)
    /// run. Returns the pc where execution stopped so a pipeline
    /// machine can resume fetching there.
    ///
    /// Stops early, with `Ok`, if the next instruction is `halt`
    /// (the halt is left unexecuted for the cycle-accurate tier to
    /// commit).
    ///
    /// The prefix must be timing-free: a `rdcycle` inside it would
    /// observe the emulator's instruction counter, not the pipeline's
    /// noise-quantized cycle counter, so it is rejected with
    /// [`EmuError::RdCycleInPrefix`] *before* executing.
    ///
    /// # Errors
    ///
    /// As [`Emulator::run`], plus [`EmuError::RdCycleInPrefix`].
    pub fn run_to_pc(
        &mut self,
        prog: &Program,
        stop_pc: usize,
        max_steps: u64,
    ) -> Result<usize, EmuError> {
        let mut pc = 0usize;
        let start = self.steps;
        loop {
            if pc == stop_pc {
                return Ok(pc);
            }
            let Some(&instr) = prog.get(pc) else {
                return Err(EmuError::WildPc { pc });
            };
            if matches!(instr, Instr::Halt) {
                return Ok(pc);
            }
            if matches!(instr, Instr::RdCycle { .. }) {
                return Err(EmuError::RdCycleInPrefix { pc });
            }
            if self.steps - start >= max_steps {
                return Err(EmuError::StepLimit { steps: max_steps });
            }
            self.steps += 1;
            pc = match self.step_at(instr, pc)? {
                Some(next) => next,
                None => unreachable!("halt is intercepted above"),
            };
        }
    }

    /// Executes one instruction at `pc`; returns the next pc, or `None`
    /// on `halt`.
    fn step_at(&mut self, instr: Instr, pc: usize) -> Result<Option<usize>, EmuError> {
        let next = match instr {
            Instr::AluRR { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                pc + 1
            }
            Instr::AluRI { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
                pc + 1
            }
            Instr::Fp { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                pc + 1
            }
            Instr::Li { rd, imm } => {
                self.set_reg(rd, imm);
                pc + 1
            }
            Instr::Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let raw = self.mem.read(addr, width)?;
                let v = if signed {
                    sign_extend(raw, width.bytes())
                } else {
                    raw
                };
                self.set_reg(rd, v);
                pc + 1
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                self.mem.write(addr, self.reg(src), width)?;
                pc + 1
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    target
                } else {
                    pc + 1
                }
            }
            Instr::Jal { rd, target } => {
                self.set_reg(rd, (pc + 1) as u64);
                target
            }
            Instr::Jalr { rd, base, offset } => {
                let t = self.reg(base).wrapping_add(offset as u64) as usize;
                self.set_reg(rd, (pc + 1) as u64);
                t
            }
            Instr::RdCycle { rd } => {
                self.set_reg(rd, self.steps);
                pc + 1
            }
            Instr::Flush { .. } | Instr::Fence | Instr::Nop => pc + 1,
            Instr::Halt => return Ok(None),
        };
        Ok(Some(next))
    }
}

/// Sign-extends the low `bytes` bytes of `v` to 64 bits.
#[must_use]
pub fn sign_extend(v: u64, bytes: usize) -> u64 {
    let bits = bytes * 8;
    if bits >= 64 {
        return v;
    }
    let shift = 64 - bits;
    (((v << shift) as i64) >> shift) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_isa::Asm;

    fn run(build: impl FnOnce(&mut Asm)) -> Emulator {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Emulator::new(Memory::new(4096));
        e.run(&p, 100_000).unwrap();
        e
    }

    #[test]
    fn loop_sums() {
        let e = run(|a| {
            a.li(Reg::T1, 10);
            a.label("l");
            a.add(Reg::T2, Reg::T2, Reg::T1);
            a.addi(Reg::T1, Reg::T1, -1);
            a.bnez(Reg::T1, "l");
        });
        assert_eq!(e.reg(Reg::T2), 55);
    }

    #[test]
    fn memory_roundtrip_with_sign_extension() {
        let e = run(|a| {
            a.li(Reg::T0, 0xFFu64);
            a.sb(Reg::T0, Reg::ZERO, 100);
            a.lbu(Reg::T1, Reg::ZERO, 100);
            a.load(Reg::T2, Reg::ZERO, 100, pandora_isa::Width::Byte, true);
        });
        assert_eq!(e.reg(Reg::T1), 0xFF);
        assert_eq!(e.reg(Reg::T2), u64::MAX);
    }

    #[test]
    fn x0_stays_zero() {
        let e = run(|a| {
            a.li(Reg::ZERO, 77);
            a.addi(Reg::ZERO, Reg::ZERO, 5);
            a.mv(Reg::T0, Reg::ZERO);
        });
        assert_eq!(e.reg(Reg::T0), 0);
    }

    #[test]
    fn jal_and_ret() {
        let e = run(|a| {
            a.jal(Reg::RA, "fn");
            a.li(Reg::T1, 9);
            a.j("end");
            a.label("fn");
            a.li(Reg::T0, 7);
            a.ret();
            a.label("end");
        });
        assert_eq!(e.reg(Reg::T0), 7);
        assert_eq!(e.reg(Reg::T1), 9);
    }

    #[test]
    fn step_limit_detected() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.assemble().unwrap();
        let mut e = Emulator::new(Memory::new(64));
        assert_eq!(e.run(&p, 100), Err(EmuError::StepLimit { steps: 100 }));
    }

    #[test]
    fn fall_off_end_is_wild_pc() {
        let mut a = Asm::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut e = Emulator::new(Memory::new(64));
        assert_eq!(e.run(&p, 100), Err(EmuError::WildPc { pc: 1 }));
    }

    #[test]
    fn mem_fault_propagates() {
        let mut a = Asm::new();
        a.li(Reg::T0, 1 << 40);
        a.ld(Reg::T1, Reg::T0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut e = Emulator::new(Memory::new(64));
        assert!(matches!(e.run(&p, 100), Err(EmuError::Mem(_))));
    }

    #[test]
    fn sign_extend_widths() {
        assert_eq!(sign_extend(0x80, 1), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(sign_extend(0x7F, 1), 0x7F);
        assert_eq!(sign_extend(0x8000, 2), 0xFFFF_FFFF_FFFF_8000);
        assert_eq!(sign_extend(0xFFFF_FFFF, 4), u64::MAX);
        assert_eq!(sign_extend(5, 8), 5);
    }
}
