//! Many-machine batch sweep engine.
//!
//! Every quantitative result in the reproduction — the Fig. 5
//! amplification table, the Fig. 6 key-recovery histogram, the E16
//! noise grid — is built from hundreds of *independent* simulated
//! trials. This module is the scaling substrate for those sweeps: a
//! [`Fleet`] owns N machines (distinct seeds, noise intensities, cache
//! geometries, hook sets — expressed as a [`FleetSpec`]/[`MemberSpec`]
//! grid over [`SimConfig`]) and advances them across all cores via
//! `std::thread::scope` work-stealing, while [`trial_grid`] runs a flat
//! list of trial jobs through a pool of recycled machines
//! ([`Machine::reset_to`]) instead of constructing one per trial.
//! Members whose trials share a long warm-up prefix can fork from a
//! shared [`Checkpoint`] ([`MemberSpec::with_start`]) instead of
//! replaying it, with bit-equal results.
//!
//! Three properties are contractual, pinned by
//! `tests/fleet_differential.rs`:
//!
//! * **Determinism** — a fleet member produces `SimStats` bit-equal to
//!   a lone `Machine` built from the same config/seed, regardless of
//!   thread count or steal order. Members share no mutable state:
//!   programs are shared read-only behind [`Arc`], each member owns its
//!   machine, and machine recycling (`reset_to`) is bit-equal to fresh
//!   construction.
//! * **Degradation** — one member's [`SimError`] (or panic) degrades
//!   that member only, never the batch: errors are captured per member
//!   as [`MemberError`] and siblings run to completion.
//! * **Reduction** — per-machine [`SimStats`] reduce with
//!   [`SimStats::merge`]; receiver transcripts reduce through the
//!   per-trial `extract` closure of [`trial_grid`] (which runs on the
//!   worker that owns the machine, so decoded symbols — not machines —
//!   cross threads).
//!
//! Thread-count resolution: every entry point takes a `threads`
//! argument where `0` means "the process default" —
//! [`default_threads`], itself defaulting to
//! `std::thread::available_parallelism()` and settable once at startup
//! via [`set_default_threads`] (`runall --fleet-threads`). The
//! effective count is additionally clamped to the job count, and a
//! single-thread dispatch runs inline on the caller's thread with no
//! spawning (and no allocation — the zero-alloc audit steps a fleet
//! through that path).

use std::any::Any;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use pandora_isa::Program;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::machine::{Checkpoint, Machine};
use crate::stats::SimStats;

/// Default per-member cycle budget — generous enough for the longest
/// attack trial in the tree (the bsaes key-recovery rounds run under
/// 50M cycles).
pub const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

/// Process-wide default fleet thread count; 0 = one per core.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default fleet thread count used wherever a
/// `threads` argument of 0 is passed. 0 restores "one per core". Set
/// once at startup (`runall --fleet-threads`); experiment jobs and
/// fleet threads multiply, so a runner with `--jobs J` should pass
/// roughly `cores / J` here to avoid oversubscription.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide default fleet thread count: the value set by
/// [`set_default_threads`], or `std::thread::available_parallelism()`
/// when unset.
#[must_use]
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Resolves a requested thread count (0 = default) against a job count.
fn effective_threads(requested: usize, jobs: usize) -> usize {
    let t = if requested == 0 {
        default_threads()
    } else {
        requested
    };
    t.clamp(1, jobs.max(1))
}

/// A member's pre-run setup: seeds memory, registers, cache state or a
/// fault plan before the machine runs. Must be deterministic (a pure
/// function of the member's spec) for the fleet's determinism guarantee
/// to hold.
pub type PrepFn = Arc<dyn Fn(&mut Machine) -> Result<(), SimError> + Send + Sync>;

/// One fleet member: a machine configuration, a shared compiled
/// program, optional pre-run setup, and a cycle budget.
#[derive(Clone)]
pub struct MemberSpec {
    /// Full machine configuration (geometry, seeds, noise, hooks).
    pub cfg: SimConfig,
    /// The compiled program, shared read-only across members.
    pub program: Arc<Program>,
    /// Pre-run setup (memory/registers/faults), run before stepping.
    pub prep: Option<PrepFn>,
    /// Warm checkpoint to fork from instead of replaying the prefix
    /// (see [`MemberSpec::with_start`]); `None` starts cold.
    pub start: Option<Arc<Checkpoint>>,
    /// Cycle budget; exceeding it degrades the member with
    /// [`SimError::Timeout`]. For forked members this budget includes
    /// the cycles already elapsed inside the checkpoint.
    pub max_cycles: u64,
}

impl MemberSpec {
    /// A member with no prep and the [`DEFAULT_MAX_CYCLES`] budget.
    #[must_use]
    pub fn new(cfg: SimConfig, program: Arc<Program>) -> MemberSpec {
        MemberSpec {
            cfg,
            program,
            prep: None,
            start: None,
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// Attaches pre-run setup.
    #[must_use]
    pub fn with_prep<F>(mut self, prep: F) -> MemberSpec
    where
        F: Fn(&mut Machine) -> Result<(), SimError> + Send + Sync + 'static,
    {
        self.prep = Some(Arc::new(prep));
        self
    }

    /// Starts this member from a shared warm [`Checkpoint`] instead of
    /// replaying the prefix: the machine is seeded via
    /// [`Machine::restore`] (recycled pool machines) or
    /// [`Machine::from_checkpoint`] (empty slots), and the program load
    /// is skipped — the checkpoint carries it. The member's `prep`
    /// still runs afterwards, applying only the per-trial delta.
    ///
    /// `cfg` must equal the checkpoint's config, except `cfg.noise`
    /// which may differ when the checkpoint was taken at cycle 0 (no
    /// noise drawn yet, so swapping the noise hook is bit-equal to
    /// fresh construction).
    #[must_use]
    pub fn with_start(mut self, start: Arc<Checkpoint>) -> MemberSpec {
        self.start = Some(start);
        self
    }

    /// Overrides the cycle budget.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> MemberSpec {
        self.max_cycles = max_cycles;
        self
    }
}

impl fmt::Debug for MemberSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemberSpec")
            .field("cfg_hash", &format_args!("{:#x}", self.cfg.stable_hash()))
            .field("seed", &self.cfg.seed)
            .field("prog_len", &self.program.len())
            .field("prep", &self.prep.is_some())
            .field("start_cycle", &self.start.as_ref().map(|ck| ck.cycle()))
            .field("max_cycles", &self.max_cycles)
            .finish()
    }
}

/// A grid of members plus a thread count, built incrementally or from
/// the [`FleetSpec::grid`]/[`FleetSpec::seed_grid`] constructors.
#[derive(Clone, Debug, Default)]
pub struct FleetSpec {
    members: Vec<MemberSpec>,
    threads: usize,
}

impl FleetSpec {
    /// An empty spec with the default thread count.
    #[must_use]
    pub fn new() -> FleetSpec {
        FleetSpec::default()
    }

    /// One member per configuration, all sharing `program`.
    pub fn grid(program: &Arc<Program>, cfgs: impl IntoIterator<Item = SimConfig>) -> FleetSpec {
        let mut spec = FleetSpec::new();
        for cfg in cfgs {
            spec.push(MemberSpec::new(cfg, Arc::clone(program)));
        }
        spec
    }

    /// One member per seed: `base` with `cfg.seed` (and therefore the
    /// replacement/noise RNG hierarchy) varied.
    pub fn seed_grid(
        base: SimConfig,
        program: &Arc<Program>,
        seeds: impl IntoIterator<Item = u64>,
    ) -> FleetSpec {
        FleetSpec::grid(
            program,
            seeds.into_iter().map(|seed| SimConfig { seed, ..base }),
        )
    }

    /// Sets the thread count (0 = process default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> FleetSpec {
        self.threads = threads;
        self
    }

    /// Appends a member.
    pub fn push(&mut self, member: MemberSpec) -> &mut FleetSpec {
        self.members.push(member);
        self
    }

    /// Builder-style [`FleetSpec::push`].
    #[must_use]
    pub fn member(mut self, member: MemberSpec) -> FleetSpec {
        self.members.push(member);
        self
    }

    /// The members added so far.
    #[must_use]
    pub fn members(&self) -> &[MemberSpec] {
        &self.members
    }

    /// Member count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the spec has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Builds the fleet (allocates and preps every machine).
    #[must_use]
    pub fn build(self) -> Fleet {
        Fleet::new(self)
    }
}

/// Why a member degraded: a structured simulator error, or a panic
/// (captured so siblings keep running; the payload message is kept for
/// the report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemberError {
    /// The member's run returned a [`SimError`].
    Sim(SimError),
    /// The member's prep, run, or extract closure panicked.
    Panicked(String),
}

impl MemberError {
    /// The structured simulator error, if this wasn't a panic.
    #[must_use]
    pub fn sim(&self) -> Option<&SimError> {
        match self {
            MemberError::Sim(e) => Some(e),
            MemberError::Panicked(_) => None,
        }
    }

    /// Unwraps the [`SimError`], resurfacing captured panics.
    ///
    /// Callers that predate the fleet treated a panic inside a trial as
    /// a harness bug that aborts the run; this restores exactly that
    /// behavior after fleet dispatch has protected sibling members.
    ///
    /// # Panics
    ///
    /// Panics with the captured payload message if the member panicked.
    #[must_use]
    pub fn unwrap_sim(self) -> SimError {
        match self {
            MemberError::Sim(e) => e,
            MemberError::Panicked(msg) => panic!("fleet member panicked: {msg}"),
        }
    }
}

impl fmt::Display for MemberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberError::Sim(e) => write!(f, "member failed: {e}"),
            MemberError::Panicked(msg) => write!(f, "member panicked: {msg}"),
        }
    }
}

impl std::error::Error for MemberError {}

impl From<SimError> for MemberError {
    fn from(e: SimError) -> MemberError {
        MemberError::Sim(e)
    }
}

/// A member's terminal result.
pub type MemberOutcome = Result<SimStats, MemberError>;

/// Lifecycle of one member inside a [`Fleet`].
#[derive(Clone, Debug)]
enum MemberStatus {
    /// Still stepping (lockstep mode) or not yet run.
    Running,
    /// Halted normally with these final stats.
    Done(SimStats),
    /// Degraded; the machine is left at the failure point.
    Failed(MemberError),
}

/// N machines advanced together: run-to-completion or lockstep batch
/// stepping, work-stealing across threads, per-member outcome capture.
#[derive(Debug)]
pub struct Fleet {
    specs: Vec<MemberSpec>,
    machines: Vec<Machine>,
    status: Vec<MemberStatus>,
    threads: usize,
}

impl Fleet {
    /// Allocates one machine per member — forked from the member's
    /// checkpoint when one is attached, cold-built otherwise — loads
    /// the shared program and runs each member's prep. A prep failure
    /// (or panic) degrades that member immediately; its machine stays
    /// constructed.
    #[must_use]
    pub fn new(spec: FleetSpec) -> Fleet {
        let FleetSpec { members, threads } = spec;
        let mut machines = Vec::with_capacity(members.len());
        let mut status = Vec::with_capacity(members.len());
        for member in &members {
            let mut m = match &member.start {
                Some(ck) => {
                    let mut m = Machine::from_checkpoint(ck);
                    apply_start_overrides(&mut m, member, ck);
                    m
                }
                None => {
                    let mut m = Machine::new(member.cfg);
                    m.load_program(&member.program);
                    m
                }
            };
            let st = match run_prep(member, &mut m) {
                Ok(()) => MemberStatus::Running,
                Err(e) => MemberStatus::Failed(e),
            };
            machines.push(m);
            status.push(st);
        }
        Fleet {
            specs: members,
            machines,
            status,
            threads,
        }
    }

    /// Member count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the fleet has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Members still running (not halted, not degraded).
    #[must_use]
    pub fn running(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, MemberStatus::Running))
            .count()
    }

    /// Member `i`'s machine (read-only: receivers decode transcripts
    /// from its memory and hierarchy).
    #[must_use]
    pub fn machine(&self, i: usize) -> &Machine {
        &self.machines[i]
    }

    /// Member `i`'s terminal outcome, or `None` while it still runs.
    #[must_use]
    pub fn outcome(&self, i: usize) -> Option<Result<&SimStats, &MemberError>> {
        match &self.status[i] {
            MemberStatus::Running => None,
            MemberStatus::Done(stats) => Some(Ok(stats)),
            MemberStatus::Failed(e) => Some(Err(e)),
        }
    }

    /// All terminal outcomes; members still running report a live
    /// `Ok` snapshot of their stats so far.
    #[must_use]
    pub fn outcomes(&self) -> Vec<MemberOutcome> {
        self.status
            .iter()
            .zip(&self.machines)
            .map(|(s, m)| match s {
                MemberStatus::Running => Ok(*m.stats()),
                MemberStatus::Done(stats) => Ok(*stats),
                MemberStatus::Failed(e) => Err(e.clone()),
            })
            .collect()
    }

    /// Grid-total statistics: the [`SimStats::merge`] reduction over
    /// every non-degraded member (running members contribute their
    /// stats so far). Degraded members are excluded — their partial
    /// counters would skew grid averages.
    #[must_use]
    pub fn merged_stats(&self) -> SimStats {
        let mut acc = SimStats::default();
        for (s, m) in self.status.iter().zip(&self.machines) {
            match s {
                MemberStatus::Done(stats) => acc.merge(stats),
                MemberStatus::Running => acc.merge(m.stats()),
                MemberStatus::Failed(_) => {}
            }
        }
        acc
    }

    /// Reduces each member's machine through `f` — the
    /// receiver-transcript reduction hook (read timing buffers, cache
    /// residency, registers) once the fleet has run.
    pub fn map<R>(&self, mut f: impl FnMut(usize, &Machine) -> R) -> Vec<R> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| f(i, m))
            .collect()
    }

    /// Advances every running member by at most `steps` cycles
    /// (lockstep batch stepping). Members that halt or fail mid-batch
    /// stop there; siblings continue. With an effective thread count of
    /// 1 this runs inline on the caller's thread and performs no
    /// allocation — the steady-state fleet-stepping path audited by
    /// `tests/zero_alloc.rs`.
    pub fn step_batch(&mut self, steps: u64) {
        let Fleet {
            specs,
            machines,
            status,
            threads,
        } = self;
        dispatch(specs, machines, status, *threads, |spec, m, st| {
            advance(spec, m, st, Some(steps));
        });
    }

    /// Runs every member to completion (halt, error, or its
    /// `max_cycles` budget) and returns the per-member outcomes.
    pub fn run_to_completion(&mut self) -> Vec<MemberOutcome> {
        let Fleet {
            specs,
            machines,
            status,
            threads,
        } = self;
        dispatch(specs, machines, status, *threads, |spec, m, st| {
            advance(spec, m, st, None);
        });
        self.outcomes()
    }
}

/// Applies a forked member's per-trial config override after its
/// machine has adopted the checkpoint. Only `cfg.noise` may legally
/// differ from the checkpoint's config, and only on a cycle-0
/// checkpoint (no noise has been drawn yet, so swapping the hook is
/// bit-equal to building the machine under the trial config); any other
/// divergence would silently break the forked-vs-serial determinism
/// contract, so debug builds assert it away.
fn apply_start_overrides(m: &mut Machine, spec: &MemberSpec, ck: &Checkpoint) {
    debug_assert!(
        SimConfig {
            noise: ck.config().noise,
            ..spec.cfg
        } == *ck.config(),
        "forked member cfg must match its checkpoint (modulo noise)"
    );
    if spec.cfg.noise != ck.config().noise {
        debug_assert_eq!(
            ck.cycle(),
            0,
            "per-trial noise override requires a cycle-0 checkpoint"
        );
        m.set_noise(spec.cfg.noise);
    }
}

/// Runs a member's prep under panic capture.
fn run_prep(spec: &MemberSpec, m: &mut Machine) -> Result<(), MemberError> {
    let Some(prep) = &spec.prep else {
        return Ok(());
    };
    match panic::catch_unwind(AssertUnwindSafe(|| prep(m))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(MemberError::Sim(e)),
        Err(p) => Err(MemberError::Panicked(panic_message(&*p))),
    }
}

/// Advances one member: by `Some(steps)` cycles (lockstep) or to
/// completion (`None`). Panics and `SimError`s degrade the member in
/// its status slot.
fn advance(spec: &MemberSpec, m: &mut Machine, status: &mut MemberStatus, budget: Option<u64>) {
    if !matches!(status, MemberStatus::Running) {
        return;
    }
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match budget {
        Some(steps) => {
            for _ in 0..steps {
                if m.is_halted() {
                    break;
                }
                if m.cycle() >= spec.max_cycles {
                    return Some(Err(SimError::Timeout {
                        cycles: spec.max_cycles,
                    }));
                }
                if let Err(e) = m.step() {
                    return Some(Err(e));
                }
            }
            m.is_halted().then(|| Ok(*m.stats()))
        }
        None => Some(m.run(spec.max_cycles.saturating_sub(m.cycle()))),
    }));
    match outcome {
        Ok(None) => {} // budget exhausted, still running
        Ok(Some(Ok(stats))) => *status = MemberStatus::Done(stats),
        Ok(Some(Err(e))) => *status = MemberStatus::Failed(MemberError::Sim(e)),
        Err(p) => *status = MemberStatus::Failed(MemberError::Panicked(panic_message(&*p))),
    }
}

/// Work-stealing dispatch over fleet members. Threads claim member
/// indices from a shared atomic counter; each member's machine is owned
/// by exactly one claimant (the per-slot mutex is uncontended — it
/// exists to move `&mut` access across the scope boundary safely).
/// An effective thread count of 1 runs inline with no spawning.
fn dispatch<F>(
    specs: &[MemberSpec],
    machines: &mut [Machine],
    status: &mut [MemberStatus],
    threads: usize,
    f: F,
) where
    F: Fn(&MemberSpec, &mut Machine, &mut MemberStatus) + Sync,
{
    let n = machines.len();
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        for i in 0..n {
            f(&specs[i], &mut machines[i], &mut status[i]);
        }
        return;
    }
    let slots: Vec<Mutex<(&mut Machine, &mut MemberStatus)>> = machines
        .iter_mut()
        .zip(status.iter_mut())
        .map(Mutex::new)
        .collect();
    let next = AtomicUsize::new(0);
    let slots = &slots;
    let next = &next;
    let f = &f;
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut guard = slots[i].lock().unwrap_or_else(PoisonError::into_inner);
                let (m, st) = &mut *guard;
                f(&specs[i], m, st);
            });
        }
    });
}

/// A reusable pool of machines for [`trial_grid_pooled`]: one slot per
/// worker thread, recycled across jobs *and* across calls (calibration
/// loops re-dispatch rounds against the same pool, keeping the
/// PR 5 "one machine across attempts" property).
#[derive(Debug, Default)]
pub struct MachinePool {
    slots: Vec<PoolSlot>,
}

#[derive(Debug, Default)]
struct PoolSlot {
    machine: Option<Machine>,
    program: Option<Arc<Program>>,
}

impl PoolSlot {
    /// Recycles (or builds) this slot's machine for `spec`, reloading
    /// the program only when it actually changed (`Arc::ptr_eq`), then
    /// preps and runs the trial.
    ///
    /// Forked jobs (`spec.start`) skip the reset/reload path entirely:
    /// the checkpoint is restored over whatever the slot held —
    /// [`Machine::restore`] works across shapes and zeroes the previous
    /// occupant's dirty memory tail — and the slot's program cache is
    /// invalidated so a later cold job reloads its own program.
    fn run_job(&mut self, spec: &MemberSpec) -> Result<SimStats, SimError> {
        if let Some(ck) = &spec.start {
            let m = match &mut self.machine {
                Some(m) => {
                    m.restore(ck);
                    m
                }
                None => self.machine.insert(Machine::from_checkpoint(ck)),
            };
            apply_start_overrides(m, spec, ck);
            // The loaded program now comes from the checkpoint, not
            // from a `spec.program` this slot has seen.
            self.program = None;
            if let Some(prep) = &spec.prep {
                prep(m)?;
            }
            m.run(spec.max_cycles.saturating_sub(m.cycle()))?;
            return Ok(*m.stats());
        }
        let kept = match &mut self.machine {
            Some(m) => m.reset_to(spec.cfg),
            None => {
                self.machine = Some(Machine::new(spec.cfg));
                false
            }
        };
        let same_prog = kept
            && self
                .program
                .as_ref()
                .is_some_and(|p| Arc::ptr_eq(p, &spec.program));
        let m = self.machine.as_mut().expect("slot populated above");
        if !same_prog {
            m.load_program(&spec.program);
            self.program = Some(Arc::clone(&spec.program));
        }
        if let Some(prep) = &spec.prep {
            prep(m)?;
        }
        m.run(spec.max_cycles)?;
        Ok(*m.stats())
    }
}

/// Runs every job through a fresh machine pool. See
/// [`trial_grid_pooled`].
pub fn trial_grid<T, F>(jobs: &[MemberSpec], threads: usize, extract: F) -> Vec<Result<T, MemberError>>
where
    T: Send,
    F: Fn(usize, &mut Machine, SimStats) -> T + Sync,
{
    let mut pool = MachinePool::default();
    trial_grid_pooled(&mut pool, jobs, threads, extract)
}

/// The shared per-trial machine-construction path for every sweep
/// driver (fig5 gadget matrix, fig6 trial loops, covert round trips,
/// calibration rounds): runs each job on a pooled machine —
/// [`Machine::reset_to`] between jobs instead of a fresh 4 MB machine
/// per trial — stealing work across `threads` threads (0 = process
/// default), and reduces each completed trial through `extract` on the
/// worker that owns the machine.
///
/// `extract` receives the job index, the halted machine (for receiver
/// transcripts: timing buffers, ciphertext bytes, cache state) and the
/// final stats. Results come back in job order, every job exactly
/// once; a failing or panicking job yields `Err` in its slot without
/// disturbing the others. The output is independent of the thread
/// count and steal order — each job's trial is a pure function of its
/// [`MemberSpec`].
pub fn trial_grid_pooled<T, F>(
    pool: &mut MachinePool,
    jobs: &[MemberSpec],
    threads: usize,
    extract: F,
) -> Vec<Result<T, MemberError>>
where
    T: Send,
    F: Fn(usize, &mut Machine, SimStats) -> T + Sync,
{
    let threads = effective_threads(threads, jobs.len());
    if pool.slots.len() < threads {
        pool.slots.resize_with(threads, PoolSlot::default);
    }
    let run_one = |slot: &mut PoolSlot, i: usize| -> Result<T, MemberError> {
        let spec = &jobs[i];
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            slot.run_job(spec).map(|stats| {
                extract(i, slot.machine.as_mut().expect("slot populated"), stats)
            })
        }));
        match attempt {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => {
                // Controlled stops (timeout, fault, wild pc, deadlock)
                // leave a machine that `reset_to` provably rewinds —
                // the half-stepped-recycling regression test in
                // tests/fleet_differential.rs pins bit-equality. An
                // invariant break is different: the pipeline has
                // already violated its own bookkeeping, so nothing
                // about its state — including what reset() assumes —
                // can be trusted. Rebuild instead of recycling.
                if matches!(
                    e,
                    SimError::InvalidState { .. } | SimError::ResourceExhausted { .. }
                ) {
                    slot.machine = None;
                    slot.program = None;
                }
                Err(MemberError::Sim(e))
            }
            Err(p) => {
                // The machine may be mid-step; drop it rather than
                // recycle poisoned state into the next job.
                slot.machine = None;
                slot.program = None;
                Err(MemberError::Panicked(panic_message(&*p)))
            }
        }
    };
    if threads <= 1 {
        let slot = &mut pool.slots[0];
        return (0..jobs.len()).map(|i| run_one(slot, i)).collect();
    }
    let results: Vec<Mutex<Option<Result<T, MemberError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let results = &results;
    let next = &next;
    let run_one = &run_one;
    thread::scope(|s| {
        for slot in pool.slots.iter_mut().take(threads) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = run_one(slot, i);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    results
        .iter()
        .map(|m| {
            m.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// Best-effort panic payload rendering.
fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_isa::{Asm, Reg};

    fn counting_program(iters: u64) -> Arc<Program> {
        let mut a = Asm::new();
        a.li(Reg::T0, iters);
        a.label("loop");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.halt();
        Arc::new(a.assemble().unwrap())
    }

    #[test]
    fn effective_threads_resolves_and_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }

    #[test]
    fn fleet_runs_members_to_completion() {
        let prog = counting_program(50);
        let spec = FleetSpec::seed_grid(SimConfig::default(), &prog, [1, 2, 3]).with_threads(2);
        let mut fleet = spec.build();
        let outcomes = fleet.run_to_completion();
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            let stats = o.as_ref().expect("member completes");
            assert!(stats.committed >= 100);
        }
        assert_eq!(fleet.running(), 0);
        let merged = fleet.merged_stats();
        let serial: SimStats = outcomes.iter().map(|o| o.as_ref().unwrap()).sum();
        assert_eq!(merged, serial);
    }

    #[test]
    fn lockstep_batches_match_run_to_completion() {
        let prog = counting_program(100);
        let grid = |threads| {
            FleetSpec::seed_grid(SimConfig::default(), &prog, [7, 8]).with_threads(threads)
        };
        let mut stepped = grid(1).build();
        while stepped.running() > 0 {
            stepped.step_batch(64);
        }
        let mut direct = grid(2).build();
        let outcomes = direct.run_to_completion();
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                stepped.outcome(i).unwrap().copied().map_err(Clone::clone),
                o.clone()
            );
        }
    }

    #[test]
    fn member_timeout_degrades_only_that_member() {
        let prog = counting_program(100_000);
        let short = MemberSpec::new(SimConfig::default(), Arc::clone(&prog)).with_max_cycles(64);
        let fine = MemberSpec::new(SimConfig::default(), Arc::clone(&prog));
        let mut fleet = FleetSpec::new().member(short).member(fine).build();
        let outcomes = fleet.run_to_completion();
        assert!(matches!(
            outcomes[0],
            Err(MemberError::Sim(SimError::Timeout { .. }))
        ));
        assert!(outcomes[1].is_ok());
    }

    #[test]
    fn trial_grid_recycles_machines_across_shape_changes() {
        let prog = counting_program(30);
        // More jobs than threads forces reuse; the little-core member
        // in the middle forces a shape rebuild and back.
        let cfgs = [
            SimConfig::default(),
            SimConfig { seed: 99, ..SimConfig::default() },
            SimConfig::little_core(),
            SimConfig::default(),
        ];
        let jobs: Vec<MemberSpec> = cfgs
            .iter()
            .map(|&cfg| MemberSpec::new(cfg, Arc::clone(&prog)))
            .collect();
        let pooled = trial_grid(&jobs, 1, |_, m, stats| (stats.cycles, m.reg(Reg::T0)));
        for (i, r) in pooled.iter().enumerate() {
            let (cycles, t0) = r.as_ref().expect("trial completes");
            assert!(*cycles > 0, "job {i} ran");
            assert_eq!(*t0, 0, "job {i} counted down");
        }
        // Identical cfg/seed jobs must agree bit-for-bit even though
        // one ran on a fresh machine and one on a recycled one.
        assert_eq!(pooled[0], pooled[3]);
    }

    #[test]
    fn trial_grid_is_thread_count_invariant() {
        let prog = counting_program(40);
        let jobs: Vec<MemberSpec> = (0..6)
            .map(|i| {
                MemberSpec::new(
                    SimConfig { seed: 1000 + i, ..SimConfig::default() },
                    Arc::clone(&prog),
                )
            })
            .collect();
        let one = trial_grid(&jobs, 1, |_, _, stats| stats);
        let four = trial_grid(&jobs, 4, |_, _, stats| stats);
        assert_eq!(one, four);
    }

    #[test]
    fn trial_grid_prep_seeds_memory() {
        let mut a = Asm::new();
        a.li(Reg::T1, 0x2000);
        a.ld(Reg::T0, Reg::T1, 0);
        a.sd(Reg::T0, Reg::T1, 8);
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let job = MemberSpec::new(SimConfig::default(), prog)
            .with_prep(|m| {
                m.mem_mut().write_u64(0x2000, 0xdead_beef).unwrap();
                Ok(())
            });
        let out = trial_grid(&[job], 1, |_, m, _| m.mem().read_u64(0x2008).unwrap());
        assert_eq!(*out[0].as_ref().unwrap(), 0xdead_beef);
    }

    /// A program with a long warm-up loop, then a short measured tail
    /// over memory the prep seeds.
    fn warm_tail_program() -> Arc<Program> {
        let mut a = Asm::new();
        a.li(Reg::T0, 200);
        a.label("warm");
        a.ld(Reg::T1, Reg::ZERO, 0x3000);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "warm");
        a.fence();
        a.ld(Reg::T2, Reg::ZERO, 0x2000);
        a.sd(Reg::T2, Reg::ZERO, 0x2008);
        a.halt();
        Arc::new(a.assemble().unwrap())
    }

    /// Warm checkpoint: the shared loop committed, the tail not yet.
    fn warm_checkpoint(cfg: SimConfig, prog: &Arc<Program>) -> Arc<Checkpoint> {
        let mut m = Machine::new(cfg);
        m.load_program(prog);
        m.run_until_committed(600, 1_000_000).unwrap();
        Arc::new(m.snapshot())
    }

    #[test]
    fn forked_trials_match_serial_replay_and_survive_pool_recycling() {
        let prog = warm_tail_program();
        let cfg = SimConfig::default();
        let ck = warm_checkpoint(cfg, &prog);
        let trial_prep = |v: u64| {
            move |m: &mut Machine| {
                m.mem_mut().write_u64(0x2000, v).unwrap();
                Ok(())
            }
        };

        // Serial replay reference: full cold run per trial.
        let serial: Vec<u64> = (0..4u64)
            .map(|v| {
                let mut m = Machine::new(cfg);
                m.load_program(&prog);
                m.mem_mut().write_u64(0x2000, v * 7 + 1).unwrap();
                m.run(1_000_000).unwrap();
                m.mem().read_u64(0x2008).unwrap()
            })
            .collect();

        // Forked grid, interleaved with a cold job of a *different*
        // program so the slot's program-cache invalidation is exercised
        // (checkpoint job → cold job must reload).
        let other = counting_program(10);
        let mut jobs: Vec<MemberSpec> = (0..4u64)
            .map(|v| {
                MemberSpec::new(cfg, Arc::clone(&prog))
                    .with_start(Arc::clone(&ck))
                    .with_prep(trial_prep(v * 7 + 1))
            })
            .collect();
        jobs.insert(2, MemberSpec::new(cfg, Arc::clone(&other)));
        let out = trial_grid(&jobs, 1, |_, m, _| m.mem().read_u64(0x2008).unwrap());
        let forked: Vec<u64> = out
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, r)| *r.as_ref().expect("forked trial completes"))
            .collect();
        assert_eq!(forked, serial, "fork-from-checkpoint == serial replay");
        // The interposed cold job ran its own program to completion.
        assert!(out[2].is_ok());

        // Fleet dispatch takes the same start field.
        let mut spec = FleetSpec::new().with_threads(2);
        for v in 0..4u64 {
            spec.push(
                MemberSpec::new(cfg, Arc::clone(&prog))
                    .with_start(Arc::clone(&ck))
                    .with_prep(trial_prep(v * 7 + 1)),
            );
        }
        let mut fleet = spec.build();
        fleet.run_to_completion();
        let fleet_vals = fleet.map(|_, m| m.mem().read_u64(0x2008).unwrap());
        assert_eq!(fleet_vals, serial);
    }

    #[test]
    fn forked_budget_counts_checkpoint_cycles() {
        let prog = warm_tail_program();
        let cfg = SimConfig::default();
        let ck = warm_checkpoint(cfg, &prog);
        assert!(ck.cycle() > 64);
        let job = MemberSpec::new(cfg, Arc::clone(&prog))
            .with_start(Arc::clone(&ck))
            .with_max_cycles(64);
        let out = trial_grid(std::slice::from_ref(&job), 1, |_, _, s| s.cycles);
        assert!(
            matches!(&out[0], Err(MemberError::Sim(SimError::Timeout { .. }))),
            "budget below the checkpoint cycle must time out, got {:?}",
            out[0]
        );
    }

    #[test]
    fn panicking_job_degrades_without_poisoning_the_pool() {
        let prog = counting_program(20);
        let good = MemberSpec::new(SimConfig::default(), Arc::clone(&prog));
        let bad = MemberSpec::new(SimConfig::default(), Arc::clone(&prog))
            .with_prep(|_| panic!("poisoned member"));
        let jobs = vec![good.clone(), bad, good];
        let out = trial_grid(&jobs, 1, |_, _, stats| stats.cycles);
        assert!(out[0].is_ok());
        assert!(
            matches!(&out[1], Err(MemberError::Panicked(msg)) if msg.contains("poisoned")),
            "unexpected outcome for the poisoned member: {:?}",
            out[1]
        );
        assert!(out[2].is_ok());
        assert_eq!(out[0], out[2], "pool recycling survives the panic in between");
    }
}
