//! Edge cases of the out-of-order pipeline that the attacks implicitly
//! rely on: forwarding semantics, wrong-path containment, flush timing,
//! silent-store batching, and stats consistency.

use pandora_isa::{Asm, Reg, Width};
use pandora_sim::{Machine, OptConfig, SimConfig, TraceEvent};

fn run(cfg: SimConfig, build: impl FnOnce(&mut Asm)) -> Machine {
    let mut a = Asm::new();
    build(&mut a);
    a.halt();
    let prog = a.assemble().unwrap();
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m.enable_trace();
    m.run(10_000_000).unwrap();
    m
}

#[test]
fn partial_overlap_store_then_wider_load_is_exact() {
    // sb writes one byte; the following ld must observe it even though
    // forwarding cannot service the partial overlap directly.
    let m = run(SimConfig::default(), |a| {
        a.li(Reg::T0, 0x1111_1111_1111_1111);
        a.sd(Reg::T0, Reg::ZERO, 0x100);
        a.li(Reg::T1, 0xAB);
        a.sb(Reg::T1, Reg::ZERO, 0x102);
        a.ld(Reg::T2, Reg::ZERO, 0x100);
    });
    assert_eq!(m.reg(Reg::T2), 0x1111_1111_11AB_1111);
}

#[test]
fn narrow_load_forwards_from_exact_narrow_store() {
    let m = run(SimConfig::default(), |a| {
        a.li(Reg::T0, 0x1234_5678);
        a.sw(Reg::T0, Reg::ZERO, 0x200);
        a.lwu(Reg::T1, Reg::ZERO, 0x200);
        a.load(Reg::T2, Reg::ZERO, 0x200, Width::Word, true);
    });
    assert_eq!(m.reg(Reg::T1), 0x1234_5678);
    assert_eq!(m.reg(Reg::T2), 0x1234_5678);
}

#[test]
fn wrong_path_stores_never_reach_memory() {
    let m = run(SimConfig::default(), |a| {
        a.li(Reg::T0, 1);
        a.li(Reg::T1, 0xBAD);
        a.bnez(Reg::T0, "skip"); // initially predicted not-taken
        a.sd(Reg::T1, Reg::ZERO, 0x300); // wrong-path store
        a.label("skip");
        a.fence();
    });
    assert_eq!(m.mem().read_u64(0x300).unwrap(), 0, "squashed store leaked");
    assert!(m.stats().branch_squashes >= 1);
}

#[test]
fn flush_instruction_makes_reload_slow_again() {
    let m = run(SimConfig::default(), |a| {
        // Warm, time a hit, flush, time the re-load.
        a.ld(Reg::T0, Reg::ZERO, 0x4000);
        a.fence();
        a.rdcycle(Reg::S0);
        a.ld(Reg::T0, Reg::ZERO, 0x4000);
        a.fence();
        a.rdcycle(Reg::S1);
        a.flush(Reg::ZERO, 0x4000);
        a.fence();
        a.rdcycle(Reg::S2);
        a.ld(Reg::T0, Reg::ZERO, 0x4000);
        a.fence();
        a.rdcycle(Reg::S3);
    });
    let hit = m.reg(Reg::S1) - m.reg(Reg::S0);
    let miss = m.reg(Reg::S3) - m.reg(Reg::S2);
    assert!(hit + 50 < miss, "hit {hit} vs post-flush {miss}");
}

#[test]
fn set_reg_seeds_initial_state() {
    let mut a = Asm::new();
    a.add(Reg::T2, Reg::T0, Reg::T1);
    a.halt();
    let prog = a.assemble().unwrap();
    let mut m = Machine::new(SimConfig::default());
    m.load_program(&prog);
    m.set_reg(Reg::T0, 40);
    m.set_reg(Reg::T1, 2);
    m.run(10_000).unwrap();
    assert_eq!(m.reg(Reg::T2), 42);
}

#[test]
fn load_waits_for_unknown_older_store_address() {
    // The older store's address depends on a slow load; the younger
    // load to the same address must still see the stored value.
    let m = run(SimConfig::default(), |a| {
        // mem[0x500] = 0x600 (pointer), planted via a store.
        a.li(Reg::T0, 0x600);
        a.sd(Reg::T0, Reg::ZERO, 0x500);
        a.fence();
        a.flush(Reg::ZERO, 0x500); // make the pointer load slow
        a.ld(Reg::T1, Reg::ZERO, 0x500); // slow: addr of the store below
        a.li(Reg::T2, 77);
        a.sd(Reg::T2, Reg::T1, 0); // store to *pointer (addr late)
        a.ld(Reg::T3, Reg::ZERO, 0x600); // must see 77
    });
    assert_eq!(m.reg(Reg::T3), 77);
}

#[test]
fn consecutive_silent_stores_dequeue_in_one_cycle() {
    let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
    let m = run(cfg, |a| {
        // Warm the line and plant matching values. (Three stores: the
        // slow load plus three stores fill one 4-wide commit group.)
        for i in 0..3i64 {
            a.li(Reg::T0, 9);
            a.sd(Reg::T0, Reg::ZERO, 0x700 + 8 * i);
        }
        a.fence();
        // A slow load ahead of the stores holds up in-order commit, so
        // all four stores (already executed and checked silent) commit
        // in one commit group...
        a.ld(Reg::T5, Reg::ZERO, 0x9000);
        // ...and re-storing the same values makes all three silent.
        for i in 0..3i64 {
            a.sd(Reg::T0, Reg::ZERO, 0x700 + 8 * i);
        }
        a.fence();
    });
    assert_eq!(m.stats().silent_stores, 3);
    // All three silent dequeues share one cycle.
    let cycles: Vec<u64> = m
        .trace()
        .events()
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::StoreSilentDequeue { cycle, .. } => Some(cycle),
            _ => None,
        })
        .collect();
    assert_eq!(cycles.len(), 3);
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "silent batch split across cycles: {cycles:?}"
    );
}

#[test]
fn demand_access_counters_are_consistent() {
    let m = run(SimConfig::default(), |a| {
        for i in 0..32i64 {
            a.ld(Reg::T0, Reg::ZERO, 0x1000 + 64 * i);
        }
        for i in 0..32i64 {
            a.ld(Reg::T0, Reg::ZERO, 0x1000 + 64 * i);
        }
        a.fence();
    });
    let s = m.stats();
    // First sweep misses to DRAM; second sweep hits the L1.
    assert!(s.dram_accesses >= 32);
    assert!(s.l1_hits >= 32);
    assert!(s.ipc() > 0.0);
    assert!(s.committed > 64);
}

#[test]
fn baseline_machine_has_no_optimization_activity() {
    let m = run(SimConfig::default(), |a| {
        a.li(Reg::T0, 7);
        a.li(Reg::T1, 0);
        a.mul(Reg::T2, Reg::T0, Reg::T1); // would zero-skip if CS were on
        a.sd(Reg::T2, Reg::ZERO, 0x100);
        a.fence();
        a.sd(Reg::T2, Reg::ZERO, 0x100); // would be silent if SS were on
        a.fence();
    });
    let s = m.stats();
    assert_eq!(s.silent_stores, 0);
    assert_eq!(s.mul_skips, 0);
    assert_eq!(s.reuse_hits, 0);
    assert_eq!(s.vp_predictions, 0);
    assert_eq!(s.rfc_shares, 0);
    assert_eq!(s.dmp_prefetches, 0);
    assert_eq!(s.packed_pairs, 0);
}

#[test]
fn jalr_through_a_function_pointer_table() {
    // Exercises BTB mispredict-then-learn on indirect jumps.
    let m = run(SimConfig::default(), |a| {
        a.li(Reg::S0, 0); // accumulator
        a.li(Reg::T6, 6); // iterations
        a.label("loop");
        a.jal(Reg::RA, "callee");
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "loop");
        a.j("end");
        a.label("callee");
        a.addi(Reg::S0, Reg::S0, 5);
        a.ret(); // jalr via RA
        a.label("end");
    });
    assert_eq!(m.reg(Reg::S0), 30);
}

#[test]
fn store_queue_depth_limits_inflight_stores() {
    // With a 1-entry SQ every store serializes; with the default 5 the
    // same program overlaps them. Timing must reflect it.
    let time = |sq: usize| {
        let mut cfg = SimConfig::default();
        cfg.pipeline.sq_size = sq;
        let m = run(cfg, |a| {
            for i in 0..10i64 {
                a.sd(Reg::ZERO, Reg::ZERO, 0x1000 + 64 * i); // 10 cold lines
            }
            a.fence();
        });
        m.stats().cycles
    };
    assert!(time(1) >= time(8), "{} vs {}", time(1), time(8));
}

#[test]
fn cdp_leaks_pointer_values_at_rest() {
    // The victim loads one field of a struct; the same line holds a
    // "private" pointer the program never dereferences. With the
    // content-directed prefetcher on, the pointer's target line is
    // filled anyway — data at rest leaks (Table I, DMP column).
    let secret_ptr = 0x9_0000u64;
    let run_with = |cdp: bool| {
        let mut cfg = SimConfig::default();
        cfg.opts.cdp = cdp;
        let mut a = Asm::new();
        a.ld(Reg::T0, Reg::ZERO, 0x5000); // demand-load the struct field
        a.fence();
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(cfg);
        m.load_program(&prog);
        m.mem_mut().write_u64(0x5008, secret_ptr).unwrap(); // same line
        m.run(100_000).unwrap();
        m
    };
    let with = run_with(true);
    assert!(
        with.hierarchy().in_l1(secret_ptr) || with.hierarchy().in_l2(secret_ptr),
        "pointer target must be filled"
    );
    assert!(with.stats().cdp_prefetches >= 1);
    let without = run_with(false);
    assert!(
        !without.hierarchy().in_l1(secret_ptr) && !without.hierarchy().in_l2(secret_ptr),
        "baseline must not touch the pointer target"
    );
}
