//! Property-based tests of the memory subsystem and pipeline
//! invariants.

use pandora_isa::{Asm, Reg, Width};
use pandora_sim::{
    Cache, CacheConfig, FaultPlan, Hierarchy, Machine, MemLatency, Memory, Replacement, SimConfig,
};
use proptest::prelude::*;

fn width_strategy() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::Byte),
        Just(Width::Half),
        Just(Width::Word),
        Just(Width::Dword),
    ]
}

proptest! {
    #[test]
    fn memory_read_back_what_was_written(
        addr in 0u64..4000,
        value: u64,
        w in width_strategy()
    ) {
        let mut m = Memory::new(4096);
        m.write(addr, value, w).unwrap();
        let mask = match w.bytes() {
            1 => 0xffu64,
            2 => 0xffff,
            4 => 0xffff_ffff,
            _ => u64::MAX,
        };
        prop_assert_eq!(m.read(addr, w).unwrap(), value & mask);
    }

    #[test]
    fn disjoint_writes_do_not_interfere(
        a in 0u64..256,
        b in 0u64..256,
        va: u64,
        vb: u64
    ) {
        prop_assume!(a.abs_diff(b) >= 1);
        let mut m = Memory::new(8192);
        m.write_u64(a * 8, va).unwrap();
        m.write_u64(b * 8 + 2048, vb).unwrap();
        prop_assert_eq!(m.read_u64(a * 8).unwrap(), va);
        prop_assert_eq!(m.read_u64(b * 8 + 2048).unwrap(), vb);
    }

    #[test]
    fn cache_access_makes_line_resident(addr: u64, seed: u64) {
        let mut c = Cache::new(CacheConfig::l1d(), seed);
        c.access(addr);
        prop_assert!(c.probe(addr));
        prop_assert!(c.probe(c.line_addr(addr)));
    }

    #[test]
    fn cache_flush_removes_exactly_the_line(addr: u64, other: u64) {
        let mut c = Cache::new(CacheConfig::l1d(), 0);
        c.access(addr);
        c.access(other);
        c.flush_line(addr);
        prop_assert!(!c.probe(addr));
        if c.line_addr(other) != c.line_addr(addr) {
            prop_assert!(c.probe(other));
        }
    }

    #[test]
    fn conflicting_addrs_always_share_a_set(addr: u64, n in 0usize..16) {
        for cfg in [CacheConfig::l1d(), CacheConfig::l2()] {
            let c = Cache::new(cfg, 0);
            let e = c.conflicting_addr(addr, n);
            prop_assert_eq!(c.set_index(e), c.set_index(addr));
            prop_assert_ne!(c.line_addr(e), c.line_addr(addr));
        }
    }

    #[test]
    fn lru_set_never_exceeds_ways(
        addrs in prop::collection::vec(any::<u64>(), 1..200),
        ways in 1usize..8
    ) {
        let mut c = Cache::new(
            CacheConfig { sets: 16, ways, line: 64, replacement: Replacement::Lru },
            0,
        );
        for a in &addrs {
            c.access(*a);
        }
        for set in 0..16 {
            prop_assert!(c.resident_lines(set).len() <= ways);
        }
    }

    #[test]
    fn second_access_is_always_faster(addr: u64, seed: u64) {
        let mut h = Hierarchy::new(
            CacheConfig::l1d(),
            CacheConfig::l2(),
            MemLatency::default(),
            seed,
        );
        let first = h.access(addr).latency;
        let second = h.access(addr).latency;
        prop_assert!(second <= first);
        prop_assert_eq!(second, MemLatency::default().l1);
    }

    #[test]
    fn committed_count_matches_dynamic_instructions(iters in 1u64..40) {
        // A counted loop commits exactly (2 li + iters * 3 + 1 halt).
        let mut a = Asm::new();
        a.li(Reg::T0, 0);
        a.li(Reg::T1, iters);
        a.label("l");
        a.addi(Reg::T0, Reg::T0, 1);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "l");
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        let stats = m.run(1_000_000).unwrap();
        prop_assert_eq!(stats.committed, 2 + iters * 3 + 1);
        prop_assert_eq!(m.reg(Reg::T0), iters);
    }

    #[test]
    fn rdcycle_is_monotone_within_a_program(work in 1u64..30) {
        let mut a = Asm::new();
        a.fence();
        a.rdcycle(Reg::S0);
        a.li(Reg::T1, work);
        a.label("l");
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, "l");
        a.fence();
        a.rdcycle(Reg::S1);
        a.halt();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        m.run(1_000_000).unwrap();
        prop_assert!(m.reg(Reg::S1) > m.reg(Reg::S0));
    }

    #[test]
    fn same_fault_plan_seed_gives_identical_stats(seed: u64, n in 0usize..12) {
        // Fault injection must be fully deterministic: two machines
        // running the same program under the same FaultPlan::random
        // seed end with byte-identical statistics and registers.
        let mut a = Asm::new();
        a.li(Reg::T0, 200);
        a.li(Reg::T2, 5);
        a.label("l");
        a.sd(Reg::T2, Reg::ZERO, 0x400);
        a.ld(Reg::T3, Reg::ZERO, 0x400);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "l");
        a.halt();
        let prog = a.assemble().unwrap();
        let run = || {
            let mut m = Machine::new(SimConfig::default());
            m.load_program(&prog);
            m.inject_faults(FaultPlan::random(seed, n, 0..5_000, 0x400..0x800));
            let res = m.run(1_000_000);
            (res, *m.stats(), m.reg(Reg::T3))
        };
        let (ra, sa, xa) = run();
        let (rb, sb, xb) = run();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(xa, xb);
        // Events landing after halt (or on no-op targets) don't fire,
        // so the count is bounded by the plan, not equal to it.
        prop_assert!(sa.faults_injected <= n as u64);
    }
}
