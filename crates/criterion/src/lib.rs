#![warn(missing_docs)]

//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, providing
//! the subset the Pandora workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`].
//!
//! The build environment has no registry access, so the workspace
//! vendors this minimal implementation. It times each benchmark with
//! `std::time::Instant` over `sample_size` samples (auto-scaling the
//! per-sample iteration count toward ~10 ms) and prints median and
//! min/max per-iteration times. There are no plots, no statistical
//! regression, and no baseline comparison — enough to eyeball relative
//! cost, not to publish numbers.

use std::time::{Duration, Instant};

/// Summary of one completed benchmark, in nanoseconds per iteration.
///
/// Collected by [`Criterion::bench_function`] and retrievable with
/// [`Criterion::take_records`], so harnesses can persist results in a
/// machine-readable form (the real criterion writes
/// `target/criterion/**/estimates.json`; this stand-in leaves the
/// serialization format to the caller).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id as passed to `bench_function`.
    pub id: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time.
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Runs closures repeatedly and reports per-iteration timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver: collects samples and prints a report line.
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            target_sample: Duration::from_millis(10),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the calibration target: iteration counts grow until one
    /// sample takes at least this long. Lower it (with a smaller
    /// [`sample_size`](Criterion::sample_size)) for quick smoke runs.
    #[must_use]
    pub fn measurement_millis(mut self, ms: u64) -> Criterion {
        self.target_sample = Duration::from_millis(ms.max(1));
        self
    }

    /// Benchmarks `f`, printing median and min/max per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        // Calibrate: grow the iteration count until one sample reaches
        // the target, so fast routines are not dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.target_sample || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples x {iters} iters)",
            fmt_time(per_iter[0]),
            fmt_time(median),
            fmt_time(per_iter[per_iter.len() - 1]),
            per_iter.len(),
        );
        self.records.push(BenchRecord {
            id: id.to_string(),
            median_ns: median * 1e9,
            min_ns: per_iter[0] * 1e9,
            max_ns: per_iter[per_iter.len() - 1] * 1e9,
            iters,
            samples: per_iter.len(),
        });
        self
    }

    /// Returns the records collected so far without consuming them.
    #[must_use]
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Drains and returns every [`BenchRecord`] collected so far.
    pub fn take_records(&mut self) -> Vec<BenchRecord> {
        std::mem::take(&mut self.records)
    }

    /// Runs after all groups complete (a no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export matching the real crate; benches may use either this or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: a function running each target against
/// a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_records() {
        let mut c = Criterion::default().sample_size(3).measurement_millis(1);
        c.bench_function("unit/spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert_eq!(c.records().len(), 1);
        let recs = c.take_records();
        assert_eq!(recs[0].id, "unit/spin");
        assert_eq!(recs[0].samples, 3);
        assert!(recs[0].min_ns <= recs[0].median_ns);
        assert!(recs[0].median_ns <= recs[0].max_ns);
        assert!(recs[0].iters >= 1);
        assert!(c.records().is_empty());
    }
}
