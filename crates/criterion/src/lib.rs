#![warn(missing_docs)]

//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, providing
//! the subset the Pandora workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`].
//!
//! The build environment has no registry access, so the workspace
//! vendors this minimal implementation. It times each benchmark with
//! `std::time::Instant` over `sample_size` samples (auto-scaling the
//! per-sample iteration count toward ~10 ms) and prints median and
//! min/max per-iteration times. There are no plots, no statistical
//! regression, and no baseline comparison — enough to eyeball relative
//! cost, not to publish numbers.

use std::time::{Duration, Instant};

/// Runs closures repeatedly and reports per-iteration timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver: collects samples and prints a report line.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`, printing median and min/max per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        // Calibrate: grow the iteration count until one sample takes
        // ~10 ms, so fast routines are not dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples x {iters} iters)",
            fmt_time(per_iter[0]),
            fmt_time(median),
            fmt_time(per_iter[per_iter.len() - 1]),
            per_iter.len(),
        );
        self
    }

    /// Runs after all groups complete (a no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export matching the real crate; benches may use either this or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: a function running each target against
/// a shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
