#![warn(missing_docs)]

//! # pandora-attacks
//!
//! The end-to-end proofs of concept from *"Opening Pandora's Box"*
//! (ISCA 2021), running against the workspace's simulated machine:
//!
//! * [`amplify`] — the silent-store **amplification gadget** (Fig 5):
//!   delay + flush sub-gadgets that convert one dynamic store's
//!   silence into a >100-cycle runtime difference.
//! * [`bsaes`] — the full silent-store attack on constant-time
//!   bitsliced AES-128 (§V-A3, Fig 6): chosen-plaintext equality
//!   oracle on the eight 16-bit spill slots, slice recovery, round-10
//!   key derivation, key-schedule inversion.
//! * [`dmp`] — the **universal read gadget** through the 3-level
//!   indirect-memory prefetcher from inside the verified eBPF-style
//!   sandbox (Fig 1, Fig 7), plus the 2-level non-URG comparison
//!   (§IV-D4).
//! * [`stateless`] — computation-simplification and operand-packing
//!   timing oracles (§IV-B).
//! * [`stateful`] — the equality-oracle replay attacks on computation
//!   reuse, value prediction, and register-file compression (§IV-C,
//!   §IV-D1).
//! * [`replay`] — the §IV-C4 width-chunked replay framework: a 64-bit
//!   word recovered through byte-granular silent stores in ≤ 8 × 2^8
//!   experiments.
//! * [`defense`] — measured §VI-A retrofits: MSB-OR vs compression,
//!   Sn keying vs reuse, targeted clearing vs silent stores.

pub mod amplify;
pub mod bsaes;
pub mod defense;
pub mod dmp;
pub mod replay;
pub mod stateful;
pub mod stateless;
pub mod util;

pub use amplify::{AmplifyGadget, FlushKind};
pub use bsaes::{BsaesAttack, GuessJob, RunOutcome};
pub use defense::DefenseOutcome;
pub use dmp::{LeakRun, UrgAttack};
