//! The silent-store **amplification gadget** of paper Figure 5.
//!
//! Goal: convert "was this single dynamic store silent?" into a large
//! (>100-cycle) end-to-end timing difference. Mechanics (§V-A2):
//!
//! 1. a *delay sub-gadget* — a load from a cold line — buys time for
//!    the target store to execute and its SS-load to return while the
//!    target line is still cached;
//! 2. a *flush sub-gadget* — loads that **depend on the delay load's
//!    value** and contend with the target line's cache set — evicts the
//!    target line *after* the SS-load completed but *before* the store
//!    is performed;
//! 3. if the store was **not** silent, performing it now requires a
//!    full miss fill while it head-of-line-blocks the store queue,
//!    stalling the pipeline; if it was silent, it dequeues instantly.
//!
//! Two flavours: set-contention eviction (the paper's, default) and a
//! `flush`-instruction variant for an idealized comparison.

use pandora_isa::{Asm, Reg};
use pandora_sim::{Memory, SimConfig};

/// How the flush sub-gadget evicts the target line.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FlushKind {
    /// LRU set contention: dependent loads to conflicting lines in both
    /// L1 and L2 sets of the target (the Fig 5 mechanism).
    #[default]
    Contention,
    /// An explicit `flush` instruction (idealized variant).
    FlushInstr,
}

/// A configured amplification gadget for one target store address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AmplifyGadget {
    target: u64,
    delay_addr: u64,
    flush_lines: Vec<u64>,
    kind: FlushKind,
}

/// Registers the gadget may clobber (disjoint from the BSAES codegen's
/// working set A0–A7 / S2–S9 / T0–T2).
const DELAY_REG: Reg = Reg::T3;
const FLUSH_REG: Reg = Reg::T4;

impl AmplifyGadget {
    /// Builds a gadget for the store to `target`. `delay_addr` must be
    /// a line the program never otherwise touches (so it is cold);
    /// `flush_region` likewise anchors the conflict lines.
    ///
    /// The conflict stride is the L2 way span (`sets × line`), which —
    /// with the default geometry (L2 sets a multiple of L1 sets) — also
    /// conflicts in the L1, so the chain evicts the target from both
    /// levels.
    #[must_use]
    pub fn new(cfg: &SimConfig, target: u64, delay_addr: u64, kind: FlushKind) -> AmplifyGadget {
        let stride = (cfg.l2.sets * cfg.l2.line) as u64;
        let target_line = target & !(cfg.l1d.line as u64 - 1);
        let n = cfg.l2.ways + 1;
        let flush_lines = (1..=n as u64).map(|k| target_line + stride * k).collect();
        AmplifyGadget {
            target,
            delay_addr,
            flush_lines,
            kind,
        }
    }

    /// The conflict lines the contention flush walks.
    #[must_use]
    pub fn flush_lines(&self) -> &[u64] {
        &self.flush_lines
    }

    /// Plants the pointer the delay load returns (the base of the
    /// flush chain), establishing the data dependency that orders the
    /// flush after the SS-load.
    ///
    /// # Panics
    ///
    /// Panics if the gadget addresses fall outside memory — a layout
    /// bug.
    pub fn setup_memory(&self, mem: &mut Memory) {
        if self.kind == FlushKind::Contention {
            mem.write_u64(self.delay_addr, self.flush_lines[0])
                .expect("gadget addresses in memory");
        }
    }

    /// Emits the delay + flush sub-gadgets. Call immediately before the
    /// target store (Fig 5's layout).
    pub fn emit(&self, a: &mut Asm) {
        match self.kind {
            FlushKind::Contention => {
                // Delay sub-gadget: cold-miss load returning the flush base.
                a.ld(DELAY_REG, Reg::ZERO, self.delay_addr as i64);
                // Flush sub-gadget: loads of the conflict lines, each
                // address-dependent on the delay load's value.
                let base = self.flush_lines[0];
                for &line in &self.flush_lines {
                    a.ld(FLUSH_REG, DELAY_REG, (line - base) as i64);
                }
            }
            FlushKind::FlushInstr => {
                // Delay still orders the flush after the SS-load.
                a.ld(DELAY_REG, Reg::ZERO, self.delay_addr as i64);
                // Make the flush address depend on the delay value:
                // delay slot holds 0 here, so target + 0.
                a.flush(DELAY_REG, self.target as i64);
            }
        }
    }

    /// For the `FlushInstr` variant the delay slot must hold zero so
    /// `flush DELAY_REG, target` resolves to the target line.
    pub fn setup_memory_flush_variant(&self, mem: &mut Memory) {
        if self.kind == FlushKind::FlushInstr {
            mem.write_u64(self.delay_addr, 0).expect("gadget in memory");
        }
    }

    /// Emits the store-queue pressure tail: stores queued immediately
    /// behind the target store, so that while a non-silent target
    /// head-of-line blocks the SQ on its miss fill, dispatch stalls —
    /// the "SQ fills and stalls the pipeline" amplification of §V-A2.
    ///
    /// The stores reuse the gadget's own conflict lines (resident in
    /// the L1 after the flush loads, so the tail drains fast and adds
    /// the same small constant to both outcomes) and store a value
    /// guaranteed non-silent (the non-zero flush base over zeroed
    /// gadget memory).
    pub fn emit_pressure(&self, a: &mut Asm) {
        let n = self.flush_lines.len().min(5);
        for k in 0..n {
            let offset = (self.flush_lines[k] - self.flush_lines[0] + 8) as i64;
            a.sd(DELAY_REG, DELAY_REG, offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{assemble, run_machine};
    use pandora_sim::OptConfig;

    /// A minimal Fig 5 scenario: one target store whose silence depends
    /// on the value at the target address; the gadget amplifies it.
    fn gadget_experiment(kind: FlushKind, old_value: u64, store_value: u64) -> u64 {
        let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
        let target = 0x1_0000u64;
        let delay = 0x8_0000u64;
        let g = AmplifyGadget::new(&cfg, target, delay, kind);
        let prog = assemble(|a| {
            // Warm the target line (precondition: line(S) present) and
            // the lines the trailing stores will hit.
            a.ld(Reg::T0, Reg::ZERO, target as i64);
            for i in 1..6i64 {
                a.ld(Reg::T0, Reg::ZERO, (target + 0x1000) as i64 + 64 * i);
            }
            a.fence();
            a.li(Reg::T0, store_value);
            g.emit(a);
            a.sd(Reg::T0, Reg::ZERO, target as i64); // the target store
            // Trailing stores (different, warm lines) pile into the SQ
            // behind it: head-of-line blocking amplifies the miss.
            for i in 1..6i64 {
                a.sd(Reg::T0, Reg::ZERO, (target + 0x1000) as i64 + 64 * i);
            }
            a.fence();
        });
        let mut m = pandora_sim::Machine::new(cfg);
        m.load_program(&prog);
        m.mem_mut().write_u64(target, old_value).unwrap();
        g.setup_memory(m.mem_mut());
        g.setup_memory_flush_variant(m.mem_mut());
        m.run(1_000_000).unwrap();
        m.stats().cycles
    }

    #[test]
    fn contention_gadget_amplifies_one_store() {
        let silent = gadget_experiment(FlushKind::Contention, 42, 42);
        let loud = gadget_experiment(FlushKind::Contention, 41, 42);
        assert!(
            silent + 100 <= loud,
            "paper requires >100-cycle separation: silent={silent} loud={loud}"
        );
    }

    #[test]
    fn flush_instr_gadget_also_amplifies() {
        let silent = gadget_experiment(FlushKind::FlushInstr, 42, 42);
        let loud = gadget_experiment(FlushKind::FlushInstr, 41, 42);
        assert!(
            silent + 100 <= loud,
            "silent={silent} loud={loud}"
        );
    }

    #[test]
    fn without_gadget_difference_is_small() {
        let time = |old: u64| {
            let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
            let target = 0x1_0000u64;
            let prog = assemble(|a| {
                a.ld(Reg::T0, Reg::ZERO, target as i64);
                a.fence();
                a.li(Reg::T0, 42);
                a.sd(Reg::T0, Reg::ZERO, target as i64);
                a.fence();
            });
            let mut m = pandora_sim::Machine::new(cfg);
            m.load_program(&prog);
            m.mem_mut().write_u64(target, old).unwrap();
            m.run(1_000_000).unwrap();
            m.stats().cycles
        };
        let silent = time(42);
        let loud = time(41);
        assert!(
            loud.abs_diff(silent) < 30,
            "un-amplified difference should be modest: {silent} vs {loud}"
        );
    }

    #[test]
    fn conflict_lines_share_the_target_set() {
        let cfg = SimConfig::default();
        let g = AmplifyGadget::new(&cfg, 0x1_0040, 0x8_0000, FlushKind::Contention);
        let l1 = pandora_sim::Cache::new(cfg.l1d, 0);
        let l2 = pandora_sim::Cache::new(cfg.l2, 0);
        assert!(g.flush_lines().len() > cfg.l2.ways);
        for &line in g.flush_lines() {
            assert_eq!(l1.set_index(line), l1.set_index(0x1_0040), "L1 set");
            assert_eq!(l2.set_index(line), l2.set_index(0x1_0040), "L2 set");
        }
    }

    #[test]
    fn run_machine_helper_works() {
        let prog = assemble(|a| {
            a.li(Reg::T0, 3);
        });
        let m = run_machine(SimConfig::default(), &prog);
        assert!(m.is_halted());
    }
}
