//! The end-to-end silent-store attack on bitsliced AES-128 (§V-A3,
//! Fig 6).
//!
//! Scenario (cloud threat model): a server worker thread encrypts
//! requests on a shared stack. The victim's encryption leaves the eight
//! 16-bit final-SubBytes slices in fixed stack slots; the attacker then
//! triggers its *own* encryption (with its own key and a **chosen
//! plaintext**) whose corresponding spill store overwrites a slot —
//! silently iff the attacker's slice value equals the victim's. The
//! amplification gadget turns that single store's silence into a
//! >100-cycle runtime difference the attacker can observe per request.
//!
//! Because the attacker knows its own key it can run the cipher
//! backwards (chosen-plaintext inversion) to make its slice equal any
//! 16-bit guess, giving an equality oracle per experiment: at most
//! 65 536 guesses per slice, 8 × 65 536 = 524 288 total (§V-A3).
//! Recovering all eight slices reconstructs the state after the final
//! SubBytes; with the victim's (public) ciphertext that yields the
//! round-10 key, and the key schedule inverts to the master key.

use std::sync::Arc;

use pandora_crypto::aes_ref;
use pandora_crypto::bitslice::{self, Slices};
use pandora_crypto::codegen::{emit_encrypt, BsaesLayout, SpillHook};
use pandora_crypto::{Block, RoundKeys};
use pandora_channels::adaptive::majority_vote;
use pandora_channels::retry::{RetryError, RetryPolicy};
use pandora_isa::{Asm, Program};
use pandora_sim::fleet::{self, MemberError, MemberSpec};
use pandora_sim::{Checkpoint, FaultPlan, Machine, NoiseConfig, OptConfig, SimConfig, SimError};

use crate::amplify::{AmplifyGadget, FlushKind};
use crate::util::precondition_noise;

/// Address map of the attack scenario.
const VICTIM_BASE: u64 = 0x1_0000;
const ATTACKER_AUX: u64 = 0x6_0000;
const DELAY_ADDR: u64 = 0x8_0000;
/// Noise preconditioning randomly pre-warms lines of the victim's own
/// working set, so per-trial timings vary the way co-tenant cache
/// pressure varies them in the paper's experiment.
const NOISE_BASE: u64 = VICTIM_BASE;
const NOISE_SPAN: u64 = 0x800;

/// One measured experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// End-to-end cycles (victim request + attacker request).
    pub cycles: u64,
    /// The victim's ciphertext (public output the attacker sees).
    pub victim_ct: Block,
}

/// One guess's experiment in a [`BsaesAttack::measure_guess_grid`]
/// batch: the guess plus optional per-job environment overrides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GuessJob {
    /// The 16-bit slice guess to measure.
    pub guess: u16,
    /// Overrides the attack's noise configuration for this job only.
    pub noise: Option<NoiseConfig>,
    /// Seed for cache-preconditioning noise (see
    /// [`BsaesAttack::try_run_with_plaintext`]).
    pub noise_seed: Option<u64>,
}

impl GuessJob {
    /// A job measuring `guess` under the attack's own environment.
    #[must_use]
    pub fn new(guess: u16) -> GuessJob {
        GuessJob {
            guess,
            noise: None,
            noise_seed: None,
        }
    }
}

/// The configured attack: keys, target slice, layouts, gadget.
#[derive(Clone, Debug)]
pub struct BsaesAttack {
    cfg: SimConfig,
    victim_rk: RoundKeys,
    attacker_rk: RoundKeys,
    victim_pt: Block,
    target_slice: usize,
    lay_victim: BsaesLayout,
    lay_attacker: BsaesLayout,
    gadget: AmplifyGadget,
    /// Nominal slice values the chosen plaintext keeps fixed in the
    /// non-target positions.
    nominal: Slices,
    /// The two-request program, built once and shared (by reference)
    /// with every fleet member measuring a guess.
    program: Arc<Program>,
    /// Fault plan installed on every measuring machine (noise
    /// injection for robustness experiments).
    fault_plan: Option<FaultPlan>,
    /// Worker threads for guess grids (0 = process-wide fleet default).
    fleet_threads: usize,
}

impl BsaesAttack {
    /// Configures the attack against `victim_key`; the victim is
    /// assumed to repeatedly encrypt the public `victim_pt`.
    ///
    /// # Panics
    ///
    /// Panics if `target_slice >= 8`.
    #[must_use]
    pub fn new(
        victim_key: Block,
        attacker_key: Block,
        victim_pt: Block,
        target_slice: usize,
    ) -> BsaesAttack {
        BsaesAttack::with_amplification(victim_key, attacker_key, victim_pt, target_slice, true)
    }

    /// The *unamplified* control: identical scenario and measurement,
    /// but the amplification gadget is never emitted, so a silent
    /// store saves only its own dequeue (a couple of cycles). The
    /// noise-robustness experiment compares this control's separation
    /// against the amplified attack's as noise intensity rises —
    /// the paper's Fig 5 argument.
    ///
    /// # Panics
    ///
    /// Panics if `target_slice >= 8`.
    #[must_use]
    pub fn control(
        victim_key: Block,
        attacker_key: Block,
        victim_pt: Block,
        target_slice: usize,
    ) -> BsaesAttack {
        BsaesAttack::with_amplification(victim_key, attacker_key, victim_pt, target_slice, false)
    }

    fn with_amplification(
        victim_key: Block,
        attacker_key: Block,
        victim_pt: Block,
        target_slice: usize,
        amplified: bool,
    ) -> BsaesAttack {
        assert!(target_slice < 8, "BSAES spills eight slices");
        let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
        let lay_victim = BsaesLayout::at(VICTIM_BASE);
        // The attacker request reuses the same worker stack
        // (state/scratch/spill) but has its own key and buffers.
        let lay_attacker = BsaesLayout {
            rk: ATTACKER_AUX,
            pt: ATTACKER_AUX + 704,
            ct: ATTACKER_AUX + 704 + 16,
            ..lay_victim
        };
        let target_addr = lay_victim.spill_slot(target_slice);
        let gadget = AmplifyGadget::new(&cfg, target_addr, DELAY_ADDR, FlushKind::Contention);
        let attacker_rk = RoundKeys::expand(&attacker_key);
        let nominal = bitslice::final_subbytes_slices(&attacker_rk, &[0u8; 16]);
        let program = BsaesAttack::build_program_for(
            &lay_victim,
            &lay_attacker,
            target_slice,
            amplified.then_some(&gadget),
        );
        BsaesAttack {
            cfg,
            victim_rk: RoundKeys::expand(&victim_key),
            attacker_rk,
            victim_pt,
            target_slice,
            lay_victim,
            lay_attacker,
            gadget,
            nominal,
            program: Arc::new(program),
            fault_plan: None,
            fleet_threads: 0,
        }
    }

    /// Sets the worker-thread count used when measuring guess grids
    /// (0 = the process-wide fleet default; see
    /// [`pandora_sim::fleet::set_default_threads`]).
    pub fn set_fleet_threads(&mut self, threads: usize) {
        self.fleet_threads = threads;
    }

    /// Installs (or clears) a fault plan applied to every subsequent
    /// measuring run — used to model a disturbed machine when
    /// exercising retry-based recovery.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Sets the environmental-noise configuration of every subsequent
    /// measuring machine (see `pandora_sim::noise`); the noise-tolerant
    /// recovery paths vary its seed per repetition round.
    pub fn set_noise(&mut self, noise: NoiseConfig) {
        self.cfg.noise = noise;
    }

    /// The machine configuration (silent stores enabled).
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The slice index under attack.
    #[must_use]
    pub fn target_slice(&self) -> usize {
        self.target_slice
    }

    /// The victim's true slice value — *ground truth for experiment
    /// validation only*; the attack itself never reads it.
    #[must_use]
    pub fn true_slice_value(&self) -> u16 {
        bitslice::final_subbytes_slices(&self.victim_rk, &self.victim_pt)[self.target_slice]
    }

    /// The chosen plaintext that makes the attacker's target slice
    /// equal `guess` (other slices pinned to the nominal values).
    #[must_use]
    pub fn plaintext_for_guess(&self, guess: u16) -> Block {
        let mut target = self.nominal;
        target[self.target_slice] = guess;
        aes_ref::plaintext_for_final_subbytes(&self.attacker_rk, &bitslice::unbitslice(&target))
    }

    /// Builds the two-request program: victim encryption (no gadget),
    /// then attacker encryption with the amplification gadget on the
    /// target spill store.
    fn build_program_for(
        lay_victim: &BsaesLayout,
        lay_attacker: &BsaesLayout,
        target: usize,
        gadget: Option<&AmplifyGadget>,
    ) -> Program {
        let mut a = Asm::new();
        emit_encrypt(&mut a, lay_victim, |_, _, _| {});
        emit_encrypt(&mut a, lay_attacker, |asm, point, k| {
            if k == target {
                if let Some(gadget) = gadget {
                    match point {
                        SpillHook::Before => gadget.emit(asm),
                        SpillHook::After => gadget.emit_pressure(asm),
                    }
                }
            }
        });
        a.halt();
        a.assemble().expect("attack program assembles")
    }

    /// Runs one experiment with the given attacker plaintext.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails; use
    /// [`BsaesAttack::try_run_with_plaintext`] to recover instead.
    #[must_use]
    pub fn run_with_plaintext(&self, attacker_pt: &Block, noise_seed: Option<u64>) -> RunOutcome {
        self.try_run_with_plaintext(attacker_pt, noise_seed)
            .expect("attack experiment completed abnormally")
    }

    /// Runs one experiment with the given attacker plaintext, surfacing
    /// simulator failures (timeouts, deadlocks under injected faults)
    /// as errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the measuring run.
    pub fn try_run_with_plaintext(
        &self,
        attacker_pt: &Block,
        noise_seed: Option<u64>,
    ) -> Result<RunOutcome, SimError> {
        self.run_grid(&[(self.cfg, *attacker_pt, noise_seed)])
            .remove(0)
    }

    /// Builds the shared warm state every experiment starts from: the
    /// two-request program loaded, both parties' round keys, the
    /// victim plaintext, and the gadget working set written. Taken at
    /// cycle 0, so forked jobs may override the noise configuration
    /// per trial and still be bit-equal to fresh construction.
    fn warm_checkpoint(&self) -> Arc<Checkpoint> {
        let mut warm = Machine::new(self.cfg);
        warm.load_program(&self.program);
        let mem = warm.mem_mut();
        mem.write_bytes(self.lay_victim.rk, &BsaesLayout::round_key_bytes(&self.victim_rk))
            .expect("victim layout in memory");
        mem.write_bytes(
            self.lay_attacker.rk,
            &BsaesLayout::round_key_bytes(&self.attacker_rk),
        )
        .expect("attacker layout in memory");
        mem.write_bytes(self.lay_victim.pt, &self.victim_pt)
            .expect("victim plaintext in memory");
        self.gadget.setup_memory(mem);
        Arc::new(warm.snapshot())
    }

    /// Runs one experiment per `(config, attacker plaintext, noise
    /// seed)` job as a fleet grid: the shared scenario state (round
    /// keys, victim plaintext, gadget working set) is written once
    /// into a warm cycle-0 [`Checkpoint`] and every member forks from
    /// it, applying only its per-trial delta — the attacker plaintext,
    /// optional cache preconditioning, and optional fault plan — on a
    /// recycled pool machine. Outcomes come back in job order
    /// regardless of the thread count; a failed run yields `Err` in
    /// its own slot without disturbing sibling experiments.
    ///
    /// # Panics
    ///
    /// Resurfaces a panic from a measuring run after sibling jobs have
    /// completed — a harness bug, not a measurement condition.
    fn run_grid(
        &self,
        jobs: &[(SimConfig, Block, Option<u64>)],
    ) -> Vec<Result<RunOutcome, SimError>> {
        let warm = self.warm_checkpoint();
        let specs: Vec<MemberSpec> = jobs
            .iter()
            .map(|&(cfg, attacker_pt, noise_seed)| {
                let attacker_pt_addr = self.lay_attacker.pt;
                let fault_plan = self.fault_plan.clone();
                MemberSpec::new(cfg, Arc::clone(&self.program))
                    .with_start(Arc::clone(&warm))
                    .with_max_cycles(50_000_000)
                    .with_prep(move |m| {
                        m.mem_mut()
                            .write_bytes(attacker_pt_addr, &attacker_pt)
                            .expect("attacker plaintext in memory");
                        if let Some(seed) = noise_seed {
                            precondition_noise(m, seed, 4, NOISE_BASE, NOISE_SPAN);
                        }
                        if let Some(plan) = &fault_plan {
                            m.inject_faults(plan.clone());
                        }
                        Ok(())
                    })
            })
            .collect();
        let ct_addr = self.lay_victim.ct;
        fleet::trial_grid(&specs, self.fleet_threads, move |_, m, stats| {
            let mut victim_ct = [0u8; 16];
            victim_ct.copy_from_slice(m.mem().read_bytes(ct_addr, 16).expect("ct"));
            RunOutcome {
                cycles: stats.cycles,
                victim_ct,
            }
        })
        .into_iter()
        .map(|r| r.map_err(MemberError::unwrap_sim))
        .collect()
    }

    /// Measures a whole batch of guesses as one fleet grid (shared
    /// program, recycled machines, work-stealing threads), returning
    /// outcomes in job order.
    ///
    /// # Errors
    ///
    /// The first (lowest-index) job whose measuring run fails — the
    /// same error the equivalent serial loop would have stopped on.
    pub fn measure_guess_grid(&self, jobs: &[GuessJob]) -> Result<Vec<RunOutcome>, SimError> {
        let raw: Vec<(SimConfig, Block, Option<u64>)> = jobs
            .iter()
            .map(|j| {
                let mut cfg = self.cfg;
                if let Some(noise) = j.noise {
                    cfg.noise = noise;
                }
                (cfg, self.plaintext_for_guess(j.guess), j.noise_seed)
            })
            .collect();
        self.run_grid(&raw).into_iter().collect()
    }

    /// Measures one guess: runtime of the experiment with the chosen
    /// plaintext for `guess`.
    #[must_use]
    pub fn measure_guess(&self, guess: u16, noise_seed: Option<u64>) -> RunOutcome {
        self.run_with_plaintext(&self.plaintext_for_guess(guess), noise_seed)
    }

    /// Fallible form of [`BsaesAttack::measure_guess`].
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the measuring run.
    pub fn try_measure_guess(
        &self,
        guess: u16,
        noise_seed: Option<u64>,
    ) -> Result<RunOutcome, SimError> {
        self.try_run_with_plaintext(&self.plaintext_for_guess(guess), noise_seed)
    }

    /// Recovers the target slice by measuring every guess in `guesses`
    /// and returning the one with the minimum runtime, provided it is
    /// separated from the rest by `min_gap` cycles.
    ///
    /// A full search covers `0..=u16::MAX` (the paper's 65 536
    /// experiments per slice); tests and examples pass a window
    /// containing the true value to bound running time.
    #[must_use]
    pub fn recover_slice(
        &self,
        guesses: impl IntoIterator<Item = u16>,
        min_gap: u64,
    ) -> Option<u16> {
        let jobs: Vec<GuessJob> = guesses.into_iter().map(GuessJob::new).collect();
        let outs = self
            .measure_guess_grid(&jobs)
            .expect("attack experiment completed abnormally");
        BsaesAttack::gap_checked_argmin(
            jobs.iter().map(|j| j.guess).zip(outs.iter().map(|o| o.cycles)),
            min_gap,
        )
    }

    /// The recovery decision rule shared by every slice driver: the
    /// guess with the minimum runtime, provided the runner-up is at
    /// least `min_gap` cycles slower.
    fn gap_checked_argmin(
        samples: impl IntoIterator<Item = (u16, u64)>,
        min_gap: u64,
    ) -> Option<u16> {
        let mut best: Option<(u16, u64)> = None;
        let mut second: Option<u64> = None;
        for (g, t) in samples {
            match best {
                None => best = Some((g, t)),
                Some((_, bt)) if t < bt => {
                    second = Some(bt);
                    best = Some((g, t));
                }
                Some(_) => {
                    second = Some(second.map_or(t, |s| s.min(t)));
                }
            }
        }
        let (g, t) = best?;
        match second {
            Some(s) if s >= t + min_gap => Some(g),
            _ => None,
        }
    }

    /// Like [`BsaesAttack::recover_slice`], but the guess grid is
    /// retried under `policy` with **failed experiments only**
    /// re-dispatched: a run that fails with a [`SimError`] (e.g. a
    /// deadlock under an injected fault) is re-measured on a clean
    /// machine — disturbances are transient, so retry rounds drop the
    /// installed fault plan — while already-measured guesses keep
    /// their outcomes.
    ///
    /// # Errors
    ///
    /// [`RetryError::Sim`] if some guess could not be measured within
    /// `policy.max_attempts`.
    pub fn recover_slice_with_retry(
        &self,
        guesses: impl IntoIterator<Item = u16>,
        min_gap: u64,
        policy: &RetryPolicy,
    ) -> Result<Option<u16>, RetryError> {
        let guesses: Vec<u16> = guesses.into_iter().collect();
        let mut clean = self.clone();
        clean.fault_plan = None;
        let outs = policy.retry_failed(guesses.len(), |pending, attempt| {
            let atk: &BsaesAttack = if attempt == 0 { self } else { &clean };
            let jobs: Vec<(SimConfig, Block, Option<u64>)> = pending
                .iter()
                .map(|&i| (atk.cfg, atk.plaintext_for_guess(guesses[i]), None))
                .collect();
            atk.run_grid(&jobs)
        })?;
        Ok(BsaesAttack::gap_checked_argmin(
            guesses
                .iter()
                .copied()
                .zip(outs.iter().map(|o| o.cycles)),
            min_gap,
        ))
    }

    /// Noise-tolerant [`BsaesAttack::recover_slice`]: runs the whole
    /// guess sweep `redundancy` times, each round under a distinct
    /// noise seed, takes each round's gap-checked argmin as one vote,
    /// and majority-decodes across rounds — repetition coding at the
    /// attack level, trading samples for accuracy exactly as a real
    /// campaign does.
    ///
    /// Every guess *within* a round shares the round's seed: the
    /// measurement is differential (argmin over near-identical
    /// programs), so a deterministic per-round environment is
    /// common-mode and cancels, while round-to-round reseeding gives
    /// the vote independent looks at the residual disturbance.
    ///
    /// Redundancy 1 is the unhardened baseline *under the same varying
    /// environment* (one noisy sweep, no voting), which is what the
    /// robustness experiment compares against.
    ///
    /// # Errors
    ///
    /// The first measuring run that fails outright.
    pub fn recover_slice_vote(
        &self,
        guesses: &[u16],
        min_gap: u64,
        redundancy: usize,
    ) -> Result<Option<u16>, SimError> {
        if guesses.is_empty() {
            return Ok(None);
        }
        // Every (round, guess) experiment is one member of a single
        // fleet grid; the per-round noise reseeding rides in each
        // member's config, so the measurements are bit-identical to
        // the former serial double loop.
        let mut jobs: Vec<(SimConfig, Block, Option<u64>)> = Vec::new();
        for r in 0..redundancy.max(1) as u64 {
            let mut cfg = self.cfg;
            cfg.noise.seed = self
                .cfg
                .noise
                .seed
                .wrapping_add(r.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            for &g in guesses {
                jobs.push((cfg, self.plaintext_for_guess(g), None));
            }
        }
        let outs: Vec<RunOutcome> = self.run_grid(&jobs).into_iter().collect::<Result<_, _>>()?;
        let votes: Vec<Option<u16>> = outs
            .chunks(guesses.len())
            .map(|round| {
                BsaesAttack::gap_checked_argmin(
                    guesses
                        .iter()
                        .copied()
                        .zip(round.iter().map(|o| o.cycles)),
                    min_gap,
                )
            })
            .collect();
        Ok(majority_vote(&votes))
    }

    /// Noise-tolerant [`BsaesAttack::recover_key`]: every slice is
    /// recovered via [`BsaesAttack::recover_slice_vote`], with this
    /// attack's noise configuration carried into each per-slice attack.
    ///
    /// # Errors
    ///
    /// The first measuring run that fails outright.
    #[allow(clippy::needless_range_loop)]
    pub fn recover_key_vote(
        &self,
        window: impl Fn(usize) -> Vec<u16>,
        min_gap: u64,
        redundancy: usize,
    ) -> Result<Option<Block>, SimError> {
        let mut slices = [0u16; 8];
        let mut victim_ct = None;
        for k in 0..8 {
            let mut per_slice = BsaesAttack::new(
                self.victim_rk.master_key(),
                self.attacker_rk.master_key(),
                self.victim_pt,
                k,
            );
            // Carry the environment (including a per-slice seed shift,
            // so no two slices fight the identical noise stream).
            let mut noise = self.cfg.noise;
            noise.seed = noise.seed.wrapping_add(k as u64 * 0x5851_f42d_4c95_7f2d);
            per_slice.set_noise(noise);
            let Some(g) = per_slice.recover_slice_vote(&window(k), min_gap, redundancy)? else {
                return Ok(None);
            };
            slices[k] = g;
            if victim_ct.is_none() {
                victim_ct = Some(per_slice.try_measure_guess(g, None)?.victim_ct);
            }
        }
        let state = bitslice::unbitslice(&slices);
        let Some(ct) = victim_ct else { return Ok(None) };
        let k10 = aes_ref::round10_key_from_leak(&state, &ct);
        Ok(Some(RoundKeys::from_round10(&k10).master_key()))
    }

    /// The full key-recovery pipeline over per-slice guess windows:
    /// recover all eight slices, rebuild the final-SubBytes state,
    /// derive the round-10 key from the victim ciphertext, and invert
    /// the key schedule.
    ///
    /// `window` maps each slice index to the guesses to try.
    #[must_use]
    #[allow(clippy::needless_range_loop)]
    pub fn recover_key(
        &self,
        window: impl Fn(usize) -> Vec<u16>,
        min_gap: u64,
    ) -> Option<Block> {
        let mut slices = [0u16; 8];
        let mut victim_ct = None;
        for k in 0..8 {
            let per_slice = BsaesAttack::new(
                self.victim_rk.master_key(),
                self.attacker_rk.master_key(),
                self.victim_pt,
                k,
            );
            let g = per_slice.recover_slice(window(k), min_gap)?;
            slices[k] = g;
            if victim_ct.is_none() {
                victim_ct = Some(per_slice.measure_guess(g, None).victim_ct);
            }
        }
        let state = bitslice::unbitslice(&slices);
        let k10 = aes_ref::round10_key_from_leak(&state, &victim_ct?);
        Some(RoundKeys::from_round10(&k10).master_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (Block, Block, Block) {
        let victim_key: Block = std::array::from_fn(|i| (i * 13 + 7) as u8);
        let attacker_key: Block = std::array::from_fn(|i| (i * 31 + 5) as u8);
        let victim_pt: Block = std::array::from_fn(|i| (i * 3) as u8);
        (victim_key, attacker_key, victim_pt)
    }

    #[test]
    fn chosen_plaintext_pins_the_target_slice() {
        let (vk, ak, vpt) = keys();
        let atk = BsaesAttack::new(vk, ak, vpt, 3);
        let pt = atk.plaintext_for_guess(0xBEEF);
        let slices = bitslice::final_subbytes_slices(&RoundKeys::expand(&ak), &pt);
        assert_eq!(slices[3], 0xBEEF);
    }

    #[test]
    fn correct_guess_is_measurably_faster() {
        let (vk, ak, vpt) = keys();
        let atk = BsaesAttack::new(vk, ak, vpt, 0);
        let truth = atk.true_slice_value();
        let hit = atk.measure_guess(truth, None).cycles;
        let miss = atk.measure_guess(truth ^ 0x1234, None).cycles;
        assert!(
            hit + 100 <= miss,
            "amplified single-store difference: hit={hit} miss={miss}"
        );
    }

    #[test]
    fn recover_slice_from_window() {
        let (vk, ak, vpt) = keys();
        let atk = BsaesAttack::new(vk, ak, vpt, 5);
        let truth = atk.true_slice_value();
        let lo = truth.saturating_sub(4);
        let window: Vec<u16> = (0..12).map(|d| lo.wrapping_add(d)).collect();
        assert_eq!(atk.recover_slice(window, 60), Some(truth));
    }

    #[test]
    fn injected_wedge_surfaces_as_structured_error() {
        use pandora_sim::FaultKind;
        let (vk, ak, vpt) = keys();
        let mut atk = BsaesAttack::new(vk, ak, vpt, 0);
        let truth = atk.true_slice_value();
        atk.set_fault_plan(Some(FaultPlan::single(200, FaultKind::DroppedCompletion)));
        let err = atk.try_measure_guess(truth, None).unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock { .. }),
            "a lost completion must wedge into a watchdog deadlock, got {err}"
        );
    }

    #[test]
    fn retry_recovers_slice_despite_injected_wedge() {
        use pandora_sim::FaultKind;
        let (vk, ak, vpt) = keys();
        let mut atk = BsaesAttack::new(vk, ak, vpt, 1);
        let truth = atk.true_slice_value();
        // Every first-attempt run wedges; retries measure clean.
        atk.set_fault_plan(Some(FaultPlan::single(200, FaultKind::DroppedCompletion)));
        let lo = truth.saturating_sub(2);
        let window: Vec<u16> = (0..6).map(|d| lo.wrapping_add(d)).collect();
        let got = atk
            .recover_slice_with_retry(window, 60, &RetryPolicy::default())
            .unwrap();
        assert_eq!(got, Some(truth));
    }

    #[test]
    fn control_attack_lacks_amplified_separation() {
        let (vk, ak, vpt) = keys();
        let atk = BsaesAttack::control(vk, ak, vpt, 0);
        let truth = atk.true_slice_value();
        let hit = atk.measure_guess(truth, None).cycles;
        let miss = atk.measure_guess(truth ^ 0x1234, None).cycles;
        let gap = miss.abs_diff(hit);
        assert!(
            gap < 100,
            "without the gadget a silent store saves only its own \
             dequeue: hit={hit} miss={miss}"
        );
    }

    #[test]
    fn vote_recovers_slice_under_noise() {
        let (vk, ak, vpt) = keys();
        let mut atk = BsaesAttack::new(vk, ak, vpt, 4);
        // Interference over the victim's stack and spill slots; the
        // runtime measurement is architectural (stats cycles), so only
        // the cache/stall components matter here.
        atk.set_noise(NoiseConfig::at_intensity(30, 29).with_window(0x1_0000, 0x2_0000));
        let truth = atk.true_slice_value();
        let lo = truth.saturating_sub(3);
        let window: Vec<u16> = (0..8).map(|d| lo.wrapping_add(d)).collect();
        let got = atk
            .recover_slice_vote(&window, 60, 5)
            .expect("noisy measurement rounds complete");
        assert_eq!(got, Some(truth), "majority vote must survive the noise");
    }

    #[test]
    fn recovery_fails_gracefully_when_truth_not_in_window() {
        let (vk, ak, vpt) = keys();
        let atk = BsaesAttack::new(vk, ak, vpt, 2);
        let truth = atk.true_slice_value();
        let window: Vec<u16> = (0..8).map(|d| truth.wrapping_add(100 + d)).collect();
        assert_eq!(atk.recover_slice(window, 60), None, "no clear winner");
    }
}
