//! Proofs of concept for the *stateful* classes (§IV-C, §IV-D1):
//! computation reuse, value prediction, and register-file compression.
//!
//! All three share one leakage shape (§IV-C4): the optimization fires
//! on **equality** between an in-flight value and a value captured in
//! microarchitectural or architectural state. An active attacker who
//! controls one side gets a chosen-equality oracle and can replay it
//! with different choices to learn a private value exactly.

use pandora_isa::{AluOp, Reg};
use pandora_sim::{OptConfig, ReuseKey, RfcMatch, SimConfig};

use crate::util::{assemble, run_machine};

/// Addresses used by the oracles.
const GUESS_ADDR: u64 = 0x1_0000;
const SECRET_ADDR: u64 = 0x1_0008;
const PTRS_ADDR: u64 = 0x2_0000;

/// Times the computation-reuse equality oracle: a loop whose single
/// static multiply alternates between attacker-known operands (the
/// *priming* instance) and the victim's private operand. If the values
/// are equal, the memoization table hits every iteration; if not, the
/// PC-indexed entry thrashes and every multiply pays full latency.
///
/// Returns total cycles; `key` selects the Sv (values) or Sn (register
/// ids) table flavour — the §VI-A3 defense comparison.
#[must_use]
pub fn reuse_equality_cycles(secret: u64, guess: u64, key: ReuseKey) -> u64 {
    let mut opts = OptConfig::baseline();
    opts.comp_reuse = true;
    opts.reuse_key = key;
    let cfg = SimConfig::with_opts(opts);
    let prog = assemble(|a| {
        // S0 flips between the two operand sources each iteration.
        a.li(Reg::S0, GUESS_ADDR);
        a.li(Reg::S1, GUESS_ADDR ^ SECRET_ADDR);
        a.li(Reg::S2, 77); // public co-operand
        a.li(Reg::T6, 200);
        a.label("l");
        a.ld(Reg::A0, Reg::S0, 0); // operand (guess or secret)
        a.mul(Reg::A1, Reg::A0, Reg::S2); // the single static multiply
        // Fold the multiply into the loop-carried chain (A1 ^ A1 = 0)
        // so its latency — full on a miss, bypassed on a reuse hit —
        // is on the critical path.
        a.xor(Reg::T5, Reg::A1, Reg::A1);
        a.xor(Reg::S0, Reg::S0, Reg::S1); // alternate source
        a.add(Reg::S0, Reg::S0, Reg::T5);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    });
    let mut m = pandora_sim::Machine::new(cfg);
    m.load_program(&prog);
    m.mem_mut().write_u64(GUESS_ADDR, guess).expect("in memory");
    m.mem_mut()
        .write_u64(SECRET_ADDR, secret)
        .expect("in memory");
    m.run(10_000_000).expect("oracle completes");
    m.stats().cycles
}

/// Times the value-prediction equality oracle: one static load walks a
/// pointer table that mostly points at the attacker's training value
/// and periodically at the victim's secret. When `secret == guess` the
/// predictor stays correct; otherwise every encounter with the secret
/// squashes the pipeline.
#[must_use]
pub fn vp_equality_cycles(secret: u64, guess: u64) -> u64 {
    let mut opts = OptConfig::baseline();
    opts.value_pred = true;
    opts.vp_confidence = 2;
    let cfg = SimConfig::with_opts(opts);
    const PTRS: usize = 16;
    let prog = assemble(|a| {
        a.li(Reg::T6, 30); // outer trips
        a.label("outer");
        a.li(Reg::S0, 0); // j
        a.label("inner");
        a.slli(Reg::T5, Reg::S0, 3);
        a.li(Reg::S3, PTRS_ADDR);
        a.add(Reg::T5, Reg::T5, Reg::S3);
        a.ld(Reg::A0, Reg::T5, 0); // p = ptrs[j]
        a.ld(Reg::A1, Reg::A0, 0); // v = *p  <- the predicted load
        a.addi(Reg::S0, Reg::S0, 1);
        a.li(Reg::T4, PTRS as u64);
        a.bltu(Reg::S0, Reg::T4, "inner");
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "outer");
    });
    let mut m = pandora_sim::Machine::new(cfg);
    m.load_program(&prog);
    m.mem_mut().write_u64(GUESS_ADDR, guess).expect("in memory");
    m.mem_mut()
        .write_u64(SECRET_ADDR, secret)
        .expect("in memory");
    for j in 0..PTRS as u64 {
        // Slot 11 points at the secret; everything else trains.
        let target = if j == 11 { SECRET_ADDR } else { GUESS_ADDR };
        m.mem_mut()
            .write_u64(PTRS_ADDR + 8 * j, target)
            .expect("in memory");
    }
    m.run(10_000_000).expect("oracle completes");
    m.stats().cycles
}

/// Times the register-file-compression equality oracle (0/1 variant):
/// a register-hungry victim loop computes `secret XOR input` — a
/// textbook constant-time comparison — into fresh destinations. When
/// the values are equal the results are zero, compress, and relieve
/// rename pressure; the loop runs measurably faster.
#[must_use]
pub fn rfc_equality_cycles(secret: u64, input: u64, match_kind: RfcMatch) -> u64 {
    let mut cfg = SimConfig::default();
    cfg.opts.rf_compress = true;
    cfg.opts.rfc_match = match_kind;
    cfg.pipeline.prf_size = 36; // tight file: rename is the bottleneck
    let prog = assemble(|a| {
        a.li(Reg::S0, secret);
        a.li(Reg::S1, input);
        a.li(Reg::T6, 300);
        a.label("l");
        for rd in [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5] {
            a.alu(AluOp::Xor, rd, Reg::S0, Reg::S1);
        }
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    });
    run_machine(cfg, &prog).stats().cycles
}

/// Recovers a byte-sized secret through any chosen-equality oracle by
/// replaying it across the guess space (§IV-C4's replay analysis: 2^8
/// experiments for a byte).
pub fn recover_byte_by_replay(oracle: impl Fn(u64) -> u64) -> Option<u8> {
    let timings: Vec<u64> = (0..=255u64).map(&oracle).collect();
    let min = *timings.iter().min()?;
    let max = *timings.iter().max()?;
    if max < min + 50 {
        return None; // no signal
    }
    let threshold = min + (max - min) / 2;
    let hits: Vec<u8> = timings
        .iter()
        .enumerate()
        .filter_map(|(g, &t)| (t < threshold).then_some(g as u8))
        .collect();
    match hits.as_slice() {
        [b] => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_sv_is_an_equality_oracle() {
        let equal = reuse_equality_cycles(0xCAFE, 0xCAFE, ReuseKey::Values);
        let diff = reuse_equality_cycles(0xCAFE, 0xBEEF, ReuseKey::Values);
        assert!(
            equal + 100 < diff,
            "reuse hit vs thrash: {equal} vs {diff}"
        );
    }

    #[test]
    fn reuse_sn_closes_the_oracle() {
        // §VI-A3: keying on register ids leaks only which instruction
        // executes — timing no longer depends on operand equality.
        let equal = reuse_equality_cycles(0xCAFE, 0xCAFE, ReuseKey::RegIds);
        let diff = reuse_equality_cycles(0xCAFE, 0xBEEF, ReuseKey::RegIds);
        assert_eq!(equal, diff);
    }

    #[test]
    fn vp_is_an_equality_oracle() {
        let equal = vp_equality_cycles(0x1111, 0x1111);
        let diff = vp_equality_cycles(0x1111, 0x2222);
        assert!(
            equal + 200 < diff,
            "squash storm on mismatch: {equal} vs {diff}"
        );
    }

    #[test]
    fn rfc_zero_one_leaks_comparison_outcomes() {
        let equal = rfc_equality_cycles(0x42, 0x42, RfcMatch::ZeroOne);
        // 0x42 ^ 0x40 = 2: *not* in the {0, 1} compressible set
        // (0x42 ^ 0x43 = 1 would compress too!).
        let diff = rfc_equality_cycles(0x42, 0x40, RfcMatch::ZeroOne);
        assert!(
            equal < diff,
            "zero results compress and relieve rename pressure: {equal} vs {diff}"
        );
    }

    #[test]
    fn replay_recovers_a_byte_through_the_reuse_oracle() {
        let secret = 0x5Au64;
        let got =
            recover_byte_by_replay(|g| reuse_equality_cycles(secret, g, ReuseKey::Values));
        assert_eq!(got, Some(0x5A));
    }
}
