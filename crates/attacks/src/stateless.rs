//! Proofs of concept for the *stateless instruction-centric* classes
//! (§IV-B): computation simplification and pipeline compression.
//!
//! Each experiment runs a small constant-time-by-the-book victim loop
//! on two machines differing only in the private data, and returns the
//! cycle counts — the attacker's view. With the optimization enabled,
//! timing becomes a function of operand *values* (zero-ness, magnitude,
//! width), breaking the constant-time contract; with it disabled
//! (baseline), the same programs take identical time.

use pandora_isa::{AluOp, FpOp, Reg};
use pandora_sim::{OptConfig, SimConfig};

use crate::util::time_program;

fn cs_config() -> SimConfig {
    let mut opts = OptConfig::baseline();
    opts.comp_simpl = true;
    SimConfig::with_opts(opts)
}

/// Times a loop of multiplies `secret * attacker_operand` (zero/one
/// skip, §IV-A2's running example). With a non-zero attacker operand,
/// the runtime reveals whether the private operand is 0 or 1.
#[must_use]
pub fn zero_skip_mul_cycles(secret: u64, attacker_operand: u64, enabled: bool) -> u64 {
    let cfg = if enabled {
        cs_config()
    } else {
        SimConfig::default()
    };
    time_program(cfg, |a| {
        a.li(Reg::S0, secret);
        a.li(Reg::S1, attacker_operand);
        a.li(Reg::T6, 200);
        a.label("l");
        a.mul(Reg::T1, Reg::S0, Reg::S1);
        // Serialize the multiplies: thread a zero derived from the
        // result (T1 ^ T1) back into the next multiply's operand, so
        // skip vs no-skip latency is on the loop-carried critical path
        // while the operand values stay fixed.
        a.xor(Reg::T5, Reg::T1, Reg::T1);
        a.add(Reg::S0, Reg::S0, Reg::T5);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    })
}

/// Times a loop of multiplies by the private operand where strength
/// reduction fires for powers of two — the §VI-B continuous-optimization
/// example: the attacker learns whether the private multiplier is a
/// power of two from latency/port usage.
#[must_use]
pub fn strength_reduction_cycles(secret: u64, enabled: bool) -> u64 {
    let cfg = if enabled {
        cs_config()
    } else {
        SimConfig::default()
    };
    time_program(cfg, |a| {
        a.li(Reg::S0, secret);
        a.li(Reg::S1, 0x1234_5679); // public non-power-of-two co-operand
        a.li(Reg::T6, 200);
        a.label("l");
        a.mul(Reg::T1, Reg::S1, Reg::S0);
        a.xor(Reg::T5, Reg::T1, Reg::T1);
        a.add(Reg::S1, Reg::S1, Reg::T5);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    })
}

/// Times a loop of divides by a fixed odd divisor: with early-exit
/// division the latency tracks the dividend's magnitude (msb leak).
#[must_use]
pub fn early_exit_div_cycles(dividend: u64, enabled: bool) -> u64 {
    let cfg = if enabled {
        cs_config()
    } else {
        SimConfig::default()
    };
    time_program(cfg, |a| {
        a.li(Reg::S0, dividend);
        a.li(Reg::S1, 7);
        a.li(Reg::T6, 200);
        a.label("l");
        a.divu(Reg::T1, Reg::S0, Reg::S1);
        // Same serialization trick as the multiply oracle.
        a.xor(Reg::T5, Reg::T1, Reg::T1);
        a.add(Reg::S0, Reg::S0, Reg::T5);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    })
}

/// Times a loop of floating-point multiplies: the subnormal slow path
/// (Andrysco et al.) leaks whether the private operand is subnormal.
#[must_use]
pub fn fp_subnormal_cycles(operand_bits: u64, enabled: bool) -> u64 {
    let cfg = if enabled {
        let mut opts = OptConfig::baseline();
        opts.fp_subnormal = true;
        SimConfig::with_opts(opts)
    } else {
        SimConfig::default()
    };
    time_program(cfg, |a| {
        a.li(Reg::S0, operand_bits);
        a.li(Reg::S1, 1.5f64.to_bits());
        a.li(Reg::T6, 100);
        a.label("l");
        a.fp(FpOp::Mul, Reg::T1, Reg::S0, Reg::S1);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    })
}

/// Times a loop of *independent* additions on the private value:
/// operand packing doubles ALU throughput exactly when the private
/// operands are narrow (msb < 16), leaking the value's width.
///
/// `retrofit_msb` applies the §VI-A2 software mitigation: OR a 1 into a
/// high bit of every operand so nothing is ever narrow.
#[must_use]
pub fn operand_packing_cycles(secret: u64, enabled: bool, retrofit_msb: bool) -> u64 {
    let cfg = if enabled {
        let mut opts = OptConfig::baseline();
        opts.operand_packing = true;
        SimConfig::with_opts(opts)
    } else {
        SimConfig::default()
    };
    time_program(cfg, |a| {
        a.li(Reg::S0, secret);
        a.li(Reg::S1, 3);
        if retrofit_msb {
            // Software retrofit: force every operand wide.
            a.li(Reg::T5, 1 << 16);
            a.or(Reg::S0, Reg::S0, Reg::T5);
            a.or(Reg::S1, Reg::S1, Reg::T5);
        }
        a.li(Reg::T6, 200);
        a.label("l");
        // Four independent adds per iteration compete for two ALU ports.
        for rd in [Reg::A0, Reg::A1, Reg::A2, Reg::A3] {
            a.alu(AluOp::Add, rd, Reg::S0, Reg::S1);
        }
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "l");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_skip_leaks_zeroness_only_when_enabled() {
        let zero = zero_skip_mul_cycles(0, 5, true);
        let nonzero = zero_skip_mul_cycles(1234, 5, true);
        assert!(
            zero + 100 < nonzero,
            "skip must be visible: {zero} vs {nonzero}"
        );
        // Baseline machine: constant time.
        assert_eq!(
            zero_skip_mul_cycles(0, 5, false),
            zero_skip_mul_cycles(1234, 5, false)
        );
    }

    #[test]
    fn attacker_zero_operand_masks_the_leak() {
        // §IV-A2: if the attacker-controlled operand is 0, the skip is a
        // function of public information only.
        assert_eq!(
            zero_skip_mul_cycles(0, 0, true),
            zero_skip_mul_cycles(1234, 0, true)
        );
    }

    #[test]
    fn strength_reduction_leaks_power_of_two_ness() {
        let pow2 = strength_reduction_cycles(64, true);
        let other = strength_reduction_cycles(63, true);
        assert!(
            pow2 + 100 < other,
            "shift vs full multiply: {pow2} vs {other}"
        );
        assert_eq!(
            strength_reduction_cycles(64, false),
            strength_reduction_cycles(63, false)
        );
    }

    #[test]
    fn early_exit_div_leaks_magnitude() {
        let small = early_exit_div_cycles(0xff, true);
        let big = early_exit_div_cycles(u64::MAX / 3, true);
        assert!(small < big, "{small} vs {big}");
        assert_eq!(
            early_exit_div_cycles(0xff, false),
            early_exit_div_cycles(u64::MAX / 3, false)
        );
    }

    #[test]
    fn fp_subnormal_leaks_operand_class() {
        let sub = fp_subnormal_cycles(1, true); // smallest subnormal
        let normal = fp_subnormal_cycles(1.0f64.to_bits(), true);
        assert!(normal + 100 < sub, "slow path: {sub} vs normal {normal}");
        assert_eq!(
            fp_subnormal_cycles(1, false),
            fp_subnormal_cycles(1.0f64.to_bits(), false)
        );
    }

    #[test]
    fn packing_leaks_operand_width() {
        let narrow = operand_packing_cycles(0x1234, true, false);
        let wide = operand_packing_cycles(0x1_0000_0000, true, false);
        assert!(
            narrow + 50 < wide,
            "packing doubles throughput for narrow: {narrow} vs {wide}"
        );
        assert_eq!(
            operand_packing_cycles(0x1234, false, false),
            operand_packing_cycles(0x1_0000_0000, false, false)
        );
    }
}
