//! The universal read gadget through the 3-level indirect-memory
//! prefetcher, from inside the verified sandbox (§I Fig 1, §V-B Fig 7).
//!
//! The attacker's sandbox program is the Fig 7a loop
//! `for (i..N-1) X[Y[Z[i]]]` with all the null checks the verifier
//! demands — so it is **architecturally memory-safe**. The attacker:
//!
//! 1. fills `Z[0..N-1]` with small varying indices to train the IMP's
//!    base/scale solver, and plants `Z[N-1] = target`, where `target`
//!    is the distance from `Y`'s base to the private byte it wants
//!    (`secret = Y[target]` in the prefetcher's arithmetic);
//! 2. runs the loop: demand accesses stay in bounds, but the IMP
//!    prefetches `Δ` ahead, dereferences `Z[N-1]`, reads the private
//!    byte `s = mem[base_Y + target]`, and fills the line
//!    `X + 64·s` — transmitting `s` over the cache;
//! 3. recovers `s` with a timed probe loop over `X`'s 256 lines —
//!    itself verified sandbox code using the clock helper.
//!
//! Repeating with different `target`s dumps arbitrary memory: a
//! universal read gadget with no victim gadget required. The 2-level
//! IMP performs only one dependent fill, so the private *value* never
//! reaches an attacker-visible address (§IV-D4) — asserted by the
//! workspace tests.

use pandora_channels::adaptive::majority_vote;
use pandora_channels::retry::{RetryError, RetryPolicy};
use pandora_channels::stats::Summary;
use pandora_isa::Asm;
use pandora_sandbox::{
    compile, BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, SandboxLayout, Src,
};
use pandora_sim::{
    FaultPlan, Machine, NoiseConfig, OptConfig, PrefetchFill, SimConfig, SimError, TraceEvent,
};

const SANDBOX_BASE: u64 = 0x4_0000;
/// Stream array length (Fig 7a's N).
const Z_LEN: u64 = 16;
/// Training index values cycle through `train_base + (i mod 3)`.
const TRAIN_MOD: u64 = 3;

const MAP_Z: usize = 0;
const MAP_Y: usize = 1;
const MAP_X: usize = 2;
const MAP_R: usize = 3;

fn r(i: u8) -> BpfReg {
    BpfReg(i)
}

/// The attacker's sandbox program: trigger loop plus timed probe.
fn attacker_program() -> BpfProgram {
    let mut p = BpfProgram::new(vec![
        MapDef::new("Z", 8, Z_LEN),
        MapDef::new("Y", 1, 64),
        MapDef::new("X", 64, 256),
        MapDef::new("R", 8, 256),
    ]);

    // ---- Trigger: for (i = 0; i < N-1; i++) touch X[Y[Z[i]]] --------
    p.push(Inst::MovImm { dst: r(1), imm: 0 }); // 0: i = 0
    let loop_head = p.insts.len(); // 1
    p.push(Inst::Lookup {
        dst: r(2),
        map: MAP_Z,
        idx: r(1),
    });
    let cont = 11; // the "next iteration" landing pad below
    p.push(Inst::JmpIf {
        cmp: Cmp::Eq,
        a: r(2),
        b: Src::Imm(0),
        target: cont,
    });
    p.push(Inst::LoadInd {
        dst: r(3),
        ptr: r(2),
    }); // z = Z[i]
    p.push(Inst::Lookup {
        dst: r(4),
        map: MAP_Y,
        idx: r(3),
    });
    p.push(Inst::JmpIf {
        cmp: Cmp::Eq,
        a: r(4),
        b: Src::Imm(0),
        target: cont,
    });
    p.push(Inst::LoadInd {
        dst: r(5),
        ptr: r(4),
    }); // y = Y[z]
    p.push(Inst::Lookup {
        dst: r(6),
        map: MAP_X,
        idx: r(5),
    });
    p.push(Inst::JmpIf {
        cmp: Cmp::Eq,
        a: r(6),
        b: Src::Imm(0),
        target: cont,
    });
    p.push(Inst::LoadInd {
        dst: r(7),
        ptr: r(6),
    }); // touch X[y]
    p.push(Inst::MovReg { dst: r(0), src: r(7) }); // keep it live
    // 11: the landing pad — i++; loop while i < N-1.
    assert_eq!(p.insts.len(), cont);
    p.push(Inst::Alu {
        op: BpfAluOp::Add,
        dst: r(1),
        src: Src::Imm(1),
    });
    p.push(Inst::JmpIf {
        cmp: Cmp::Lt,
        a: r(1),
        b: Src::Imm(Z_LEN - 1),
        target: loop_head,
    });

    // ---- Probe: time each of X's 256 lines in permuted order --------
    // for (k = 0; k < 256; k++) { idx = (k*167) & 255; R[idx] = time(X[idx]) }
    p.push(Inst::MovImm { dst: r(1), imm: 0 }); // k
    let probe_head = p.insts.len();
    p.push(Inst::MovReg { dst: r(2), src: r(1) });
    p.push(Inst::Alu {
        op: BpfAluOp::Mul,
        dst: r(2),
        src: Src::Imm(167),
    });
    p.push(Inst::Alu {
        op: BpfAluOp::And,
        dst: r(2),
        src: Src::Imm(255),
    }); // idx
    p.push(Inst::ReadClock { dst: r(3) }); // t0
    p.push(Inst::Lookup {
        dst: r(4),
        map: MAP_X,
        idx: r(2),
    });
    let probe_next = p.insts.len() + 7;
    p.push(Inst::JmpIf {
        cmp: Cmp::Eq,
        a: r(4),
        b: Src::Imm(0),
        target: probe_next,
    });
    p.push(Inst::LoadInd {
        dst: r(5),
        ptr: r(4),
    });
    p.push(Inst::ReadClock { dst: r(6) }); // t1
    p.push(Inst::Alu {
        op: BpfAluOp::Sub,
        dst: r(6),
        src: Src::Reg(r(3)),
    }); // dt
    p.push(Inst::Lookup {
        dst: r(7),
        map: MAP_R,
        idx: r(2),
    });
    p.push(Inst::JmpIf {
        cmp: Cmp::Eq,
        a: r(7),
        b: Src::Imm(0),
        target: probe_next,
    });
    p.push(Inst::StoreInd {
        ptr: r(7),
        src: r(6),
    });
    assert_eq!(p.insts.len(), probe_next);
    p.push(Inst::Alu {
        op: BpfAluOp::Add,
        dst: r(1),
        src: Src::Imm(1),
    });
    p.push(Inst::JmpIf {
        cmp: Cmp::Lt,
        a: r(1),
        b: Src::Imm(256),
        target: probe_head,
    });
    p.push(Inst::Exit);
    p
}

/// The result of one leak attempt.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeakRun {
    /// X lines observed hot, excluding the training lines.
    pub candidates: Vec<u8>,
    /// Raw per-line probe timings.
    pub timings: Vec<u64>,
    /// The sandbox's architectural address range.
    pub sandbox: (u64, u64),
}

/// The universal-read-gadget attack harness.
#[derive(Clone, Debug)]
pub struct UrgAttack {
    cfg: SimConfig,
    layout: SandboxLayout,
    prog: BpfProgram,
    plants: Vec<(u64, u8)>,
    /// Fault plan installed on every leak run (noise injection for
    /// robustness experiments).
    fault_plan: Option<FaultPlan>,
}

impl UrgAttack {
    /// Configures the attack with an IMP of `levels` indirection levels
    /// (3 = the URG; 2 = the §IV-D4 non-URG comparison).
    ///
    /// # Panics
    ///
    /// Panics if the attacker program fails the verifier — it must not;
    /// passing verification is the point (§V-B1).
    #[must_use]
    pub fn new(levels: u8) -> UrgAttack {
        UrgAttack::with_fill(levels, PrefetchFill::AllLevels)
    }

    /// Like [`UrgAttack::new`] but controlling where prefetches install
    /// lines. `PrefetchFill::L2Only` models the §V-B3 *prefetch buffer*
    /// mitigation: fills stay out of the L1, but the receiver simply
    /// observes the unbuffered L2 — the attack still lands.
    ///
    /// # Panics
    ///
    /// Panics if the attacker program fails the verifier — it must not.
    #[must_use]
    pub fn with_fill(levels: u8, fill: PrefetchFill) -> UrgAttack {
        UrgAttack::with_fill_and_distance(levels, fill, 4)
    }

    /// Full configuration: indirection levels, fill policy, and the
    /// prefetch distance Δ (for the §IV-D4 leak-window sweep).
    ///
    /// # Panics
    ///
    /// Panics if the attacker program fails the verifier — it must not.
    #[must_use]
    pub fn with_fill_and_distance(levels: u8, fill: PrefetchFill, distance: u64) -> UrgAttack {
        let prog = attacker_program();
        let layout = SandboxLayout::at(SANDBOX_BASE, &prog.maps);
        pandora_sandbox::verify(&prog).expect("the Fig 7a program passes the verifier");
        let mut opts = OptConfig::with_dmp(levels);
        opts.dmp_fill = fill;
        opts.dmp_distance = distance;
        UrgAttack {
            cfg: SimConfig::with_opts(opts),
            layout,
            prog,
            plants: Vec::new(),
            fault_plan: None,
        }
    }

    /// Installs (or clears) a fault plan applied to every subsequent
    /// leak run — used to model a disturbed machine when exercising
    /// retry-based recovery.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Sets the environmental-noise configuration of every subsequent
    /// leak run (see `pandora_sim::noise`); the noise-tolerant
    /// [`UrgAttack::leak_byte_vote`] varies its seed per round.
    pub fn set_noise(&mut self, noise: NoiseConfig) {
        self.cfg.noise = noise;
    }

    /// Plants a "private" byte in simulated memory for the experiment
    /// (standing in for kernel data the attacker wants; the attack code
    /// itself never architecturally reads it).
    pub fn plant_secret(&mut self, addr: u64, byte: u8) {
        self.plants.push((addr, byte));
    }

    /// The machine configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The sandbox memory layout.
    #[must_use]
    pub fn layout(&self) -> &SandboxLayout {
        &self.layout
    }

    /// The verified attacker bytecode.
    #[must_use]
    pub fn program(&self) -> &BpfProgram {
        &self.prog
    }

    /// Runs one leak attempt against the byte at `secret_addr` (which
    /// must lie outside the sandbox), using `train_base` (and the two
    /// following values) as the in-bounds training indices. Returns the
    /// probe results and the finished machine for inspection.
    ///
    /// # Panics
    ///
    /// Panics on harness bugs (layout out of memory) or simulator
    /// failures; use [`UrgAttack::try_run`] to recover from the latter.
    #[must_use]
    pub fn run(&self, secret_addr: u64, train_base: u64) -> (LeakRun, Machine) {
        self.try_run(secret_addr, train_base)
            .expect("URG leak run completed abnormally")
    }

    /// Fallible form of [`UrgAttack::run`]: simulator failures
    /// (timeouts, deadlocks under injected faults) surface as errors
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the leak run.
    ///
    /// # Panics
    ///
    /// Panics on harness bugs (secret inside the sandbox, layout out of
    /// memory).
    pub fn try_run(
        &self,
        secret_addr: u64,
        train_base: u64,
    ) -> Result<(LeakRun, Machine), SimError> {
        let mut asm = Asm::new();
        compile(&mut asm, "urg", &self.prog, &self.layout).expect("verified program compiles");
        asm.halt();
        let isa = asm.assemble().expect("URG program assembles");

        let mut m = Machine::new(self.cfg);
        m.enable_trace();
        m.load_program(&isa);

        let (lo, hi) = self.layout.region();
        assert!(
            secret_addr < lo || secret_addr >= hi,
            "secret must be outside the sandbox"
        );
        for &(addr, byte) in &self.plants {
            m.mem_mut().write_u8(addr, byte).expect("secret in memory");
        }
        let z = self.layout.map_base(MAP_Z);
        let y = self.layout.map_base(MAP_Y);
        // Training: Z holds small varying in-bounds indices; the last
        // element is the attacker-chosen out-of-bounds target.
        for i in 0..Z_LEN - 1 {
            m.mem_mut()
                .write_u64(z + 8 * i, train_base + i % TRAIN_MOD)
                .expect("Z in memory");
        }
        let target = secret_addr - y; // index such that &Y[target] = secret
        m.mem_mut()
            .write_u64(z + 8 * (Z_LEN - 1), target)
            .expect("Z in memory");
        // Y's training entries hold varying in-bounds X indices.
        for j in 0..64u64 {
            m.mem_mut()
                .write_u8(y + j, (train_base + j % TRAIN_MOD) as u8)
                .expect("Y in memory");
        }
        if let Some(plan) = &self.fault_plan {
            m.inject_faults(plan.clone());
        }
        m.run(50_000_000)?;

        let timings = pandora_channels::read_timings(&m, self.layout.map_base(MAP_R), 256);
        let candidates = self.classify(&timings, train_base);
        Ok((
            LeakRun {
                candidates,
                timings,
                sandbox: self.layout.region(),
            },
            m,
        ))
    }

    /// Classifies probe timings into hot lines, excluding the training
    /// lines (which demand accesses legitimately warmed).
    fn classify(&self, timings: &[u64], train_base: u64) -> Vec<u8> {
        let s = Summary::of(timings);
        let min = timings.iter().copied().min().unwrap_or(0);
        let threshold = min + ((s.mean - min as f64) / 2.0) as u64;
        let trained: Vec<u64> = (0..TRAIN_MOD).map(|d| train_base + d).collect();
        timings
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| {
                (t < threshold && !trained.contains(&(i as u64))).then_some(i as u8)
            })
            .collect()
    }

    /// Intersects the candidate sets of two runs with disjoint
    /// training sets: a byte leaks only if it is the single line hot
    /// in both (training lines differ between the runs, so they never
    /// survive).
    fn intersect(run1: &LeakRun, run2: &LeakRun) -> Option<u8> {
        let both: Vec<u8> = run1
            .candidates
            .iter()
            .copied()
            .filter(|c| run2.candidates.contains(c))
            .collect();
        match both.as_slice() {
            [b] => Some(*b),
            _ => None,
        }
    }

    /// Leaks one private byte: runs the attack with two disjoint
    /// training sets and intersects the candidate sets, eliminating
    /// training-line ambiguity.
    #[must_use]
    pub fn leak_byte(&self, secret_addr: u64) -> Option<u8> {
        let (run1, _) = self.run(secret_addr, 1);
        let (run2, _) = self.run(secret_addr, 4);
        UrgAttack::intersect(&run1, &run2)
    }

    /// Noise-tolerant [`UrgAttack::leak_byte`]: repeats the
    /// two-training-set leak `redundancy` times — each round under a
    /// distinct noise seed, so every repetition faces a fresh
    /// interference pattern — and majority-votes the per-round bytes.
    /// A round disturbed into an ambiguous candidate set votes as an
    /// erasure rather than poisoning the result. Redundancy 1 is a
    /// single noisy leak (the unhardened baseline).
    ///
    /// The two training runs *within* a round are seeded differently:
    /// the intersection filters noise by assuming spurious hot lines
    /// differ between runs, so the two environments must be
    /// decorrelated — under a shared seed, fill noise warms the same
    /// false lines in both runs and survives the intersection.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] from a leak run that fails outright.
    pub fn leak_byte_vote(
        &self,
        secret_addr: u64,
        redundancy: usize,
    ) -> Result<Option<u8>, SimError> {
        let mut votes = Vec::with_capacity(redundancy.max(1));
        for r in 0..redundancy.max(1) as u64 {
            let base = self
                .cfg
                .noise
                .seed
                .wrapping_add(r.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut round = self.clone();
            round.cfg.noise.seed = base;
            let (run1, _) = round.try_run(secret_addr, 1)?;
            round.cfg.noise.seed = base.wrapping_add(0x0100_0193);
            let (run2, _) = round.try_run(secret_addr, 4)?;
            votes.push(UrgAttack::intersect(&run1, &run2));
        }
        Ok(majority_vote(&votes))
    }

    /// Like [`UrgAttack::leak_byte`], but each leak run is retried
    /// under `policy`: a run that fails with a [`SimError`] (e.g. a
    /// deadlock under an injected fault) is re-run on a clean machine —
    /// disturbances are transient, so retries drop the installed fault
    /// plan.
    ///
    /// # Errors
    ///
    /// [`RetryError::Sim`] if a run could not complete within
    /// `policy.max_attempts`.
    pub fn leak_byte_with_retry(
        &self,
        secret_addr: u64,
        policy: &RetryPolicy,
    ) -> Result<Option<u8>, RetryError> {
        let leak = |train_base: u64| {
            policy.retry(|attempt| {
                if attempt == 0 {
                    self.try_run(secret_addr, train_base)
                } else {
                    let mut clean = self.clone();
                    clean.fault_plan = None;
                    clean.try_run(secret_addr, train_base)
                }
            })
        };
        let (run1, _) = leak(1)?;
        let (run2, _) = leak(4)?;
        Ok(UrgAttack::intersect(&run1, &run2))
    }

    /// The universal read gadget: dumps `len` bytes starting at `addr`
    /// by sweeping the target (§IV-D4's "the attacker can leak all
    /// memory outside the sandbox").
    #[must_use]
    pub fn dump(&self, addr: u64, len: usize) -> Vec<Option<u8>> {
        (0..len as u64).map(|i| self.leak_byte(addr + i)).collect()
    }

    /// All addresses the prefetcher dereferenced during `machine`'s
    /// run, from the trace — the §IV-D4 reach analysis.
    #[must_use]
    pub fn deref_addresses(machine: &Machine) -> Vec<u64> {
        machine
            .trace()
            .events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::DmpDeref { addr, .. } => Some(addr),
                _ => None,
            })
            .collect()
    }
}

impl Default for UrgAttack {
    fn default() -> UrgAttack {
        UrgAttack::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A private location well outside the sandbox.
    const SECRET_ADDR: u64 = 0x20_0000;

    fn attack(levels: u8, secret: u8) -> UrgAttack {
        let mut atk = UrgAttack::new(levels);
        atk.plant_secret(SECRET_ADDR, secret);
        atk
    }

    #[test]
    fn attacker_program_passes_the_verifier() {
        assert!(pandora_sandbox::verify(&attacker_program()).is_ok());
    }

    #[test]
    fn three_level_imp_leaks_a_private_byte() {
        let atk = attack(3, 0xA7);
        assert_eq!(atk.leak_byte(SECRET_ADDR), Some(0xA7));
    }

    #[test]
    fn three_level_derefs_reach_the_secret() {
        let atk = attack(3, 0x5C);
        let (_, m) = atk.run(SECRET_ADDR, 1);
        let derefs = UrgAttack::deref_addresses(&m);
        assert!(
            derefs.contains(&SECRET_ADDR),
            "3-level IMP must dereference the private address"
        );
    }

    #[test]
    fn two_level_imp_is_not_a_urg() {
        // With the 2-level IMP the private value never modulates an
        // attacker-visible address: candidate sets are identical for
        // different secrets.
        let (r1, m1) = attack(2, 0x11).run(SECRET_ADDR, 1);
        let (r2, _) = attack(2, 0xEE).run(SECRET_ADDR, 1);
        assert_eq!(
            r1.candidates, r2.candidates,
            "2-level probe results must not depend on the secret"
        );
        // And the prefetcher's dereferences stay within the stream's
        // reach: [sandbox, sandbox_end + Δ elements).
        let (_, hi) = r1.sandbox;
        let delta_bytes = 8 * attack(2, 0).config().opts.dmp_distance;
        for a in UrgAttack::deref_addresses(&m1) {
            assert!(
                a < hi + delta_bytes,
                "2-level deref at {a:#x} beyond the stream window"
            );
        }
    }

    #[test]
    fn prefetch_buffer_does_not_mitigate() {
        // §V-B3: keeping prefetch fills out of the L1 only moves the
        // receiver to the L2 — the timed probe still separates the
        // secret's line (L2 hit) from cold lines (DRAM).
        let mut atk = UrgAttack::with_fill(3, PrefetchFill::L2Only);
        atk.plant_secret(SECRET_ADDR, 0xB3);
        assert_eq!(atk.leak_byte(SECRET_ADDR), Some(0xB3));
    }

    #[test]
    fn retry_leaks_byte_despite_injected_wedge() {
        use pandora_sim::FaultKind;
        let mut atk = attack(3, 0x42);
        // Every first-attempt run wedges; retries run clean.
        atk.set_fault_plan(Some(FaultPlan::single(500, FaultKind::DroppedCompletion)));
        let got = atk
            .leak_byte_with_retry(SECRET_ADDR, &RetryPolicy::default())
            .unwrap();
        assert_eq!(got, Some(0x42));
    }

    #[test]
    fn vote_leaks_byte_under_cache_and_timer_noise() {
        let mut atk = attack(3, 0x6D);
        // Whole-memory interference (a loud co-tenant touching
        // everything, including the probe array X), plus a coarse,
        // jittery clock behind the sandbox's ReadClock helper. The
        // 256-line probe needs this dilution — window the same
        // intensity onto the sandbox alone and every line is disturbed
        // several times per run, which no amount of voting fixes.
        atk.set_noise(NoiseConfig::at_intensity(30, 23));
        let got = atk
            .leak_byte_vote(SECRET_ADDR, 5)
            .expect("noisy leak rounds complete");
        assert_eq!(got, Some(0x6D), "majority vote must survive the noise");
    }

    #[test]
    fn urg_dumps_multiple_bytes() {
        let mut atk = UrgAttack::new(3);
        let secret = [0x13u8, 0x77, 0xC4];
        for (i, &b) in secret.iter().enumerate() {
            atk.plant_secret(SECRET_ADDR + i as u64, b);
        }
        assert_eq!(
            atk.dump(SECRET_ADDR, 3),
            vec![Some(0x13), Some(0x77), Some(0xC4)]
        );
    }
}
