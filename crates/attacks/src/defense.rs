//! Defense retrofits from §VI-A, measured: each experiment shows the
//! leak with the victim as-is, then with the paper's suggested software
//! or design mitigation applied, and reports both timing deltas.

use pandora_isa::Reg;
use pandora_sim::{OptConfig, ReuseKey, SimConfig};

use crate::amplify::{AmplifyGadget, FlushKind};
use crate::stateful::reuse_equality_cycles;
use crate::stateless::operand_packing_cycles;
use crate::util::assemble;

/// Timing deltas (|equal − different| or |narrow − wide|) before and
/// after a mitigation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DefenseOutcome {
    /// Leak magnitude with the victim unmodified.
    pub unmitigated_delta: u64,
    /// Leak magnitude with the retrofit applied.
    pub mitigated_delta: u64,
}

impl DefenseOutcome {
    /// Whether the mitigation collapsed the leak (to below `noise`).
    #[must_use]
    pub fn closed(&self, noise: u64) -> bool {
        self.mitigated_delta <= noise && self.unmitigated_delta > noise
    }
}

/// §VI-A2 vs pipeline compression: OR a 1 into a high bit of every
/// word so significance compression never sees a narrow operand.
#[must_use]
pub fn msb_retrofit_vs_packing() -> DefenseOutcome {
    let narrow = 0x1234u64;
    let wide = 0x9_0000_0000u64;
    let unmitigated_delta = operand_packing_cycles(wide, true, false)
        .abs_diff(operand_packing_cycles(narrow, true, false));
    let mitigated_delta = operand_packing_cycles(wide, true, true)
        .abs_diff(operand_packing_cycles(narrow, true, true));
    DefenseOutcome {
        unmitigated_delta,
        mitigated_delta,
    }
}

/// §VI-A3 vs computation reuse: the Sn (register-id-keyed) table
/// variant closes the operand-value oracle while retaining reuse.
#[must_use]
pub fn sn_keying_vs_reuse() -> DefenseOutcome {
    let (secret, guess_hit, guess_miss) = (0xCAFEu64, 0xCAFEu64, 0xBEEFu64);
    let unmitigated_delta = reuse_equality_cycles(secret, guess_miss, ReuseKey::Values)
        .abs_diff(reuse_equality_cycles(secret, guess_hit, ReuseKey::Values));
    let mitigated_delta = reuse_equality_cycles(secret, guess_miss, ReuseKey::RegIds)
        .abs_diff(reuse_equality_cycles(secret, guess_hit, ReuseKey::RegIds));
    DefenseOutcome {
        unmitigated_delta,
        mitigated_delta,
    }
}

/// §VI-A2 vs silent stores: targeted clearing — the victim zeroes the
/// sensitive slot before returning, so the attacker's later store
/// compares against a constant instead of the secret.
///
/// The experiment measures the amplified single-store timing for an
/// attacker value equal/unequal to the victim's secret, with and
/// without the clearing step.
#[must_use]
pub fn targeted_clearing_vs_silent_stores() -> DefenseOutcome {
    let run = |victim_value: u64, attacker_value: u64, clear: bool| -> u64 {
        let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
        let target = 0x1_0000u64;
        let delay = 0x8_0000u64;
        let g = AmplifyGadget::new(&cfg, target, delay, FlushKind::Contention);
        let prog = assemble(|a| {
            // Victim: leave the secret in the slot...
            a.li(Reg::T0, victim_value);
            a.sd(Reg::T0, Reg::ZERO, target as i64);
            if clear {
                // ...unless it scrubs it before returning (§VI-A2).
                a.sd(Reg::ZERO, Reg::ZERO, target as i64);
            }
            for i in 1..6i64 {
                a.ld(Reg::T1, Reg::ZERO, (target + 0x1000) as i64 + 64 * i);
            }
            a.fence();
            // Attacker request: the amplified target store.
            a.li(Reg::T0, attacker_value);
            g.emit(a);
            a.sd(Reg::T0, Reg::ZERO, target as i64);
            for i in 1..6i64 {
                a.sd(Reg::T0, Reg::ZERO, (target + 0x1000) as i64 + 64 * i);
            }
            a.fence();
        });
        let mut m = pandora_sim::Machine::new(cfg);
        m.load_program(&prog);
        g.setup_memory(m.mem_mut());
        m.run(1_000_000).expect("experiment completes");
        m.stats().cycles
    };
    let secret = 0x77u64;
    let unmitigated_delta = run(secret, 0x78, false).abs_diff(run(secret, secret, false));
    let mitigated_delta = run(secret, 0x78, true).abs_diff(run(secret, secret, true));
    DefenseOutcome {
        unmitigated_delta,
        mitigated_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_retrofit_closes_packing_leak() {
        let o = msb_retrofit_vs_packing();
        assert!(o.closed(10), "{o:?}");
    }

    #[test]
    fn sn_keying_closes_reuse_leak() {
        let o = sn_keying_vs_reuse();
        assert!(o.closed(10), "{o:?}");
        assert_eq!(o.mitigated_delta, 0);
    }

    #[test]
    fn clearing_closes_silent_store_leak() {
        let o = targeted_clearing_vs_silent_stores();
        assert!(o.closed(30), "{o:?}");
    }
}
