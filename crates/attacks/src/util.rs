//! Shared harness utilities: building and timing victim programs.

use pandora_isa::{Asm, Program};
use pandora_sim::{Machine, SimConfig, SimError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Assembles a program from a builder closure, appending `halt`.
///
/// # Panics
///
/// Panics if the program fails to assemble — a harness bug.
#[must_use]
pub fn assemble(build: impl FnOnce(&mut Asm)) -> Program {
    let mut a = Asm::new();
    build(&mut a);
    a.halt();
    a.assemble().expect("harness programs assemble")
}

/// Runs `prog` on a fresh machine and returns total cycles to halt.
///
/// # Panics
///
/// Panics if the program fails to complete — a harness bug.
#[must_use]
pub fn run_cycles(cfg: SimConfig, prog: &Program) -> u64 {
    run_machine(cfg, prog).stats().cycles
}

/// Runs `prog` on a fresh machine and returns the finished machine.
///
/// # Panics
///
/// Panics if the program fails to complete — a harness bug. Use
/// [`try_run_machine`] where a structured error is wanted instead.
#[must_use]
pub fn run_machine(cfg: SimConfig, prog: &Program) -> Machine {
    try_run_machine(cfg, prog).expect("harness program completed abnormally")
}

/// Fallible form of [`run_machine`]: simulator failures (timeouts,
/// deadlocks, faults in adversarial programs) surface as errors.
///
/// # Errors
///
/// Any [`SimError`] from the run.
pub fn try_run_machine(cfg: SimConfig, prog: &Program) -> Result<Machine, SimError> {
    let mut m = Machine::new(cfg);
    m.load_program(prog);
    m.run(200_000_000)?;
    Ok(m)
}

/// Builds and times a program in one step.
#[must_use]
pub fn time_program(cfg: SimConfig, build: impl FnOnce(&mut Asm)) -> u64 {
    run_cycles(cfg, &assemble(build))
}

/// Pre-touches `n` pseudo-random cache lines in `[base, base + span)` —
/// the cache-state noise injected between Fig 6 trials.
pub fn precondition_noise(m: &mut Machine, seed: u64, n: usize, base: u64, span: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..n {
        let addr = base + rng.gen_range(0..span / 64) * 64;
        m.hierarchy_mut().prefetch(addr, pandora_sim::PrefetchFill::AllLevels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_isa::Reg;

    #[test]
    fn time_program_returns_cycles() {
        let t = time_program(SimConfig::default(), |a| {
            a.li(Reg::T0, 100);
            a.label("l");
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, "l");
        });
        assert!(t > 100);
    }

    #[test]
    fn noise_fills_lines_deterministically() {
        let prog = assemble(|a| {
            a.nop();
        });
        let mut m1 = Machine::new(SimConfig::default());
        m1.load_program(&prog);
        precondition_noise(&mut m1, 7, 50, 0x10_0000, 0x1_0000);
        let mut m2 = Machine::new(SimConfig::default());
        m2.load_program(&prog);
        precondition_noise(&mut m2, 7, 50, 0x10_0000, 0x1_0000);
        for i in 0..(0x1_0000 / 64) {
            let a = 0x10_0000 + i * 64;
            assert_eq!(m1.hierarchy().in_l1(a), m2.hierarchy().in_l1(a));
        }
    }
}
