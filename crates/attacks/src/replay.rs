//! The active replay framework of §II-2 / §IV-C4: equality-oracle
//! recovery with **width chunking**.
//!
//! "Because these optimizations check for equality, the attacker can
//! exponentially reduce the number of experiments needed to learn each
//! value if it can perform checks with narrower-width v. For example,
//! if v is a Word (Byte) then learning 32 (8) bits takes 2^32 (2^8)
//! tries in expectation."
//!
//! [`recover_word`] realises this against silent stores:
//! the victim leaves a 64-bit secret in memory; the attacker issues
//! **byte-width** amplified stores at each of the eight byte offsets,
//! turning an infeasible 2^64 search into at most 8 × 2^8 experiments.

use pandora_isa::{Asm, Reg, Width};
use pandora_sim::{Machine, OptConfig, SimConfig};

use crate::amplify::{AmplifyGadget, FlushKind};

const TARGET: u64 = 0x1_0000;
const DELAY: u64 = 0x8_0000;

/// One amplified byte-store experiment: returns the end-to-end cycles
/// of overwriting byte `offset` of the victim's word with `guess`.
/// Fast (silent) iff `guess` equals the secret's byte at that offset.
#[must_use]
pub fn byte_store_probe(secret_word: u64, offset: u64, guess: u8) -> u64 {
    assert!(offset < 8, "a word has eight bytes");
    let cfg = SimConfig::with_opts(OptConfig::with_silent_stores());
    let g = AmplifyGadget::new(&cfg, TARGET + offset, DELAY, FlushKind::Contention);
    let mut a = Asm::new();
    // Precondition: the victim's line (and the pressure lines) warm.
    a.ld(Reg::T0, Reg::ZERO, TARGET as i64);
    a.fence();
    a.li(Reg::T0, u64::from(guess));
    g.emit(&mut a);
    a.store(Reg::T0, Reg::ZERO, (TARGET + offset) as i64, Width::Byte);
    g.emit_pressure(&mut a);
    a.fence();
    a.halt();
    let prog = a.assemble().expect("probe assembles");
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m.mem_mut()
        .write_u64(TARGET, secret_word)
        .expect("victim word in memory");
    g.setup_memory(m.mem_mut());
    m.run(1_000_000).expect("probe completes");
    m.stats().cycles
}

/// Recovers one byte of the victim's word: at most 2^8 experiments.
#[must_use]
pub fn recover_byte(secret_word: u64, offset: u64) -> Option<u8> {
    let mut best: Option<(u8, u64)> = None;
    let mut second: Option<u64> = None;
    for guess in 0..=255u8 {
        let t = byte_store_probe(secret_word, offset, guess);
        match best {
            None => best = Some((guess, t)),
            Some((_, bt)) if t < bt => {
                second = Some(bt);
                best = Some((guess, t));
            }
            _ => second = Some(second.map_or(t, |s| s.min(t))),
        }
    }
    let (g, t) = best?;
    (second? >= t + 60).then_some(g)
}

/// Recovers the full 64-bit word, byte by byte: ≤ 8 × 2^8 = 2048
/// experiments instead of 2^64 — the paper's chunking arithmetic.
#[must_use]
pub fn recover_word(secret_word: u64) -> Option<u64> {
    let mut out = 0u64;
    for offset in 0..8u64 {
        let b = recover_byte(secret_word, offset)?;
        out |= u64::from(b) << (8 * offset);
    }
    Some(out)
}

/// The experiment-count arithmetic the paper states (§IV-C4).
#[must_use]
pub fn chunked_experiment_bound(value_bits: u32, chunk_bits: u32) -> u64 {
    let chunks = u64::from(value_bits.div_ceil(chunk_bits));
    chunks * (1u64 << chunk_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_probe_is_an_equality_oracle() {
        let secret = 0x1122_3344_5566_77A9_u64;
        let hit = byte_store_probe(secret, 0, 0xA9);
        let miss = byte_store_probe(secret, 0, 0xAA);
        assert!(hit + 100 <= miss, "{hit} vs {miss}");
        // And at a different offset.
        let hit7 = byte_store_probe(secret, 7, 0x11);
        let miss7 = byte_store_probe(secret, 7, 0x12);
        assert!(hit7 + 100 <= miss7);
    }

    #[test]
    fn one_byte_recovers_in_256_experiments() {
        let secret = 0xDEAD_BEEF_0102_03C4u64;
        assert_eq!(recover_byte(secret, 0), Some(0xC4));
        assert_eq!(recover_byte(secret, 4), Some(0xEF), "little-endian byte 4");
    }

    #[test]
    fn chunking_bounds_match_the_paper() {
        // "learning 32 (8) bits takes 2^32 (2^8) tries"
        assert_eq!(chunked_experiment_bound(32, 32), 1u64 << 32);
        assert_eq!(chunked_experiment_bound(8, 8), 256);
        // Byte-chunked word: 8 * 256 = 2048.
        assert_eq!(chunked_experiment_bound(64, 8), 2048);
        // The BSAES budget: 8 slices of 16 bits, checked at full width.
        assert_eq!(8 * chunked_experiment_bound(16, 16), 524_288);
    }
}
