//! Property-based tests of the field arithmetic, the bitsliced cipher,
//! and the attack's inversion primitives.

use pandora_crypto::{aes_ref, bitslice, gf, RoundKeys};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gf_mul_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf::mul(a, b), gf::mul(b, a));
        prop_assert_eq!(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
    }

    #[test]
    fn gf_mul_distributes_over_xor(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf::mul(a, b ^ c), gf::mul(a, b) ^ gf::mul(a, c));
    }

    #[test]
    fn gf_inverse_law(a in 1u8..) {
        prop_assert_eq!(gf::mul(a, gf::inv(a)), 1);
        prop_assert_eq!(gf::inv(gf::inv(a)), a);
    }

    #[test]
    fn gf_frobenius_squaring_is_additive(a: u8, b: u8) {
        // (a + b)^2 = a^2 + b^2 in characteristic 2.
        prop_assert_eq!(
            gf::mul(a ^ b, a ^ b),
            gf::mul(a, a) ^ gf::mul(b, b)
        );
    }

    #[test]
    fn encrypt_decrypt_round_trip(key: [u8; 16], pt: [u8; 16]) {
        let rk = RoundKeys::expand(&key);
        prop_assert_eq!(aes_ref::decrypt(&rk, &aes_ref::encrypt(&rk, &pt)), pt);
    }

    #[test]
    fn bitsliced_encrypt_matches_reference(key: [u8; 16], pt: [u8; 16]) {
        let rk = RoundKeys::expand(&key);
        prop_assert_eq!(bitslice::encrypt(&rk, &pt), aes_ref::encrypt(&rk, &pt));
    }

    #[test]
    fn bitslice_round_trips(state: [u8; 16]) {
        prop_assert_eq!(bitslice::unbitslice(&bitslice::bitslice(&state)), state);
    }

    #[test]
    fn sliced_rounds_match_bytewise_rounds(state: [u8; 16]) {
        let s = bitslice::bitslice(&state);
        let mut sb = state;
        aes_ref::sub_bytes(&mut sb);
        prop_assert_eq!(bitslice::unbitslice(&bitslice::sub_bytes_slices(&s)), sb);

        let mut sr = state;
        aes_ref::shift_rows(&mut sr);
        prop_assert_eq!(bitslice::unbitslice(&bitslice::shift_rows_slices(&s)), sr);

        let mut mc = state;
        aes_ref::mix_columns(&mut mc);
        prop_assert_eq!(bitslice::unbitslice(&bitslice::mix_columns_slices(&s)), mc);
    }

    #[test]
    fn key_schedule_inverts_from_any_round10(key: [u8; 16]) {
        let rk = RoundKeys::expand(&key);
        prop_assert_eq!(RoundKeys::from_round10(&rk.round(10)).master_key(), key);
    }

    #[test]
    fn chosen_plaintext_inversion_is_exact(key: [u8; 16], target: [u8; 16]) {
        let rk = RoundKeys::expand(&key);
        let pt = aes_ref::plaintext_for_final_subbytes(&rk, &target);
        prop_assert_eq!(aes_ref::final_subbytes_state(&rk, &pt), target);
    }

    #[test]
    fn round10_key_recovery_is_exact(key: [u8; 16], pt: [u8; 16]) {
        let rk = RoundKeys::expand(&key);
        let leak = aes_ref::final_subbytes_state(&rk, &pt);
        let ct = aes_ref::encrypt(&rk, &pt);
        let k10 = aes_ref::round10_key_from_leak(&leak, &ct);
        prop_assert_eq!(k10, rk.round(10));
    }

    #[test]
    fn sliced_gf_ops_match_lanewise_gf(a: [u8; 16], b: [u8; 16]) {
        let (sa, sb) = (bitslice::bitslice(&a), bitslice::bitslice(&b));
        let prod = bitslice::unbitslice(&bitslice::mul_slices(&sa, &sb));
        let sq = bitslice::unbitslice(&bitslice::square_slices(&sa));
        let inv = bitslice::unbitslice(&bitslice::inv_slices(&sa));
        for i in 0..16 {
            prop_assert_eq!(prod[i], gf::mul(a[i], b[i]));
            prop_assert_eq!(sq[i], gf::mul(a[i], a[i]));
            prop_assert_eq!(inv[i], gf::inv(a[i]));
        }
    }
}
