//! Code generation: bitsliced AES-128 compiled to the Pandora ISA.
//!
//! [`emit_encrypt`] emits a straight-line, constant-time encryption of
//! one block: no secret-dependent branches and no secret-dependent
//! addresses — the victim discipline the paper's silent-store attack
//! defeats (§V-A). The generated code mirrors
//! [`bitslice`](crate::bitslice) step for step (both consume the same
//! derived matrices), and the workspace tests check the machine output
//! against the reference implementation bit for bit.
//!
//! After the **final SubBytes**, the eight 16-bit slice values are
//! stored to eight fixed "stack" slots ([`BsaesLayout::spill`]) — the
//! paper's "eight locations storing intermediate values that can be
//! used to reconstruct the AES state after byte substitution". The
//! returned [`EncryptArtifacts`] identifies those stores so attack
//! harnesses can target them, and a hook lets harnesses inject the
//! amplification gadget immediately before any of them.

use pandora_isa::{Asm, Reg};

use crate::bitslice::{
    affine_rows, lane_to_byte, mult_pairs, square_rows, GfStep, AFFINE_CONST,
    INV_CHAIN, INV_RESULT_SLOT, INV_SLOT_COUNT,
};
use crate::keysched::RoundKeys;

/// Slice operand registers (loaded from memory).
const A: [Reg; 8] = [
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
];
/// Slice result / second-operand registers.
const B: [Reg; 8] = [
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
];
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;

/// Memory layout of one BSAES instance. All addresses are absolute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BsaesLayout {
    /// 11 bitsliced round keys: 11 × 8 slices × 8 bytes = 704 B.
    pub rk: u64,
    /// The 16-byte plaintext input.
    pub pt: u64,
    /// The 16-byte ciphertext output.
    pub ct: u64,
    /// Current state: 8 slices × 8 B.
    pub state: u64,
    /// GF-element scratch: [`INV_SLOT_COUNT`] slots × 8 slices × 8 B.
    pub scratch: u64,
    /// The eight final-SubBytes spill slots — the attack's target
    /// stores write here. Slots are line-separated (64 B apart) like
    /// distinct stack variables, so one slot's cache behaviour does not
    /// shadow its neighbour's.
    pub spill: u64,
}

impl BsaesLayout {
    /// Lays an instance out contiguously starting at `base`.
    #[must_use]
    pub fn at(base: u64) -> BsaesLayout {
        BsaesLayout {
            rk: base,
            pt: base + 704,
            ct: base + 704 + 16,
            state: base + 704 + 32,
            scratch: base + 704 + 32 + 64,
            spill: base + 704 + 32 + 64 + (INV_SLOT_COUNT as u64) * 64,
        }
    }

    /// Total bytes occupied starting at `rk`.
    #[must_use]
    pub fn size() -> u64 {
        704 + 32 + 64 + (INV_SLOT_COUNT as u64) * 64 + 8 * 64
    }

    /// The address of spill slot `k` (the k-th target store's address).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 8`.
    #[must_use]
    pub fn spill_slot(&self, k: usize) -> u64 {
        assert!(k < 8);
        self.spill + 64 * k as u64
    }

    /// The bytes to preload at [`BsaesLayout::rk`]: the bitsliced round
    /// keys for `rk` (8-byte little-endian slot per slice).
    #[must_use]
    pub fn round_key_bytes(rk: &RoundKeys) -> Vec<u8> {
        let mut out = Vec::with_capacity(704);
        for slices in crate::bitslice::round_key_slices(rk) {
            for s in slices {
                out.extend_from_slice(&u64::from(s).to_le_bytes());
            }
        }
        out
    }
}

/// Where a spill hook is invoked relative to its target store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillHook {
    /// Immediately before the spill store (gadget delay/flush go here).
    Before,
    /// Immediately after the spill store (SQ-pressure code goes here).
    After,
}

/// What [`emit_encrypt`] produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncryptArtifacts {
    /// Instruction indices of the eight final-SubBytes spill stores,
    /// in slice order.
    pub spill_store_pcs: [usize; 8],
}

fn slice_addr(base: u64, k: usize) -> i64 {
    (base + 8 * k as u64) as i64
}

/// Loads the 8 slices at `addr` into `regs`.
fn ld_slices(a: &mut Asm, regs: &[Reg; 8], addr: u64) {
    for (k, &r) in regs.iter().enumerate() {
        a.ld(r, Reg::ZERO, slice_addr(addr, k));
    }
}

/// Stores the 8 slices in `regs` to `addr`.
fn st_slices(a: &mut Asm, regs: &[Reg; 8], addr: u64) {
    for (k, &r) in regs.iter().enumerate() {
        a.sd(r, Reg::ZERO, slice_addr(addr, k));
    }
}

/// XOR-folds the registers selected by `mask` (over `srcs`) into `dst`.
/// `dst` must not be in `srcs`.
fn emit_xor_fold(a: &mut Asm, dst: Reg, srcs: &[Reg; 8], mask: u8) {
    let mut first = true;
    for (i, &r) in srcs.iter().enumerate() {
        if (mask >> i) & 1 == 0 {
            continue;
        }
        if first {
            a.mv(dst, r);
            first = false;
        } else {
            a.xor(dst, dst, r);
        }
    }
    if first {
        a.li(dst, 0);
    }
}

/// GF squaring of the 8 slices at `src` into `dst` (lanes squared).
fn emit_square(a: &mut Asm, dst: u64, src: u64) {
    let rows = square_rows();
    ld_slices(a, &A, src);
    for (k, &row) in rows.iter().enumerate() {
        emit_xor_fold(a, B[k], &A, row);
    }
    st_slices(a, &B, dst);
}

/// GF multiplication of slices at `xa` and `ya` into `dst` (must not
/// alias the operands).
fn emit_mult(a: &mut Asm, dst: u64, xa: u64, ya: u64) {
    debug_assert!(dst != xa && dst != ya, "mult destination must be fresh");
    let pairs = mult_pairs();
    ld_slices(a, &A, xa);
    ld_slices(a, &B, ya);
    for (k, list) in pairs.iter().enumerate() {
        let mut first = true;
        for &(i, j) in list {
            if first {
                a.and(T0, A[i], B[j]);
                first = false;
            } else {
                a.and(T1, A[i], B[j]);
                a.xor(T0, T0, T1);
            }
        }
        a.sd(T0, Reg::ZERO, slice_addr(dst, k));
    }
}

/// The S-box affine transform of the slices at `src` into `dst`.
fn emit_affine(a: &mut Asm, dst: u64, src: u64) {
    let rows = affine_rows();
    ld_slices(a, &A, src);
    for (k, &row) in rows.iter().enumerate() {
        emit_xor_fold(a, B[k], &A, row);
        if (AFFINE_CONST >> k) & 1 == 1 {
            // Bitwise NOT within the 16 live lanes.
            a.xori(B[k], B[k], 0xffff);
        }
    }
    st_slices(a, &B, dst);
}

/// Bitsliced SubBytes of the state (in place), spilling GF elements
/// through the scratch slots.
fn emit_sub_bytes(a: &mut Asm, lay: &BsaesLayout) {
    let slot = |i: usize| -> u64 {
        if i == 0 {
            lay.state
        } else {
            lay.scratch + 64 * (i as u64 - 1)
        }
    };
    for step in INV_CHAIN {
        match step {
            GfStep::Square { dst, src } => emit_square(a, slot(dst), slot(src)),
            GfStep::Mult { dst, a: x, b: y } => emit_mult(a, slot(dst), slot(x), slot(y)),
        }
    }
    emit_affine(a, lay.state, slot(INV_RESULT_SLOT));
}

/// In-register rotate-right of the 16 live bits of `src` by `n`,
/// into `dst` (clobbers `tmp`).
fn emit_rot16(a: &mut Asm, dst: Reg, src: Reg, n: i64, tmp: Reg) {
    debug_assert!((1..16).contains(&n));
    a.srli(dst, src, n);
    a.slli(tmp, src, 16 - n);
    a.or(dst, dst, tmp);
    a.andi(dst, dst, 0xffff);
}

/// Bitsliced ShiftRows of the state, in place.
#[allow(clippy::needless_range_loop)]
fn emit_shift_rows(a: &mut Asm, lay: &BsaesLayout) {
    ld_slices(a, &A, lay.state);
    for k in 0..8 {
        let src = A[k];
        let dst = B[k];
        // Row 0 is unchanged.
        a.andi(dst, src, 0xf);
        for r in 1..4i64 {
            // new_nibble = rotate_right(old_nibble, r) within 4 bits.
            a.srli(T0, src, 4 * r);
            a.andi(T0, T0, 0xf);
            a.srli(T1, T0, r);
            a.slli(T2, T0, 4 - r);
            a.or(T1, T1, T2);
            a.andi(T1, T1, 0xf);
            a.slli(T1, T1, 4 * r);
            a.or(dst, dst, T1);
        }
    }
    st_slices(a, &B, lay.state);
}

/// Bitsliced MixColumns of the state, in place.
///
/// `b_i = xt(a)_i ^ xt(a1)_i ^ a1_i ^ a2_i ^ a3_i` where `a_k` is the
/// state with lanes rotated to select row `r + k`, and `xt` is the
/// bitwise xtime (slice-index shuffle folding slice 7 into 0, 1, 3, 4).
#[allow(clippy::needless_range_loop)]
fn emit_mix_columns(a: &mut Asm, lay: &BsaesLayout) {
    /// xtime slice sources: output slice i = input slice XTIME_SRC[i],
    /// XORed with input slice 7 when XTIME_FOLD[i].
    const XTIME_SRC: [usize; 8] = [7, 0, 1, 2, 3, 4, 5, 6];
    const XTIME_FOLD: [bool; 8] = [false, true, false, true, true, false, false, false];

    ld_slices(a, &A, lay.state);
    for i in 0..8 {
        let out = B[i];
        // xt(a)_i
        let m = XTIME_SRC[i];
        if XTIME_FOLD[i] {
            a.xor(out, A[m], A[7]);
        } else {
            a.mv(out, A[m]);
        }
        // xt(a1)_i: same formula over rot4 slices.
        emit_rot16(a, T0, A[m], 4, T2);
        if XTIME_FOLD[i] {
            emit_rot16(a, T1, A[7], 4, T2);
            a.xor(T0, T0, T1);
        }
        a.xor(out, out, T0);
        // a1_i, a2_i, a3_i.
        for k in 1..4i64 {
            emit_rot16(a, T0, A[i], 4 * k, T2);
            a.xor(out, out, T0);
        }
    }
    st_slices(a, &B, lay.state);
}

/// AddRoundKey for round `r`, in place.
fn emit_add_round_key(a: &mut Asm, lay: &BsaesLayout, r: usize) {
    ld_slices(a, &A, lay.state);
    ld_slices(a, &B, lay.rk + 64 * r as u64);
    for i in 0..8 {
        a.xor(A[i], A[i], B[i]);
    }
    st_slices(a, &A, lay.state);
}

/// Bitslices the 16 plaintext bytes into the state slices.
#[allow(clippy::needless_range_loop)]
fn emit_bitslice_input(a: &mut Asm, lay: &BsaesLayout) {
    for r in B {
        a.li(r, 0);
    }
    for j in 0..16usize {
        a.lbu(T0, Reg::ZERO, (lay.pt + lane_to_byte(j) as u64) as i64);
        for i in 0..8usize {
            a.srli(T1, T0, i as i64);
            a.andi(T1, T1, 1);
            if j > 0 {
                a.slli(T1, T1, j as i64);
            }
            a.or(B[i], B[i], T1);
        }
    }
    st_slices(a, &B, lay.state);
}

/// Un-bitslices the state slices into the 16 ciphertext bytes.
#[allow(clippy::needless_range_loop)]
fn emit_unbitslice_output(a: &mut Asm, lay: &BsaesLayout) {
    ld_slices(a, &A, lay.state);
    for j in 0..16usize {
        a.li(T0, 0);
        for i in 0..8usize {
            a.srli(T1, A[i], j as i64);
            a.andi(T1, T1, 1);
            if i > 0 {
                a.slli(T1, T1, i as i64);
            }
            a.or(T0, T0, T1);
        }
        a.sb(T0, Reg::ZERO, (lay.ct + lane_to_byte(j) as u64) as i64);
    }
}

/// Emits one full BSAES encryption: `ct = AES(rk, pt)` over the
/// addresses in `lay`. `spill_hook` is called immediately before and
/// after each of the eight final-SubBytes spill stores with the slice
/// index — attack harnesses use it to insert the amplification gadget
/// (Fig 5) and its store-queue pressure tail.
///
/// Returns the instruction indices of the eight spill stores.
pub fn emit_encrypt(
    a: &mut Asm,
    lay: &BsaesLayout,
    mut spill_hook: impl FnMut(&mut Asm, SpillHook, usize),
) -> EncryptArtifacts {
    emit_bitslice_input(a, lay);
    emit_add_round_key(a, lay, 0);
    for r in 1..10 {
        emit_sub_bytes(a, lay);
        emit_shift_rows(a, lay);
        emit_mix_columns(a, lay);
        emit_add_round_key(a, lay, r);
    }
    emit_sub_bytes(a, lay);

    // The eight 16-bit intermediate spills of §V-A3 — the attack's
    // target stores. Each loads the slice and stores it to its fixed
    // stack slot, overwriting whatever the previous call left there.
    let mut spill_store_pcs = [0usize; 8];
    for (k, pc_slot) in spill_store_pcs.iter_mut().enumerate() {
        a.ld(T0, Reg::ZERO, slice_addr(lay.state, k));
        spill_hook(a, SpillHook::Before, k);
        *pc_slot = a.here();
        a.sd(T0, Reg::ZERO, (lay.spill + 64 * k as u64) as i64);
        spill_hook(a, SpillHook::After, k);
    }

    emit_shift_rows(a, lay);
    emit_add_round_key(a, lay, 10);
    emit_unbitslice_output(a, lay);
    EncryptArtifacts { spill_store_pcs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes_ref;
    use crate::bitslice;
    use pandora_sim::{Machine, SimConfig};

    fn run_encrypt(key: [u8; 16], pt: [u8; 16]) -> (Machine, BsaesLayout, EncryptArtifacts) {
        let lay = BsaesLayout::at(0x1_0000);
        let mut a = Asm::new();
        let art = emit_encrypt(&mut a, &lay, |_, _, _| {});
        a.halt();
        let prog = a.assemble().unwrap();

        let rk = RoundKeys::expand(&key);
        let mut m = Machine::new(SimConfig::default());
        m.load_program(&prog);
        m.mem_mut()
            .write_bytes(lay.rk, &BsaesLayout::round_key_bytes(&rk))
            .unwrap();
        m.mem_mut().write_bytes(lay.pt, &pt).unwrap();
        m.run(5_000_000).unwrap();
        (m, lay, art)
    }

    #[test]
    fn generated_code_matches_reference_encryption() {
        let key: [u8; 16] = std::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = std::array::from_fn(|i| (i * 0x11) as u8);
        let (m, lay, _) = run_encrypt(key, pt);
        let ct = m.mem().read_bytes(lay.ct, 16).unwrap();
        let expect = aes_ref::encrypt(&RoundKeys::expand(&key), &pt);
        assert_eq!(ct, expect);
    }

    #[test]
    fn fips197_vector_on_the_simulator() {
        let key: [u8; 16] = std::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = std::array::from_fn(|i| (i * 0x11) as u8);
        let (m, lay, _) = run_encrypt(key, pt);
        assert_eq!(
            m.mem().read_bytes(lay.ct, 16).unwrap(),
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70,
                0xb4, 0xc5, 0x5a
            ]
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn spill_slots_hold_final_subbytes_slices() {
        let key = [0x51u8; 16];
        let pt: [u8; 16] = std::array::from_fn(|i| (i * 7 + 1) as u8);
        let (m, lay, art) = run_encrypt(key, pt);
        let rk = RoundKeys::expand(&key);
        let expect = bitslice::final_subbytes_slices(&rk, &pt);
        for k in 0..8 {
            let got = m.mem().read_u64(lay.spill_slot(k)).unwrap();
            assert_eq!(got, u64::from(expect[k]), "spill slot {k}");
        }
        // The recorded pcs really are stores to the spill slots.
        let prog_pc = art.spill_store_pcs[3];
        assert!(prog_pc > 0);
    }

    #[test]
    fn constant_time_same_cycles_for_different_keys_on_baseline() {
        // On the baseline machine (no leaky optimizations) the generated
        // code must be constant-time: same cycle count for any key/pt.
        let pt: [u8; 16] = std::array::from_fn(|i| i as u8);
        let (m1, _, _) = run_encrypt([0x00; 16], pt);
        let (m2, _, _) = run_encrypt([0xff; 16], pt);
        assert_eq!(m1.stats().cycles, m2.stats().cycles);
    }
}
