//! The bitsliced AES-128 (pure-Rust evaluation).
//!
//! The state of one block is held as **eight 16-bit slices**: bit `j`
//! of slice `i` is bit `i` of state byte `j`, with lanes laid out
//! row-major (`j = 4r + c`). Every round transformation then becomes a
//! sequence of bitwise operations on whole slices:
//!
//! * SubBytes — GF(2^8) inversion by a fixed square-and-multiply chain
//!   plus the affine transform, all expressed through matrices *derived
//!   at runtime from [`crate::gf`]* (no transcribed constants),
//! * ShiftRows — a fixed bit permutation of each slice,
//! * MixColumns — slice rotations (row selection) plus the bitwise
//!   `xtime`,
//! * AddRoundKey — XOR with the bitsliced round key.
//!
//! This mirrors the paper's victim exactly (§V-A3): a constant-time
//! implementation whose per-round intermediates are **eight 16-bit
//! values**; the generated ISA code (see [`codegen`](crate::codegen))
//! spills those eight values to the stack, where the silent-store
//! attack reads them.

use crate::aes_ref::Block;
use crate::gf;
use crate::keysched::RoundKeys;

/// The eight 16-bit slices of one block.
pub type Slices = [u16; 8];

/// The input/output byte index carried in lane `j = 4r + c`
/// (FIPS-197 loads input byte `r + 4c` into state row `r`, column `c`).
#[must_use]
pub fn lane_to_byte(j: usize) -> usize {
    (j / 4) + 4 * (j % 4)
}

/// Packs a 16-byte state into slices.
#[must_use]
pub fn bitslice(state: &Block) -> Slices {
    let mut s = [0u16; 8];
    for (j, slot) in (0..16).map(|j| (j, lane_to_byte(j))) {
        let byte = state[slot];
        for (i, slice) in s.iter_mut().enumerate() {
            *slice |= u16::from((byte >> i) & 1) << j;
        }
    }
    s
}

/// Unpacks slices back into a 16-byte state.
#[must_use]
pub fn unbitslice(s: &Slices) -> Block {
    let mut state = [0u8; 16];
    for j in 0..16 {
        let mut byte = 0u8;
        for (i, slice) in s.iter().enumerate() {
            byte |= (((slice >> j) & 1) as u8) << i;
        }
        state[lane_to_byte(j)] = byte;
    }
    state
}

// ---- Derived linear-algebra descriptions of the field ops ------------

/// `SQ_ROWS[k]` = bitmask over input bits i that XOR into output bit k
/// of the GF(2^8) squaring map (linear in characteristic 2).
#[must_use]
pub fn square_rows() -> [u8; 8] {
    let mut rows = [0u8; 8];
    for i in 0..8 {
        let sq = gf::mul(1 << i, 1 << i);
        for (k, row) in rows.iter_mut().enumerate() {
            if (sq >> k) & 1 == 1 {
                *row |= 1 << i;
            }
        }
    }
    rows
}

/// `MULT_PAIRS[k]` = the (i, j) partial products `a_i & b_j` that XOR
/// into output bit k of GF(2^8) multiplication.
#[must_use]
pub fn mult_pairs() -> [Vec<(usize, usize)>; 8] {
    let mut pairs: [Vec<(usize, usize)>; 8] = Default::default();
    for i in 0..8 {
        for j in 0..8 {
            let p = gf::mul(1 << i, 1 << j);
            for (k, list) in pairs.iter_mut().enumerate() {
                if (p >> k) & 1 == 1 {
                    list.push((i, j));
                }
            }
        }
    }
    pairs
}

/// `AFFINE_ROWS[k]` = input bitmask for output bit k of the S-box's
/// affine transform; the constant 0x63 is applied separately.
#[must_use]
pub fn affine_rows() -> [u8; 8] {
    let mut rows = [0u8; 8];
    for (k, row) in rows.iter_mut().enumerate() {
        for d in [0usize, 4, 5, 6, 7] {
            *row |= 1 << ((k + d) % 8);
        }
    }
    rows
}

/// The affine constant: slices whose bit is set in 0x63 get inverted.
pub const AFFINE_CONST: u8 = 0x63;

/// One step of the inversion exponentiation chain for x^254 = x^-1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GfStep {
    /// `slot[dst] = slot[src]^2`
    Square {
        /// Destination slot.
        dst: usize,
        /// Source slot.
        src: usize,
    },
    /// `slot[dst] = slot[a] * slot[b]`
    Mult {
        /// Destination slot.
        dst: usize,
        /// First operand slot.
        a: usize,
        /// Second operand slot.
        b: usize,
    },
}

/// The addition chain computing x^254 (= the field inverse) from x in
/// slot 0, leaving the result in [`INV_RESULT_SLOT`]. Slots are scratch
/// GF-element storage; [`INV_SLOT_COUNT`] slots are used in total.
pub const INV_CHAIN: [GfStep; 11] = [
    GfStep::Square { dst: 1, src: 0 },          // x^2
    GfStep::Mult { dst: 2, a: 1, b: 0 },        // x^3
    GfStep::Square { dst: 3, src: 2 },          // x^6
    GfStep::Square { dst: 4, src: 3 },          // x^12
    GfStep::Mult { dst: 5, a: 4, b: 2 },        // x^15
    GfStep::Square { dst: 6, src: 5 },          // x^30
    GfStep::Square { dst: 7, src: 6 },          // x^60
    GfStep::Square { dst: 8, src: 7 },          // x^120
    GfStep::Square { dst: 9, src: 8 },          // x^240
    GfStep::Mult { dst: 10, a: 9, b: 4 },       // x^252
    GfStep::Mult { dst: 11, a: 10, b: 1 },      // x^254
];

/// The slot the inversion chain leaves its result in.
pub const INV_RESULT_SLOT: usize = 11;
/// Scratch slots the inversion chain uses (0 is the input).
pub const INV_SLOT_COUNT: usize = 12;

// ---- Slice-level round transformations --------------------------------

/// Squares each byte lane: a linear map over the slices.
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn square_slices(s: &Slices) -> Slices {
    let rows = square_rows();
    let mut out = [0u16; 8];
    for (k, o) in out.iter_mut().enumerate() {
        for i in 0..8 {
            if (rows[k] >> i) & 1 == 1 {
                *o ^= s[i];
            }
        }
    }
    out
}

/// Multiplies byte lanes pairwise: `out lane = a lane * b lane` in
/// GF(2^8).
#[must_use]
pub fn mul_slices(a: &Slices, b: &Slices) -> Slices {
    let pairs = mult_pairs();
    let mut out = [0u16; 8];
    for (k, o) in out.iter_mut().enumerate() {
        for &(i, j) in &pairs[k] {
            *o ^= a[i] & b[j];
        }
    }
    out
}

/// Inverts each byte lane via the [`INV_CHAIN`].
#[must_use]
pub fn inv_slices(x: &Slices) -> Slices {
    let mut slots = [[0u16; 8]; INV_SLOT_COUNT];
    slots[0] = *x;
    for step in INV_CHAIN {
        match step {
            GfStep::Square { dst, src } => slots[dst] = square_slices(&slots[src]),
            GfStep::Mult { dst, a, b } => {
                slots[dst] = mul_slices(&slots[a].clone(), &slots[b].clone());
            }
        }
    }
    slots[INV_RESULT_SLOT]
}

/// The affine transform of each byte lane (matrix then constant).
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn affine_slices(s: &Slices) -> Slices {
    let rows = affine_rows();
    let mut out = [0u16; 8];
    for (k, o) in out.iter_mut().enumerate() {
        for i in 0..8 {
            if (rows[k] >> i) & 1 == 1 {
                *o ^= s[i];
            }
        }
        if (AFFINE_CONST >> k) & 1 == 1 {
            *o = !*o;
        }
    }
    out
}

/// Bitsliced SubBytes: inversion chain + affine transform.
#[must_use]
pub fn sub_bytes_slices(s: &Slices) -> Slices {
    affine_slices(&inv_slices(s))
}

/// The ShiftRows lane permutation: `SHIFT_ROWS_SRC[j]` is the source
/// lane for destination lane `j`.
#[must_use]
pub fn shift_rows_perm() -> [usize; 16] {
    std::array::from_fn(|j| {
        let (r, c) = (j / 4, j % 4);
        4 * r + (c + r) % 4
    })
}

/// Applies a 16-lane permutation to one slice.
#[must_use]
pub fn permute16(x: u16, src_for_dst: &[usize; 16]) -> u16 {
    let mut out = 0u16;
    for (j, &src) in src_for_dst.iter().enumerate() {
        out |= ((x >> src) & 1) << j;
    }
    out
}

/// Bitsliced ShiftRows.
#[must_use]
pub fn shift_rows_slices(s: &Slices) -> Slices {
    let perm = shift_rows_perm();
    s.map(|x| permute16(x, &perm))
}

/// `xtime` (multiplication by x) on every byte lane.
#[must_use]
pub fn xtime_slices(s: &Slices) -> Slices {
    // b = (a << 1) ^ (a >> 7) * 0x1b: bit 7 folds into bits 0, 1, 3, 4.
    [
        s[7],
        s[0] ^ s[7],
        s[1],
        s[2] ^ s[7],
        s[3] ^ s[7],
        s[4],
        s[5],
        s[6],
    ]
}

/// Rotates every slice so lane (r, c) reads lane (r + k, c): the "next
/// row, same column" selector MixColumns needs.
#[must_use]
pub fn rot_rows(s: &Slices, k: u32) -> Slices {
    s.map(|x| x.rotate_right(4 * k))
}

/// Bitsliced MixColumns:
/// `b_r = xtime(a_r) ^ xtime(a_{r+1}) ^ a_{r+1} ^ a_{r+2} ^ a_{r+3}`.
#[must_use]
pub fn mix_columns_slices(s: &Slices) -> Slices {
    let a1 = rot_rows(s, 1);
    let a2 = rot_rows(s, 2);
    let a3 = rot_rows(s, 3);
    let xt = xtime_slices(s);
    let xt1 = xtime_slices(&a1);
    std::array::from_fn(|i| xt[i] ^ xt1[i] ^ a1[i] ^ a2[i] ^ a3[i])
}

/// Bitsliced AddRoundKey.
#[must_use]
pub fn add_round_key_slices(s: &Slices, rk: &Slices) -> Slices {
    std::array::from_fn(|i| s[i] ^ rk[i])
}

/// All 11 round keys in bitsliced form.
#[must_use]
pub fn round_key_slices(rk: &RoundKeys) -> [Slices; 11] {
    std::array::from_fn(|r| bitslice(&rk.round(r)))
}

/// Encrypts one block entirely in the bitsliced domain.
#[must_use]
pub fn encrypt(rk: &RoundKeys, pt: &Block) -> Block {
    let rks = round_key_slices(rk);
    let mut s = add_round_key_slices(&bitslice(pt), &rks[0]);
    for rkr in rks.iter().take(10).skip(1) {
        s = sub_bytes_slices(&s);
        s = shift_rows_slices(&s);
        s = mix_columns_slices(&s);
        s = add_round_key_slices(&s, rkr);
    }
    s = sub_bytes_slices(&s);
    s = shift_rows_slices(&s);
    s = add_round_key_slices(&s, &rks[10]);
    unbitslice(&s)
}

/// The eight 16-bit slice values immediately after the final SubBytes —
/// exactly the "eight locations storing intermediate values that can be
/// used to reconstruct the AES state after byte substitution" of §V-A3.
#[must_use]
pub fn final_subbytes_slices(rk: &RoundKeys, pt: &Block) -> Slices {
    let rks = round_key_slices(rk);
    let mut s = add_round_key_slices(&bitslice(pt), &rks[0]);
    for rkr in rks.iter().take(10).skip(1) {
        s = sub_bytes_slices(&s);
        s = shift_rows_slices(&s);
        s = mix_columns_slices(&s);
        s = add_round_key_slices(&s, rkr);
    }
    sub_bytes_slices(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes_ref;

    #[test]
    fn bitslice_round_trips() {
        let state: Block = std::array::from_fn(|i| (i * 37 + 11) as u8);
        assert_eq!(unbitslice(&bitslice(&state)), state);
    }

    #[test]
    fn lane_byte_map_is_a_bijection() {
        let mut seen = [false; 16];
        for j in 0..16 {
            let b = lane_to_byte(j);
            assert!(!seen[b]);
            seen[b] = true;
        }
    }

    #[test]
    fn sliced_square_matches_gf() {
        // 16 distinct byte lanes exercised at once.
        let state: Block = std::array::from_fn(|i| (i * 13 + 5) as u8);
        let squared = unbitslice(&square_slices(&bitslice(&state)));
        for (i, &b) in state.iter().enumerate() {
            assert_eq!(squared[i], gf::mul(b, b), "lane byte {b:#x}");
        }
    }

    #[test]
    fn sliced_mul_matches_gf() {
        let a: Block = std::array::from_fn(|i| (i * 13 + 5) as u8);
        let b: Block = std::array::from_fn(|i| (i * 7 + 31) as u8);
        let prod = unbitslice(&mul_slices(&bitslice(&a), &bitslice(&b)));
        for i in 0..16 {
            assert_eq!(prod[i], gf::mul(a[i], b[i]));
        }
    }

    #[test]
    fn sliced_sub_bytes_matches_sbox_for_all_256_inputs() {
        for base in (0..256).step_by(16) {
            let state: Block = std::array::from_fn(|i| (base + i) as u8);
            let out = unbitslice(&sub_bytes_slices(&bitslice(&state)));
            for (i, &b) in state.iter().enumerate() {
                assert_eq!(out[i], gf::sbox(b), "S({b:#x})");
            }
        }
    }

    #[test]
    fn sliced_shift_rows_matches_reference() {
        let mut state: Block = std::array::from_fn(|i| (i * 41 + 3) as u8);
        let sliced = unbitslice(&shift_rows_slices(&bitslice(&state)));
        aes_ref::shift_rows(&mut state);
        assert_eq!(sliced, state);
    }

    #[test]
    fn sliced_mix_columns_matches_reference() {
        let mut state: Block = std::array::from_fn(|i| (i * 59 + 17) as u8);
        let sliced = unbitslice(&mix_columns_slices(&bitslice(&state)));
        aes_ref::mix_columns(&mut state);
        assert_eq!(sliced, state);
    }

    #[test]
    fn bitsliced_encrypt_matches_reference() {
        let key: [u8; 16] = std::array::from_fn(|i| i as u8);
        let rk = RoundKeys::expand(&key);
        let pt: Block = std::array::from_fn(|i| (i * 0x11) as u8);
        assert_eq!(encrypt(&rk, &pt), aes_ref::encrypt(&rk, &pt));
    }

    #[test]
    fn final_subbytes_slices_match_reference_state() {
        let key = [0x3cu8; 16];
        let rk = RoundKeys::expand(&key);
        let pt: Block = std::array::from_fn(|i| (255 - i) as u8);
        let slices = final_subbytes_slices(&rk, &pt);
        assert_eq!(
            unbitslice(&slices),
            aes_ref::final_subbytes_state(&rk, &pt)
        );
    }

    #[test]
    fn inv_chain_exponents_reach_254() {
        // Symbolically track exponents through the chain.
        let mut exp = [0u32; INV_SLOT_COUNT];
        exp[0] = 1;
        for step in INV_CHAIN {
            match step {
                GfStep::Square { dst, src } => exp[dst] = exp[src] * 2,
                GfStep::Mult { dst, a, b } => exp[dst] = exp[a] + exp[b],
            }
        }
        assert_eq!(exp[INV_RESULT_SLOT], 254);
    }
}
