//! Arithmetic in GF(2^8) with the AES reduction polynomial
//! x^8 + x^4 + x^3 + x + 1 (0x11b).
//!
//! Everything downstream — the S-box, the bitsliced inversion circuit,
//! MixColumns — is *derived* from these few operations, so there are no
//! hand-transcribed tables anywhere in the workspace to get wrong.

/// The AES field polynomial, without the leading x^8 term.
pub const POLY: u8 = 0x1b;

/// Multiplication by x (the `xtime` operation).
#[must_use]
pub fn xtime(a: u8) -> u8 {
    (a << 1) ^ (if a & 0x80 != 0 { POLY } else { 0 })
}

/// Carry-less multiplication reduced mod the AES polynomial.
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    let (mut a, mut b, mut r) = (a, b, 0u8);
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    r
}

/// Exponentiation by squaring.
#[must_use]
pub fn pow(mut a: u8, mut e: u32) -> u8 {
    let mut r = 1u8;
    while e != 0 {
        if e & 1 != 0 {
            r = mul(r, a);
        }
        a = mul(a, a);
        e >>= 1;
    }
    r
}

/// The multiplicative inverse (0 maps to 0, as AES requires).
#[must_use]
pub fn inv(a: u8) -> u8 {
    pow(a, 254)
}

/// The AES S-box: inversion followed by the affine transform.
#[must_use]
pub fn sbox(x: u8) -> u8 {
    affine(inv(x))
}

/// The inverse AES S-box.
#[must_use]
pub fn inv_sbox(y: u8) -> u8 {
    inv(inv_affine(y))
}

/// The AES affine transform: `b_i = a_i ^ a_{i+4} ^ a_{i+5} ^ a_{i+6}
/// ^ a_{i+7} ^ c_i` with indices mod 8 and c = 0x63.
#[must_use]
pub fn affine(a: u8) -> u8 {
    let mut b = 0u8;
    for i in 0..8 {
        let bit = bit(a, i) ^ bit(a, i + 4) ^ bit(a, i + 5) ^ bit(a, i + 6) ^ bit(a, i + 7);
        b |= bit << i;
    }
    b ^ 0x63
}

/// The inverse of [`affine`].
#[must_use]
pub fn inv_affine(b: u8) -> u8 {
    // b'_i = b_{i+2} ^ b_{i+5} ^ b_{i+7} ^ d_i with d = 0x05.
    let mut a = 0u8;
    for i in 0..8 {
        let bit = bit(b, i + 2) ^ bit(b, i + 5) ^ bit(b, i + 7);
        a |= bit << i;
    }
    a ^ 0x05
}

fn bit(v: u8, i: usize) -> u8 {
    (v >> (i % 8)) & 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_basics() {
        assert_eq!(mul(0x57, 0x83), 0xc1, "FIPS-197 §4.2 worked example");
        assert_eq!(mul(0x57, 0x13), 0xfe, "FIPS-197 §4.2.1 worked example");
        assert_eq!(mul(0, 0xff), 0);
        assert_eq!(mul(1, 0xab), 0xab);
    }

    #[test]
    fn xtime_matches_mul_by_two() {
        for a in 0..=255u8 {
            assert_eq!(xtime(a), mul(a, 2));
        }
    }

    #[test]
    fn inverse_is_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a:#x}");
        }
        assert_eq!(inv(0), 0);
    }

    #[test]
    fn sbox_anchor_values() {
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7c);
        assert_eq!(sbox(0x53), 0xed, "FIPS-197 §5.1.1 example");
        assert_eq!(sbox(0xff), 0x16);
    }

    #[test]
    fn sbox_is_a_bijection_and_inverts() {
        let mut seen = [false; 256];
        for x in 0..=255u8 {
            let y = sbox(x);
            assert!(!seen[y as usize], "collision at {x:#x}");
            seen[y as usize] = true;
            assert_eq!(inv_sbox(y), x);
        }
    }

    #[test]
    fn affine_round_trips() {
        for a in 0..=255u8 {
            assert_eq!(inv_affine(affine(a)), a);
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(2, 1), 2);
        assert_eq!(pow(2, 8), mul(pow(2, 4), pow(2, 4)));
    }
}
