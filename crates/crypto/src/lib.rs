#![warn(missing_docs)]

//! # pandora-crypto
//!
//! The victim cryptography for the Pandora reproduction of *"Opening
//! Pandora's Box"* (ISCA 2021): a constant-time **bitsliced AES-128**
//! (the paper's BSAES target, §V-A3) provided three ways:
//!
//! * [`aes_ref`] — a byte-wise reference implementation with the full
//!   inverse round functions (the attacker's offline tool; also the
//!   ground truth, validated against FIPS-197 Appendix C),
//! * [`bitslice`] — the pure-Rust bitsliced implementation: one block
//!   held as eight 16-bit slices, S-box as a GF(2^8) inversion chain
//!   whose matrices are derived from [`gf`] at runtime,
//! * [`codegen`] — the same computation compiled to the Pandora ISA so
//!   it can run (and be attacked) on the simulator, with the eight
//!   final-SubBytes slice spills exposed as attack targets.
//!
//! [`keysched`] implements AES-128 key expansion *and its inversion* —
//! recovering the master key from the round-10 key, the final step of
//! the paper's silent-store key-recovery attack.
//!
//! ```
//! use pandora_crypto::{aes_ref, keysched::RoundKeys};
//!
//! let key = [7u8; 16];
//! let rk = RoundKeys::expand(&key);
//! let ct = aes_ref::encrypt(&rk, &[0u8; 16]);
//! assert_eq!(aes_ref::decrypt(&rk, &ct), [0u8; 16]);
//!
//! // The attack pipeline: leak the final-SubBytes state, derive the
//! // round-10 key, invert the schedule.
//! let leak = aes_ref::final_subbytes_state(&rk, &[0u8; 16]);
//! let k10 = aes_ref::round10_key_from_leak(&leak, &ct);
//! assert_eq!(RoundKeys::from_round10(&k10).master_key(), key);
//! ```

pub mod aes_ref;
pub mod bitslice;
pub mod codegen;
pub mod gf;
pub mod keysched;

pub use aes_ref::Block;
pub use codegen::{BsaesLayout, EncryptArtifacts, SpillHook};
pub use keysched::RoundKeys;
