//! The AES-128 key schedule — expansion *and inversion*.
//!
//! Inversion is the attack's final step (§V-A3): "The key expansion
//! algorithm is invertible, so knowing those sixteen bytes allows the
//! attacker to reconstruct the entire original key."

use crate::gf;

/// Round-constant for word index `i` (i a multiple of 4): x^(i/4 - 1).
fn rcon(i: usize) -> u8 {
    gf::pow(2, (i / 4 - 1) as u32)
}

fn sub_word(w: [u8; 4]) -> [u8; 4] {
    w.map(gf::sbox)
}

fn rot_word(w: [u8; 4]) -> [u8; 4] {
    [w[1], w[2], w[3], w[0]]
}

fn xor_word(a: [u8; 4], b: [u8; 4]) -> [u8; 4] {
    std::array::from_fn(|i| a[i] ^ b[i])
}

/// The 44 expanded words of an AES-128 key schedule (11 round keys).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundKeys {
    words: [[u8; 4]; 44],
}

impl RoundKeys {
    /// Expands a 16-byte master key.
    #[must_use]
    pub fn expand(key: &[u8; 16]) -> RoundKeys {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t = sub_word(rot_word(t));
                t[0] ^= rcon(i);
            }
            w[i] = xor_word(w[i - 4], t);
        }
        RoundKeys { words: w }
    }

    /// Reconstructs the full schedule — and thus the master key — from
    /// the *last* round key alone, by running the recurrence backwards.
    #[must_use]
    pub fn from_round10(k10: &[u8; 16]) -> RoundKeys {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[40 + i] = [
                k10[4 * i],
                k10[4 * i + 1],
                k10[4 * i + 2],
                k10[4 * i + 3],
            ];
        }
        for i in (4..44).rev() {
            // w[i] = w[i-4] ^ f(w[i-1])  =>  w[i-4] = w[i] ^ f(w[i-1]).
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t = sub_word(rot_word(t));
                t[0] ^= rcon(i);
            }
            w[i - 4] = xor_word(w[i], t);
        }
        RoundKeys { words: w }
    }

    /// The 16-byte round key for round `r` (0..=10).
    ///
    /// # Panics
    ///
    /// Panics if `r > 10`.
    #[must_use]
    pub fn round(&self, r: usize) -> [u8; 16] {
        assert!(r <= 10, "AES-128 has rounds 0..=10");
        let mut k = [0u8; 16];
        for (c, word) in self.words[4 * r..4 * r + 4].iter().enumerate() {
            k[4 * c..4 * c + 4].copy_from_slice(word);
        }
        k
    }

    /// The master key (round 0 key).
    #[must_use]
    pub fn master_key(&self) -> [u8; 16] {
        self.round(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    #[test]
    fn fips197_appendix_a_expansion() {
        let rk = RoundKeys::expand(&FIPS_KEY);
        // w[4] = a0fafe17, w[43] = b6630ca6 (FIPS-197 Appendix A.1).
        assert_eq!(rk.words[4], [0xa0, 0xfa, 0xfe, 0x17]);
        assert_eq!(rk.words[43], [0xb6, 0x63, 0x0c, 0xa6]);
        assert_eq!(
            rk.round(10),
            [
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6,
                0x63, 0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn inversion_recovers_master_key() {
        let rk = RoundKeys::expand(&FIPS_KEY);
        let rebuilt = RoundKeys::from_round10(&rk.round(10));
        assert_eq!(rebuilt, rk);
        assert_eq!(rebuilt.master_key(), FIPS_KEY);
    }

    #[test]
    fn inversion_works_for_many_keys() {
        for seed in 0..32u8 {
            let key: [u8; 16] = std::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u8 * 7));
            let rk = RoundKeys::expand(&key);
            assert_eq!(RoundKeys::from_round10(&rk.round(10)).master_key(), key);
        }
    }

    #[test]
    fn round_zero_is_master_key() {
        let rk = RoundKeys::expand(&FIPS_KEY);
        assert_eq!(rk.round(0), FIPS_KEY);
    }

    #[test]
    #[should_panic(expected = "rounds 0..=10")]
    fn round_out_of_range_panics() {
        let rk = RoundKeys::expand(&FIPS_KEY);
        let _ = rk.round(11);
    }
}
