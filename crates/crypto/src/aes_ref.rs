//! A byte-wise reference AES-128 (encrypt *and* decrypt).
//!
//! This is the ground truth the bitsliced implementation and the
//! generated ISA code are tested against, and it supplies the inverse
//! round functions the attacker's chosen-plaintext computation needs
//! (§V-A3: the attacker knows its own key, so it can run the cipher
//! backwards from any desired intermediate state).
//!
//! The state is the FIPS-197 column-major layout: `state[r + 4c]` is
//! row `r`, column `c`, loaded from input byte `r + 4c`... i.e. the
//! input bytes fill columns first; we keep the flat `[u8; 16]` in input
//! order and index with `r + 4c`.

use crate::gf;
use crate::keysched::RoundKeys;

/// A 16-byte AES block.
pub type Block = [u8; 16];

#[inline]
fn at(state: &Block, r: usize, c: usize) -> u8 {
    state[r + 4 * c]
}

#[inline]
fn set(state: &mut Block, r: usize, c: usize, v: u8) {
    state[r + 4 * c] = v;
}

/// SubBytes: the S-box applied to every state byte.
pub fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = gf::sbox(*b);
    }
}

/// InvSubBytes.
pub fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = gf::inv_sbox(*b);
    }
}

/// ShiftRows: row `r` rotates left by `r`.
pub fn shift_rows(state: &mut Block) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            set(state, r, c, at(&old, r, (c + r) % 4));
        }
    }
}

/// InvShiftRows.
pub fn inv_shift_rows(state: &mut Block) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            set(state, r, (c + r) % 4, at(&old, r, c));
        }
    }
}

/// MixColumns.
pub fn mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col: Vec<u8> = (0..4).map(|r| at(state, r, c)).collect();
        for r in 0..4 {
            let v = gf::mul(col[r], 2)
                ^ gf::mul(col[(r + 1) % 4], 3)
                ^ col[(r + 2) % 4]
                ^ col[(r + 3) % 4];
            set(state, r, c, v);
        }
    }
}

/// InvMixColumns.
pub fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col: Vec<u8> = (0..4).map(|r| at(state, r, c)).collect();
        for r in 0..4 {
            let v = gf::mul(col[r], 0x0e)
                ^ gf::mul(col[(r + 1) % 4], 0x0b)
                ^ gf::mul(col[(r + 2) % 4], 0x0d)
                ^ gf::mul(col[(r + 3) % 4], 0x09);
            set(state, r, c, v);
        }
    }
}

/// AddRoundKey.
pub fn add_round_key(state: &mut Block, rk: &Block) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

/// Encrypts one block under the expanded key.
#[must_use]
pub fn encrypt(rk: &RoundKeys, pt: &Block) -> Block {
    let mut s = *pt;
    add_round_key(&mut s, &rk.round(0));
    for r in 1..10 {
        sub_bytes(&mut s);
        shift_rows(&mut s);
        mix_columns(&mut s);
        add_round_key(&mut s, &rk.round(r));
    }
    sub_bytes(&mut s);
    shift_rows(&mut s);
    add_round_key(&mut s, &rk.round(10));
    s
}

/// Decrypts one block under the expanded key.
#[must_use]
pub fn decrypt(rk: &RoundKeys, ct: &Block) -> Block {
    let mut s = *ct;
    add_round_key(&mut s, &rk.round(10));
    inv_shift_rows(&mut s);
    inv_sub_bytes(&mut s);
    for r in (1..10).rev() {
        add_round_key(&mut s, &rk.round(r));
        inv_mix_columns(&mut s);
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
    }
    add_round_key(&mut s, &rk.round(0));
    s
}

/// The state immediately after the *final* SubBytes (before the final
/// ShiftRows/AddRoundKey) — the intermediate the silent-store attack
/// reconstructs (§V-A3).
#[must_use]
pub fn final_subbytes_state(rk: &RoundKeys, pt: &Block) -> Block {
    let mut s = *pt;
    add_round_key(&mut s, &rk.round(0));
    for r in 1..10 {
        sub_bytes(&mut s);
        shift_rows(&mut s);
        mix_columns(&mut s);
        add_round_key(&mut s, &rk.round(r));
    }
    sub_bytes(&mut s);
    s
}

/// The plaintext that makes the final-SubBytes state equal `target`
/// under the expanded key `rk` — the attacker's chosen-plaintext
/// inversion: it knows its own key, so it runs the cipher backwards.
#[must_use]
pub fn plaintext_for_final_subbytes(rk: &RoundKeys, target: &Block) -> Block {
    let mut s = *target;
    inv_sub_bytes(&mut s);
    for r in (1..10).rev() {
        add_round_key(&mut s, &rk.round(r));
        inv_mix_columns(&mut s);
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
    }
    add_round_key(&mut s, &rk.round(0));
    s
}

/// Recovers the last round key from a known (plaintext-independent)
/// final-SubBytes state and the matching ciphertext:
/// `k10 = C ^ ShiftRows(S)`.
#[must_use]
pub fn round10_key_from_leak(final_sb_state: &Block, ciphertext: &Block) -> Block {
    let mut s = *final_sb_state;
    shift_rows(&mut s);
    let mut k = [0u8; 16];
    for i in 0..16 {
        k[i] = s[i] ^ ciphertext[i];
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keysched::RoundKeys;

    fn fips_key() -> Block {
        [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]
    }

    fn fips_pt() -> Block {
        [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]
    }

    const FIPS_CT: Block = [
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5,
        0x5a,
    ];

    #[test]
    fn fips197_appendix_c_vector() {
        let rk = RoundKeys::expand(&fips_key());
        assert_eq!(encrypt(&rk, &fips_pt()), FIPS_CT);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let rk = RoundKeys::expand(&fips_key());
        assert_eq!(decrypt(&rk, &FIPS_CT), fips_pt());
        let rk2 = RoundKeys::expand(&[0x2b; 16]);
        let pt = [0x5a; 16];
        assert_eq!(decrypt(&rk2, &encrypt(&rk2, &pt)), pt);
    }

    #[test]
    fn shift_rows_round_trips() {
        let mut s: Block = std::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut s: Block = std::array::from_fn(|i| (i * 17 + 3) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn chosen_plaintext_inversion_hits_target() {
        let rk = RoundKeys::expand(&fips_key());
        let target: Block = std::array::from_fn(|i| (i * 29 + 7) as u8);
        let pt = plaintext_for_final_subbytes(&rk, &target);
        assert_eq!(final_subbytes_state(&rk, &pt), target);
    }

    #[test]
    fn round10_key_recovery_from_leak() {
        let rk = RoundKeys::expand(&fips_key());
        let pt = fips_pt();
        let leak = final_subbytes_state(&rk, &pt);
        let ct = encrypt(&rk, &pt);
        assert_eq!(round10_key_from_leak(&leak, &ct), rk.round(10));
    }
}
