//! Property-based tests of the ISA's architectural semantics and the
//! assembler.

use pandora_isa::{AluOp, Asm, BranchCond, Instr, Reg};
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_is_commutative_and_associative(a: u64, b: u64, c: u64) {
        prop_assert_eq!(AluOp::Add.eval(a, b), AluOp::Add.eval(b, a));
        prop_assert_eq!(
            AluOp::Add.eval(AluOp::Add.eval(a, b), c),
            AluOp::Add.eval(a, AluOp::Add.eval(b, c))
        );
    }

    #[test]
    fn xor_is_self_inverse(a: u64, b: u64) {
        prop_assert_eq!(AluOp::Xor.eval(AluOp::Xor.eval(a, b), b), a);
    }

    #[test]
    fn and_or_are_idempotent_and_absorbing(a: u64, b: u64) {
        prop_assert_eq!(AluOp::And.eval(a, a), a);
        prop_assert_eq!(AluOp::Or.eval(a, a), a);
        // Absorption: a & (a | b) == a.
        prop_assert_eq!(AluOp::And.eval(a, AluOp::Or.eval(a, b)), a);
    }

    #[test]
    fn unsigned_division_algorithm_holds(a: u64, b in 1u64..) {
        let q = AluOp::Divu.eval(a, b);
        let r = AluOp::Remu.eval(a, b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn signed_division_algorithm_holds(a: i64, b in prop::num::i64::ANY.prop_filter("nonzero", |&b| b != 0)) {
        // Skip the single overflow case, which has bespoke semantics.
        prop_assume!(!(a == i64::MIN && b == -1));
        let q = AluOp::Div.eval(a as u64, b as u64) as i64;
        let r = AluOp::Rem.eval(a as u64, b as u64) as i64;
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        prop_assert!(r.unsigned_abs() < b.unsigned_abs());
    }

    #[test]
    fn shifts_mask_their_amount(a: u64, s in 0u64..256) {
        prop_assert_eq!(AluOp::Sll.eval(a, s), AluOp::Sll.eval(a, s & 63));
        prop_assert_eq!(AluOp::Srl.eval(a, s), AluOp::Srl.eval(a, s & 63));
        prop_assert_eq!(AluOp::Sra.eval(a, s), AluOp::Sra.eval(a, s & 63));
    }

    #[test]
    fn slt_matches_rust_comparisons(a: u64, b: u64) {
        prop_assert_eq!(AluOp::Slt.eval(a, b), u64::from((a as i64) < (b as i64)));
        prop_assert_eq!(AluOp::Sltu.eval(a, b), u64::from(a < b));
    }

    #[test]
    fn branch_conditions_partition(a: u64, b: u64) {
        // Eq/Ne and Lt/Ge and Ltu/Geu are complementary pairs.
        prop_assert_ne!(BranchCond::Eq.eval(a, b), BranchCond::Ne.eval(a, b));
        prop_assert_ne!(BranchCond::Lt.eval(a, b), BranchCond::Ge.eval(a, b));
        prop_assert_ne!(BranchCond::Ltu.eval(a, b), BranchCond::Geu.eval(a, b));
    }

    #[test]
    fn mulh_matches_wide_multiplication(a: u64, b: u64) {
        let wide = (a as u128) * (b as u128);
        prop_assert_eq!(AluOp::Mulh.eval(a, b), (wide >> 64) as u64);
        prop_assert_eq!(
            AluOp::Mul.eval(a, b),
            (wide & u128::from(u64::MAX)) as u64
        );
    }

    #[test]
    fn assembler_resolves_arbitrary_label_topologies(
        // Jump targets as positions among n labelled slots.
        jumps in prop::collection::vec(0usize..8, 1..8)
    ) {
        let mut a = Asm::new();
        for (i, &target) in jumps.iter().enumerate() {
            a.label(format!("slot{i}"));
            a.j(format!("slot{}", target % jumps.len()));
        }
        // Terminator labels for any forward references.
        for i in jumps.len()..8 {
            a.label(format!("slot{i}"));
        }
        a.halt();
        let prog = a.assemble().expect("all labels defined");
        for (i, &target) in jumps.iter().enumerate() {
            match prog[i] {
                Instr::Jal { target: t, .. } => {
                    prop_assert_eq!(t, target % jumps.len());
                }
                ref other => prop_assert!(false, "expected jal, got {:?}", other),
            }
        }
    }

    #[test]
    fn sources_and_dest_are_consistent(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
        let i = Instr::AluRR {
            op: AluOp::Add,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
        };
        prop_assert_eq!(i.sources().len(), 2);
        prop_assert_eq!(i.dest().is_some(), rd != 0);
    }
}

mod roundtrip {
    use pandora_isa::{parse_program, AluOp, Asm, BranchCond, FpOp, Reg, Width};
    use proptest::prelude::*;

    proptest! {
        /// Disassembly round-trips: parse(to_asm_text(p)) == p.
        #[test]
        fn disassembly_parses_back_to_the_same_program(
            seeds in prop::collection::vec(any::<i64>(), 1..4),
            ops in prop::collection::vec((0u8..16, 0u8..32, 0u8..32, 0u8..32), 0..12),
            mems in prop::collection::vec((0u8..8, 0u8..4, -64i64..64), 0..6),
            fp in prop::collection::vec((0u8..4, 1u8..32, 1u8..32, 1u8..32), 0..3),
            taken_back in any::<bool>()
        ) {
            let alu_ops = [
                AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor,
                AluOp::Sll, AluOp::Srl, AluOp::Sra, AluOp::Slt, AluOp::Sltu,
                AluOp::Mul, AluOp::Mulh, AluOp::Div, AluOp::Divu, AluOp::Rem,
                AluOp::Remu,
            ];
            let widths = [Width::Byte, Width::Half, Width::Word, Width::Dword];
            let fps = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div];
            let mut a = Asm::new();
            a.label("top");
            for (i, &s) in seeds.iter().enumerate() {
                a.li(Reg::new(5 + i as u8), s as u64);
            }
            for &(op, rd, rs1, rs2) in &ops {
                a.alu(
                    alu_ops[op as usize % alu_ops.len()],
                    Reg::new(rd % 32),
                    Reg::new(rs1 % 32),
                    Reg::new(rs2 % 32),
                );
            }
            for &(r, w, off) in &mems {
                let width = widths[w as usize % 4];
                a.store(Reg::new(r % 32), Reg::ZERO, 0x100 + off, width);
                a.load(Reg::new(r % 32), Reg::ZERO, 0x100 + off, width, width != Width::Dword);
            }
            for &(op, rd, rs1, rs2) in &fp {
                a.fp(fps[op as usize % 4], Reg::new(rd % 32), Reg::new(rs1 % 32), Reg::new(rs2 % 32));
            }
            if taken_back {
                a.branch(BranchCond::Ltu, Reg::T0, Reg::T1, "top");
            }
            a.rdcycle(Reg::T2);
            a.flush(Reg::ZERO, 0x40);
            a.fence();
            a.halt();
            let prog = a.assemble().unwrap();

            let text = prog.to_asm_text();
            let reparsed = parse_program(&text)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
            prop_assert_eq!(reparsed, prog);
        }
    }
}
