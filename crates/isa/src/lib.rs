#![warn(missing_docs)]

//! # pandora-isa
//!
//! A small, RISC-like instruction set used as the compilation target for
//! every victim and attacker program in the Pandora reproduction of
//! *"Opening Pandora's Box: A Systematic Study of New Ways
//! Microarchitecture Can Leak Private Data"* (ISCA 2021).
//!
//! The ISA is deliberately minimal but complete enough to express real
//! programs (the repository compiles a constant-time bitsliced AES-128
//! and an eBPF-style sandbox to it):
//!
//! * 32 general-purpose 64-bit registers, `x0` hardwired to zero,
//! * the usual integer ALU operations including multiply and divide,
//! * IEEE-754 double-precision operations on register bit patterns
//!   (used to model subnormal-operand timing variation),
//! * byte/half/word/dword loads and stores,
//! * conditional branches, direct and indirect jumps,
//! * `rdcycle` (the receiver's timer, §II of the paper), `flush`
//!   (a clflush-like line eviction used by attack receivers), `fence`,
//!   and `halt`.
//!
//! Programs are built with [`Asm`], a label-resolving assembler:
//!
//! ```
//! use pandora_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! let (t0, t1) = (Reg::T0, Reg::T1);
//! a.li(t0, 0);
//! a.li(t1, 10);
//! a.label("loop");
//! a.addi(t0, t0, 3);
//! a.addi(t1, t1, -1);
//! a.bnez(t1, "loop");
//! a.halt();
//! let prog = a.assemble().expect("labels resolve");
//! assert_eq!(prog.len(), 6);
//! ```

mod asm;
mod instr;
pub mod parse;
mod program;
mod reg;

pub use asm::{Asm, AsmError};
pub use instr::{AluOp, BranchCond, FpOp, Instr, Width};
pub use parse::{parse_program, ParseError};
pub use program::Program;
pub use reg::Reg;
