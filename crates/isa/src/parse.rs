//! A text assembler: parse RISC-V-flavoured assembly into a
//! [`Program`].
//!
//! The format is one instruction per line, `#` comments, `name:`
//! labels, ABI or numeric register names, and `offset(base)` memory
//! operands:
//!
//! ```text
//! # sum 1..=10
//!     li   t0, 0
//!     li   t1, 10
//! loop:
//!     add  t0, t0, t1
//!     addi t1, t1, -1
//!     bnez t1, loop
//!     halt
//! ```
//!
//! ```
//! use pandora_isa::parse_program;
//! let p = parse_program("li t0, 7\nhalt\n").unwrap();
//! assert_eq!(p.len(), 2);
//! ```

use std::error::Error;
use std::fmt;

use crate::{AluOp, Asm, AsmError, BranchCond, FpOp, Program, Reg, Width};

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a register name: `x0`–`x31` or an ABI alias.
fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim();
    if let Some(num) = t.strip_prefix('x') {
        if let Ok(i) = num.parse::<u8>() {
            if (i as usize) < Reg::COUNT {
                return Ok(Reg::new(i));
            }
        }
    }
    let named = match t {
        "zero" => Reg::ZERO,
        "ra" => Reg::RA,
        "sp" => Reg::SP,
        "gp" => Reg::GP,
        "tp" => Reg::TP,
        "t0" => Reg::T0,
        "t1" => Reg::T1,
        "t2" => Reg::T2,
        "s0" | "fp" => Reg::S0,
        "s1" => Reg::S1,
        "a0" => Reg::A0,
        "a1" => Reg::A1,
        "a2" => Reg::A2,
        "a3" => Reg::A3,
        "a4" => Reg::A4,
        "a5" => Reg::A5,
        "a6" => Reg::A6,
        "a7" => Reg::A7,
        "s2" => Reg::S2,
        "s3" => Reg::S3,
        "s4" => Reg::S4,
        "s5" => Reg::S5,
        "s6" => Reg::S6,
        "s7" => Reg::S7,
        "s8" => Reg::S8,
        "s9" => Reg::S9,
        "s10" => Reg::S10,
        "s11" => Reg::S11,
        "t3" => Reg::T3,
        "t4" => Reg::T4,
        "t5" => Reg::T5,
        "t6" => Reg::T6,
        _ => return Err(err(line, format!("unknown register `{t}`"))),
    };
    Ok(named)
}

/// Parses a signed immediate, decimal or `0x`-hex.
fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse::<u64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{t}`")))?;
    Ok(if neg {
        (value as i64).wrapping_neg()
    } else {
        value as i64
    })
}

/// Parses `offset(base)`.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), ParseError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(err(line, format!("expected offset(base), got `{t}`")));
    }
    let offset = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let base = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((offset, base))
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn arity(line: usize, ops: &[String], n: usize, mnemonic: &str) -> Result<(), ParseError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(
            line,
            format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
        ))
    }
}

/// Parses a program from assembly text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed line, or an
/// assembler error (undefined/duplicate label) mapped to line 0.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut a = Asm::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let code = raw.split(['#', ';']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Leading labels (possibly several).
        let mut code = code;
        while let Some(colon) = code.find(':') {
            let (label, rest) = code.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{label}`")));
            }
            a.label(label);
            code = rest[1..].trim();
        }
        if code.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match code.find(char::is_whitespace) {
            Some(ws) => code.split_at(ws),
            None => (code, ""),
        };
        let m = mnemonic.to_ascii_lowercase();
        let ops = split_operands(rest);
        parse_instr(&mut a, &m, &ops, line)?;
    }
    a.assemble().map_err(ParseError::from)
}

fn parse_instr(a: &mut Asm, m: &str, ops: &[String], line: usize) -> Result<(), ParseError> {
    let rrr = |a: &mut Asm, op: AluOp, ops: &[String]| -> Result<(), ParseError> {
        arity(line, ops, 3, m)?;
        a.alu(
            op,
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            parse_reg(&ops[2], line)?,
        );
        Ok(())
    };
    let rri = |a: &mut Asm, op: AluOp, ops: &[String]| -> Result<(), ParseError> {
        arity(line, ops, 3, m)?;
        a.alui(
            op,
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            parse_imm(&ops[2], line)?,
        );
        Ok(())
    };
    let fp3 = |a: &mut Asm, op: FpOp, ops: &[String]| -> Result<(), ParseError> {
        arity(line, ops, 3, m)?;
        a.fp(
            op,
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            parse_reg(&ops[2], line)?,
        );
        Ok(())
    };
    let load = |a: &mut Asm, w: Width, signed: bool, ops: &[String]| -> Result<(), ParseError> {
        arity(line, ops, 2, m)?;
        let rd = parse_reg(&ops[0], line)?;
        let (offset, base) = parse_mem_operand(&ops[1], line)?;
        a.load(rd, base, offset, w, signed);
        Ok(())
    };
    let store = |a: &mut Asm, w: Width, ops: &[String]| -> Result<(), ParseError> {
        arity(line, ops, 2, m)?;
        let src = parse_reg(&ops[0], line)?;
        let (offset, base) = parse_mem_operand(&ops[1], line)?;
        a.store(src, base, offset, w);
        Ok(())
    };
    let branch = |a: &mut Asm, c: BranchCond, ops: &[String]| -> Result<(), ParseError> {
        arity(line, ops, 3, m)?;
        a.branch(
            c,
            parse_reg(&ops[0], line)?,
            parse_reg(&ops[1], line)?,
            ops[2].clone(),
        );
        Ok(())
    };

    match m {
        "add" => rrr(a, AluOp::Add, ops),
        "sub" => rrr(a, AluOp::Sub, ops),
        "and" => rrr(a, AluOp::And, ops),
        "or" => rrr(a, AluOp::Or, ops),
        "xor" => rrr(a, AluOp::Xor, ops),
        "sll" => rrr(a, AluOp::Sll, ops),
        "srl" => rrr(a, AluOp::Srl, ops),
        "sra" => rrr(a, AluOp::Sra, ops),
        "slt" => rrr(a, AluOp::Slt, ops),
        "sltu" => rrr(a, AluOp::Sltu, ops),
        "mul" => rrr(a, AluOp::Mul, ops),
        "mulh" => rrr(a, AluOp::Mulh, ops),
        "div" => rrr(a, AluOp::Div, ops),
        "divu" => rrr(a, AluOp::Divu, ops),
        "rem" => rrr(a, AluOp::Rem, ops),
        "remu" => rrr(a, AluOp::Remu, ops),
        "addi" => rri(a, AluOp::Add, ops),
        "andi" => rri(a, AluOp::And, ops),
        "ori" => rri(a, AluOp::Or, ops),
        "xori" => rri(a, AluOp::Xor, ops),
        "slli" => rri(a, AluOp::Sll, ops),
        "srli" => rri(a, AluOp::Srl, ops),
        "srai" => rri(a, AluOp::Sra, ops),
        "fadd" => fp3(a, FpOp::Add, ops),
        "fsub" => fp3(a, FpOp::Sub, ops),
        "fmul" => fp3(a, FpOp::Mul, ops),
        "fdiv" => fp3(a, FpOp::Div, ops),
        "li" => {
            arity(line, ops, 2, m)?;
            let rd = parse_reg(&ops[0], line)?;
            a.li(rd, parse_imm(&ops[1], line)? as u64);
            Ok(())
        }
        "mv" => {
            arity(line, ops, 2, m)?;
            a.mv(parse_reg(&ops[0], line)?, parse_reg(&ops[1], line)?);
            Ok(())
        }
        "lb" => load(a, Width::Byte, true, ops),
        "lbu" => load(a, Width::Byte, false, ops),
        "lh" => load(a, Width::Half, true, ops),
        "lhu" => load(a, Width::Half, false, ops),
        "lw" => load(a, Width::Word, true, ops),
        "lwu" => load(a, Width::Word, false, ops),
        "ld" => load(a, Width::Dword, false, ops),
        "sb" => store(a, Width::Byte, ops),
        "sh" => store(a, Width::Half, ops),
        "sw" => store(a, Width::Word, ops),
        "sd" => store(a, Width::Dword, ops),
        "beq" => branch(a, BranchCond::Eq, ops),
        "bne" => branch(a, BranchCond::Ne, ops),
        "blt" => branch(a, BranchCond::Lt, ops),
        "bge" => branch(a, BranchCond::Ge, ops),
        "bltu" => branch(a, BranchCond::Ltu, ops),
        "bgeu" => branch(a, BranchCond::Geu, ops),
        "beqz" => {
            arity(line, ops, 2, m)?;
            a.beqz(parse_reg(&ops[0], line)?, ops[1].clone());
            Ok(())
        }
        "bnez" => {
            arity(line, ops, 2, m)?;
            a.bnez(parse_reg(&ops[0], line)?, ops[1].clone());
            Ok(())
        }
        "j" => {
            arity(line, ops, 1, m)?;
            a.j(ops[0].clone());
            Ok(())
        }
        "jal" => {
            arity(line, ops, 2, m)?;
            a.jal(parse_reg(&ops[0], line)?, ops[1].clone());
            Ok(())
        }
        "jalr" => {
            arity(line, ops, 2, m)?;
            let rd = parse_reg(&ops[0], line)?;
            let (offset, base) = parse_mem_operand(&ops[1], line)?;
            a.jalr(rd, base, offset);
            Ok(())
        }
        "ret" => {
            arity(line, ops, 0, m)?;
            a.ret();
            Ok(())
        }
        "rdcycle" => {
            arity(line, ops, 1, m)?;
            a.rdcycle(parse_reg(&ops[0], line)?);
            Ok(())
        }
        "flush" => {
            arity(line, ops, 1, m)?;
            let (offset, base) = parse_mem_operand(&ops[0], line)?;
            a.flush(base, offset);
            Ok(())
        }
        "fence" => {
            arity(line, ops, 0, m)?;
            a.fence();
            Ok(())
        }
        "nop" => {
            arity(line, ops, 0, m)?;
            a.nop();
            Ok(())
        }
        "halt" => {
            arity(line, ops, 0, m)?;
            a.halt();
            Ok(())
        }
        _ => Err(err(line, format!("unknown mnemonic `{m}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;

    #[test]
    fn parses_the_doc_example() {
        let p = parse_program(
            "# sum\n li t0, 0\n li t1, 10\nloop:\n add t0, t0, t1\n addi t1, t1, -1\n bnez t1, loop\n halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert!(matches!(p[4], Instr::Branch { target: 2, .. }));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse_program("ld t0, 8(sp)\nsd t0, -16(s0)\nflush 0(t1)\nhalt").unwrap();
        assert!(matches!(
            p[0],
            Instr::Load {
                offset: 8,
                base: Reg::SP,
                ..
            }
        ));
        assert!(matches!(p[1], Instr::Store { offset: -16, .. }));
        assert!(matches!(p[2], Instr::Flush { .. }));
    }

    #[test]
    fn parses_hex_and_negative_immediates() {
        let p = parse_program("li a0, 0xdead\naddi a0, a0, -3\nhalt").unwrap();
        assert!(matches!(p[0], Instr::Li { imm: 0xdead, .. }));
        assert!(matches!(p[1], Instr::AluRI { imm: -3, .. }));
    }

    #[test]
    fn numeric_and_abi_register_names_agree() {
        let p = parse_program("add x5, x6, x7\nadd t0, t1, t2\nhalt").unwrap();
        assert_eq!(p[0], p[1]);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let e = parse_program("nop\nfrobnicate t0\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse_program("li q9, 3\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("q9"));

        let e = parse_program("addi t0, t1\nhalt").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn undefined_label_is_reported() {
        let e = parse_program("j nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let p = parse_program("\n# full line comment\n  ; also a comment\nnop # trailing\nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn multiple_labels_on_one_line() {
        let p = parse_program("a: b: nop\nj a\nj b\nhalt").unwrap();
        assert!(matches!(p[1], Instr::Jal { target: 0, .. }));
        assert!(matches!(p[2], Instr::Jal { target: 0, .. }));
    }

    #[test]
    fn fp_mnemonics() {
        let p = parse_program("fmul t0, t1, t2\nhalt").unwrap();
        assert!(matches!(
            p[0],
            Instr::Fp {
                op: FpOp::Mul,
                ..
            }
        ));
    }
}
