use std::fmt;
use std::ops::Index;

use crate::Instr;

/// An assembled, immutable program: a sequence of instructions with all
/// branch targets resolved to instruction indices.
///
/// Produced by [`Asm::assemble`]; consumed by the simulator.
///
/// [`Asm::assemble`]: crate::Asm::assemble
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Wraps a raw instruction sequence.
    ///
    /// # Panics
    ///
    /// Panics if any control-flow target points outside the program;
    /// such a program could never have come from the assembler.
    #[must_use]
    pub fn new(instrs: Vec<Instr>) -> Program {
        for (pc, i) in instrs.iter().enumerate() {
            let target = match *i {
                Instr::Branch { target, .. } | Instr::Jal { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    t < instrs.len(),
                    "instruction {pc} targets {t}, beyond program end {}",
                    instrs.len()
                );
            }
        }
        Program { instrs }
    }

    /// The number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at index `pc`, or `None` past the end.
    #[must_use]
    pub fn get(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Iterates over the instructions in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// A view of the raw instruction slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Instr] {
        &self.instrs
    }
}

impl Index<usize> for Program {
    type Output = Instr;

    fn index(&self, pc: usize) -> &Instr {
        &self.instrs[pc]
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:5}: {i}")?;
        }
        Ok(())
    }
}

impl Program {
    /// Renders the program as assembly text that [`parse_program`]
    /// accepts: branch/jump targets become generated `L<n>:` labels.
    /// `parse_program(p.to_asm_text()) == p` for every program (a
    /// property the test suite checks).
    ///
    /// [`parse_program`]: crate::parse_program
    #[must_use]
    pub fn to_asm_text(&self) -> String {
        use crate::{AluOp, Instr};
        use std::collections::BTreeSet;

        let targets: BTreeSet<usize> = self
            .instrs
            .iter()
            .filter_map(|i| match *i {
                Instr::Branch { target, .. } | Instr::Jal { target, .. } => Some(target),
                _ => None,
            })
            .collect();
        let label = |pc: usize| format!("L{pc}");

        let mut out = String::new();
        for (pc, i) in self.instrs.iter().enumerate() {
            if targets.contains(&pc) {
                out.push_str(&label(pc));
                out.push_str(":\n");
            }
            let line = match *i {
                Instr::AluRR { op, rd, rs1, rs2 } => {
                    format!("{} {rd}, {rs1}, {rs2}", alu_name(op))
                }
                Instr::AluRI { op, rd, rs1, imm } => {
                    format!("{}i {rd}, {rs1}, {imm}", alu_name(op))
                }
                Instr::Fp { op, rd, rs1, rs2 } => {
                    format!("f{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
                }
                Instr::Li { rd, imm } => {
                    // Immediates round-trip through i64 in the parser.
                    format!("li {rd}, {}", imm as i64)
                }
                Instr::Load {
                    rd,
                    base,
                    offset,
                    width,
                    signed,
                } => {
                    let m = match (width, signed) {
                        (crate::Width::Byte, true) => "lb",
                        (crate::Width::Byte, false) => "lbu",
                        (crate::Width::Half, true) => "lh",
                        (crate::Width::Half, false) => "lhu",
                        (crate::Width::Word, true) => "lw",
                        (crate::Width::Word, false) => "lwu",
                        (crate::Width::Dword, _) => "ld",
                    };
                    format!("{m} {rd}, {offset}({base})")
                }
                Instr::Store {
                    src,
                    base,
                    offset,
                    width,
                } => {
                    let m = match width {
                        crate::Width::Byte => "sb",
                        crate::Width::Half => "sh",
                        crate::Width::Word => "sw",
                        crate::Width::Dword => "sd",
                    };
                    format!("{m} {src}, {offset}({base})")
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => format!(
                    "b{} {rs1}, {rs2}, {}",
                    format!("{cond:?}").to_lowercase(),
                    label(target)
                ),
                Instr::Jal { rd, target } => format!("jal {rd}, {}", label(target)),
                Instr::Jalr { rd, base, offset } => format!("jalr {rd}, {offset}({base})"),
                Instr::RdCycle { rd } => format!("rdcycle {rd}"),
                Instr::Flush { base, offset } => format!("flush {offset}({base})"),
                Instr::Fence => "fence".to_string(),
                Instr::Nop => "nop".to_string(),
                Instr::Halt => "halt".to_string(),
            };
            out.push_str("    ");
            out.push_str(&line);
            out.push('\n');
        }
        return out;

        fn alu_name(op: AluOp) -> String {
            format!("{op:?}").to_lowercase()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Reg};

    #[test]
    fn basic_accessors() {
        let p = Program::new(vec![
            Instr::Li {
                rd: Reg::T0,
                imm: 1,
            },
            Instr::Halt,
        ]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.get(0), Some(&p[0]));
        assert_eq!(p.get(2), None);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]);
        let s = format!("{p}");
        assert!(s.contains("0: nop"));
        assert!(s.contains("1: halt"));
    }

    #[test]
    #[should_panic(expected = "beyond program end")]
    fn rejects_wild_branch_target() {
        let _ = Program::new(vec![Instr::Branch {
            cond: crate::BranchCond::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            target: 7,
        }]);
    }

    #[test]
    fn empty_program_is_ok() {
        let p = Program::default();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn indexable_by_pc() {
        let p = Program::new(vec![Instr::AluRI {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::ZERO,
            imm: 7,
        }]);
        assert!(matches!(p[0], Instr::AluRI { imm: 7, .. }));
    }
}
