use std::fmt;

use crate::Reg;

/// Integer ALU operations.
///
/// `Mul`, `Mulh`, `Div`, `Divu`, `Rem` and `Remu` are multi-cycle on the
/// simulated pipeline; everything else is single-cycle unless a
/// computation-simplification optimization shortens it further.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken mod 64).
    Sll,
    /// Logical shift right (shift amount taken mod 64).
    Srl,
    /// Arithmetic shift right (shift amount taken mod 64).
    Sra,
    /// Set-less-than, signed: `rd = (rs1 as i64) < (rs2 as i64)`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Low 64 bits of the signed product.
    Mul,
    /// High 64 bits of the unsigned 128-bit product.
    Mulh,
    /// Signed division; division by zero yields all-ones as in RISC-V.
    Div,
    /// Unsigned division; division by zero yields all-ones.
    Divu,
    /// Signed remainder; remainder of division by zero yields the dividend.
    Rem,
    /// Unsigned remainder; remainder of division by zero yields the dividend.
    Remu,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit operand values.
    ///
    /// This is the single architectural definition of ALU semantics; both
    /// the functional emulator and the out-of-order pipeline call it, so
    /// the two can never disagree.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Srl => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Mul => (a as i64).wrapping_mul(b as i64) as u64,
            AluOp::Mulh => ((a as u128).wrapping_mul(b as u128) >> 64) as u64,
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    a
                } else {
                    ((a as i64) / (b as i64)) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    0
                } else {
                    ((a as i64) % (b as i64)) as u64
                }
            }
            AluOp::Remu => a.checked_rem(b).unwrap_or(a),
        }
    }

    /// Whether the operation uses the multiply unit.
    #[must_use]
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh)
    }

    /// Whether the operation uses the divide unit.
    #[must_use]
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu)
    }
}

/// Double-precision floating-point operations on register bit patterns.
///
/// Operands and results are `f64` values transported in integer
/// registers via their IEEE-754 bit representation. These exist to model
/// the subnormal-operand timing variation exploited by prior work
/// (Andrysco et al., S&P'15) that §IV-B of the paper builds on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp {
    /// Double-precision addition.
    Add,
    /// Double-precision subtraction.
    Sub,
    /// Double-precision multiplication.
    Mul,
    /// Double-precision division.
    Div,
}

impl FpOp {
    /// Evaluates the operation on two IEEE-754 bit patterns.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match self {
            FpOp::Add => x + y,
            FpOp::Sub => x - y,
            FpOp::Mul => x * y,
            FpOp::Div => x / y,
        };
        r.to_bits()
    }
}

/// Memory access width in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Dword,
}

impl Width {
    /// The access size in bytes (1, 2, 4 or 8).
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
            Width::Dword => 8,
        }
    }
}

/// Branch conditions comparing two register operands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// `rs1 == rs2`.
    Eq,
    /// `rs1 != rs2`.
    Ne,
    /// Signed `rs1 < rs2`.
    Lt,
    /// Signed `rs1 >= rs2`.
    Ge,
    /// Unsigned `rs1 < rs2`.
    Ltu,
    /// Unsigned `rs1 >= rs2`.
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two operand values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// A single machine instruction.
///
/// The program counter is an *instruction index* into a [`Program`];
/// branch and jump targets are indices resolved by the assembler from
/// symbolic labels.
///
/// [`Program`]: crate::Program
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    AluRR {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    AluRI {
        /// The operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Floating-point operation on f64 bit patterns: `rd = op(rs1, rs2)`.
    Fp {
        /// The operation.
        op: FpOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Load a 64-bit immediate: `rd = imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Load from memory: `rd = mem[rs1 + offset]`, zero- or sign-extended.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Access width.
        width: Width,
        /// Whether the loaded value is sign-extended.
        signed: bool,
    },
    /// Store to memory: `mem[rs1 + offset] = rs2` (low `width` bytes).
    Store {
        /// Source (data) register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Conditional branch to instruction index `target`.
    Branch {
        /// Branch condition.
        cond: BranchCond,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump; writes the return index (`pc + 1`) to `rd`.
    Jal {
        /// Destination register for the return index.
        rd: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump to the instruction index in `base + offset`;
    /// writes the return index to `rd`.
    Jalr {
        /// Destination register for the return index.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Read the current cycle counter into `rd` (the receiver's timer).
    RdCycle {
        /// Destination register.
        rd: Reg,
    },
    /// Evict the cache line containing `base + offset` from all cache
    /// levels (a `clflush`-like primitive for attack receivers).
    Flush {
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// Full pipeline + memory fence: drains the store queue and prevents
    /// reordering across it.
    Fence,
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
}

impl Instr {
    /// The architectural source registers read by this instruction.
    #[must_use]
    pub fn sources(&self) -> Vec<Reg> {
        let (regs, n) = self.source_pair();
        regs[..n].to_vec()
    }

    /// The source registers as a fixed pair plus count — the
    /// allocation-free form of [`Instr::sources`]. No instruction
    /// reads more than two registers; unused slots hold `x0`.
    #[must_use]
    pub fn source_pair(&self) -> ([Reg; 2], usize) {
        match *self {
            Instr::AluRR { rs1, rs2, .. } | Instr::Fp { rs1, rs2, .. } => ([rs1, rs2], 2),
            Instr::AluRI { rs1, .. } => ([rs1, Reg::ZERO], 1),
            Instr::Li { .. } | Instr::RdCycle { .. } => ([Reg::ZERO; 2], 0),
            Instr::Load { base, .. } => ([base, Reg::ZERO], 1),
            Instr::Store { src, base, .. } => ([base, src], 2),
            Instr::Branch { rs1, rs2, .. } => ([rs1, rs2], 2),
            Instr::Jal { .. } => ([Reg::ZERO; 2], 0),
            Instr::Jalr { base, .. } => ([base, Reg::ZERO], 1),
            Instr::Flush { base, .. } => ([base, Reg::ZERO], 1),
            Instr::Fence | Instr::Nop | Instr::Halt => ([Reg::ZERO; 2], 0),
        }
    }

    /// The architectural destination register written by this
    /// instruction, if any. `x0` destinations are reported as `None`
    /// because the write is architecturally invisible.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::AluRR { rd, .. }
            | Instr::AluRI { rd, .. }
            | Instr::Fp { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::RdCycle { rd } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Whether this instruction is a control-flow instruction.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. }
        )
    }

    /// Whether this instruction accesses data memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::AluRR { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
            }
            Instr::AluRI { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", format!("{op:?}").to_lowercase())
            }
            Instr::Fp { op, rd, rs1, rs2 } => {
                write!(f, "f{} {rd}, {rs1}, {rs2}", format!("{op:?}").to_lowercase())
            }
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Instr::Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => write!(
                f,
                "l{}{} {rd}, {offset}({base})",
                width_letter(width),
                if signed { "" } else { "u" }
            ),
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => write!(f, "s{} {src}, {offset}({base})", width_letter(width)),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(
                f,
                "b{} {rs1}, {rs2}, @{target}",
                format!("{cond:?}").to_lowercase()
            ),
            Instr::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Instr::Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Instr::RdCycle { rd } => write!(f, "rdcycle {rd}"),
            Instr::Flush { base, offset } => write!(f, "flush {offset}({base})"),
            Instr::Fence => write!(f, "fence"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

fn width_letter(w: Width) -> char {
    match w {
        Width::Byte => 'b',
        Width::Half => 'h',
        Width::Word => 'w',
        Width::Dword => 'd',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Xor.eval(0xff00, 0x0ff0), 0xf0f0);
        assert_eq!(AluOp::Sll.eval(1, 8), 256);
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.eval(u64::MAX, 63), u64::MAX);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
    }

    #[test]
    fn alu_shift_amount_is_mod_64() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1);
        assert_eq!(AluOp::Sll.eval(1, 65), 2);
    }

    #[test]
    fn alu_mul_div_semantics() {
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
        assert_eq!(
            AluOp::Mul.eval(u64::MAX, 2),
            (-2i64) as u64,
            "signed wrap of -1 * 2"
        );
        assert_eq!(AluOp::Mulh.eval(u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(AluOp::Div.eval(42, 0), u64::MAX, "div by zero is all ones");
        assert_eq!(AluOp::Rem.eval(42, 0), 42, "rem by zero is dividend");
        assert_eq!(AluOp::Div.eval(i64::MIN as u64, -1i64 as u64), i64::MIN as u64);
        assert_eq!(AluOp::Rem.eval(i64::MIN as u64, -1i64 as u64), 0);
        assert_eq!(AluOp::Divu.eval(7, 2), 3);
        assert_eq!(AluOp::Remu.eval(7, 2), 1);
    }

    #[test]
    fn fp_eval_roundtrips_bits() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::Add.eval(a, b)), 3.75);
        assert_eq!(f64::from_bits(FpOp::Mul.eval(a, b)), 3.375);
        assert_eq!(f64::from_bits(FpOp::Div.eval(a, b)), 1.5 / 2.25);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(u64::MAX, 0), "signed -1 < 0");
        assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX));
    }

    #[test]
    fn sources_and_dest() {
        let i = Instr::AluRR {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::T1,
            rs2: Reg::T2,
        };
        assert_eq!(i.sources(), vec![Reg::T1, Reg::T2]);
        assert_eq!(i.dest(), Some(Reg::T0));

        let s = Instr::Store {
            src: Reg::A0,
            base: Reg::SP,
            offset: 8,
            width: Width::Dword,
        };
        assert_eq!(s.sources(), vec![Reg::SP, Reg::A0]);
        assert_eq!(s.dest(), None);
    }

    #[test]
    fn x0_dest_is_hidden() {
        let i = Instr::Li {
            rd: Reg::ZERO,
            imm: 5,
        };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(Instr::Jal {
            rd: Reg::ZERO,
            target: 0
        }
        .is_control());
        assert!(Instr::Load {
            rd: Reg::T0,
            base: Reg::SP,
            offset: 0,
            width: Width::Byte,
            signed: false
        }
        .is_mem());
        assert!(!Instr::Nop.is_control());
        assert!(!Instr::Nop.is_mem());
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
        assert_eq!(Width::Dword.bytes(), 8);
    }

    #[test]
    fn display_is_reasonable() {
        let i = Instr::Load {
            rd: Reg::T0,
            base: Reg::SP,
            offset: -8,
            width: Width::Dword,
            signed: true,
        };
        assert_eq!(format!("{i}"), "ld x5, -8(x2)");
    }
}
