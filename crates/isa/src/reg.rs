use std::fmt;

/// An architectural register identifier, `x0`–`x31`.
///
/// Register `x0` ([`Reg::ZERO`]) is hardwired to zero: writes to it are
/// discarded and reads always return `0`, exactly as in RISC-V.
///
/// A handful of ABI-style aliases are provided as associated constants
/// (`SP`, `T0`.., `A0`.., `S0`..) purely for readability of generated
/// code; the hardware treats all non-zero registers identically.
///
/// ```
/// use pandora_isa::Reg;
/// assert_eq!(Reg::ZERO.index(), 0);
/// assert_ne!(Reg::T0, Reg::T1);
/// assert_eq!(Reg::new(7), Reg::T2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The number of architectural registers.
    pub const COUNT: usize = 32;

    /// `x0`, hardwired to zero.
    pub const ZERO: Reg = Reg(0);
    /// `x1`, the link register written by `jal`/`jalr`.
    pub const RA: Reg = Reg(1);
    /// `x2`, used as the stack pointer by generated code.
    pub const SP: Reg = Reg(2);
    /// `x3`, used as a global/base pointer by generated code.
    pub const GP: Reg = Reg(3);
    /// `x4`, a scratch register reserved for gadget insertion.
    pub const TP: Reg = Reg(4);
    /// Temporary `x5`.
    pub const T0: Reg = Reg(5);
    /// Temporary `x6`.
    pub const T1: Reg = Reg(6);
    /// Temporary `x7`.
    pub const T2: Reg = Reg(7);
    /// Saved register `x8` (frame pointer by convention).
    pub const S0: Reg = Reg(8);
    /// Saved register `x9`.
    pub const S1: Reg = Reg(9);
    /// Argument/result register `x10`.
    pub const A0: Reg = Reg(10);
    /// Argument register `x11`.
    pub const A1: Reg = Reg(11);
    /// Argument register `x12`.
    pub const A2: Reg = Reg(12);
    /// Argument register `x13`.
    pub const A3: Reg = Reg(13);
    /// Argument register `x14`.
    pub const A4: Reg = Reg(14);
    /// Argument register `x15`.
    pub const A5: Reg = Reg(15);
    /// Argument register `x16`.
    pub const A6: Reg = Reg(16);
    /// Argument register `x17`.
    pub const A7: Reg = Reg(17);
    /// Saved register `x18`.
    pub const S2: Reg = Reg(18);
    /// Saved register `x19`.
    pub const S3: Reg = Reg(19);
    /// Saved register `x20`.
    pub const S4: Reg = Reg(20);
    /// Saved register `x21`.
    pub const S5: Reg = Reg(21);
    /// Saved register `x22`.
    pub const S6: Reg = Reg(22);
    /// Saved register `x23`.
    pub const S7: Reg = Reg(23);
    /// Saved register `x24`.
    pub const S8: Reg = Reg(24);
    /// Saved register `x25`.
    pub const S9: Reg = Reg(25);
    /// Saved register `x26`.
    pub const S10: Reg = Reg(26);
    /// Saved register `x27`.
    pub const S11: Reg = Reg(27);
    /// Temporary `x28`.
    pub const T3: Reg = Reg(28);
    /// Temporary `x29`.
    pub const T4: Reg = Reg(29);
    /// Temporary `x30`.
    pub const T5: Reg = Reg(30);
    /// Temporary `x31`.
    pub const T6: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range (0..32)"
        );
        Reg(index)
    }

    /// The register's index, `0..32`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `x0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_index_zero() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::T0.is_zero());
    }

    #[test]
    fn aliases_map_to_expected_indices() {
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::T0.index(), 5);
        assert_eq!(Reg::A0.index(), 10);
        assert_eq!(Reg::S2.index(), 18);
        assert_eq!(Reg::T6.index(), 31);
    }

    #[test]
    fn all_yields_32_distinct_registers() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(format!("{}", Reg::T0), "x5");
        assert_eq!(format!("{:?}", Reg::T0), "x5");
    }
}
