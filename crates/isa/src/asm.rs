use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{AluOp, BranchCond, FpOp, Instr, Program, Reg, Width};

/// Errors produced by [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

/// A label-resolving assembler and program builder.
///
/// `Asm` collects instructions through mnemonic-style methods
/// (`a.addi(..)`, `a.beq(..)`), records symbolic labels, and resolves
/// all control-flow targets when [`assemble`](Asm::assemble) is called.
/// Forward references are allowed.
///
/// Code generators elsewhere in the workspace (the bitsliced-AES
/// compiler, the sandbox JIT, attack gadget builders) all target this
/// interface.
///
/// ```
/// use pandora_isa::{Asm, Reg};
/// let mut a = Asm::new();
/// a.li(Reg::T0, 5);
/// a.label("spin");
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, "spin");
/// a.halt();
/// let p = a.assemble()?;
/// assert_eq!(p.len(), 4);
/// # Ok::<(), pandora_isa::AsmError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Asm {
        Asm::default()
    }

    /// The index the *next* emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Defines `name` at the current position. Both forward and backward
    /// references to it are permitted.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
    }

    /// Emits a raw instruction. Prefer the mnemonic helpers; this exists
    /// for code generators that already hold an [`Instr`].
    pub fn emit(&mut self, i: Instr) -> &mut Asm {
        self.instrs.push(i);
        self
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if any branch references an
    /// unknown label, or [`AsmError::DuplicateLabel`] if a label was
    /// defined more than once.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if let Some(l) = self.duplicate {
            return Err(AsmError::DuplicateLabel(l));
        }
        for (idx, label) in &self.fixups {
            let &target = self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            match &mut self.instrs[*idx] {
                Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        Ok(Program::new(self.instrs))
    }

    // ---- ALU ---------------------------------------------------------

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::And, rd, rs1, rs2)
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sll, rd, rs1, rs2)
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Srl, rd, rs1, rs2)
    }
    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sra, rd, rs1, rs2)
    }
    /// `rd = (rs1 < rs2)` signed
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Slt, rd, rs1, rs2)
    }
    /// `rd = (rs1 < rs2)` unsigned
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sltu, rd, rs1, rs2)
    }
    /// `rd = rs1 * rs2` (low 64 bits)
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }
    /// `rd = rs1 / rs2` signed
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Div, rd, rs1, rs2)
    }
    /// `rd = rs1 / rs2` unsigned
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Divu, rd, rs1, rs2)
    }
    /// `rd = rs1 % rs2` unsigned
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Remu, rd, rs1, rs2)
    }
    /// Generic register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.emit(Instr::AluRR { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.alui(AluOp::Add, rd, rs1, imm)
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.alui(AluOp::And, rd, rs1, imm)
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.alui(AluOp::Or, rd, rs1, imm)
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.alui(AluOp::Xor, rd, rs1, imm)
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.alui(AluOp::Sll, rd, rs1, imm)
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.alui(AluOp::Srl, rd, rs1, imm)
    }
    /// Generic register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.emit(Instr::AluRI { op, rd, rs1, imm })
    }

    /// Floating-point operation on f64 bit patterns.
    pub fn fp(&mut self, op: FpOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.emit(Instr::Fp { op, rd, rs1, rs2 })
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: u64) -> &mut Asm {
        self.emit(Instr::Li { rd, imm })
    }
    /// `rd = rs` (pseudo-instruction: `add rd, rs, x0`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.add(rd, rs, Reg::ZERO)
    }

    // ---- Memory ------------------------------------------------------

    /// Load double word: `rd = mem64[base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.load(rd, base, offset, Width::Dword, false)
    }
    /// Load word, zero-extended.
    pub fn lwu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.load(rd, base, offset, Width::Word, false)
    }
    /// Load word, sign-extended.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.load(rd, base, offset, Width::Word, true)
    }
    /// Load half word, zero-extended.
    pub fn lhu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.load(rd, base, offset, Width::Half, false)
    }
    /// Load byte, zero-extended.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.load(rd, base, offset, Width::Byte, false)
    }
    /// Generic load.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64, width: Width, signed: bool) -> &mut Asm {
        self.emit(Instr::Load {
            rd,
            base,
            offset,
            width,
            signed,
        })
    }

    /// Store double word.
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.store(src, base, offset, Width::Dword)
    }
    /// Store word.
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.store(src, base, offset, Width::Word)
    }
    /// Store half word.
    pub fn sh(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.store(src, base, offset, Width::Half)
    }
    /// Store byte.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.store(src, base, offset, Width::Byte)
    }
    /// Generic store.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, width: Width) -> &mut Asm {
        self.emit(Instr::Store {
            src,
            base,
            offset,
            width,
        })
    }

    // ---- Control flow ------------------------------------------------

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Asm {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }
    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Asm {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }
    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Asm {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }
    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Asm {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }
    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Asm {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }
    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Asm {
        self.branch(BranchCond::Geu, rs1, rs2, label)
    }
    /// Branch if `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, label: impl Into<String>) -> &mut Asm {
        self.bne(rs, Reg::ZERO, label)
    }
    /// Branch if `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Asm {
        self.beq(rs, Reg::ZERO, label)
    }
    /// Generic conditional branch to a label.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: impl Into<String>,
    ) -> &mut Asm {
        let idx = self.here();
        self.fixups.push((idx, label.into()));
        self.emit(Instr::Branch {
            cond,
            rs1,
            rs2,
            target: 0,
        })
    }

    /// Unconditional jump to a label (discards the return address).
    pub fn j(&mut self, label: impl Into<String>) -> &mut Asm {
        self.jal(Reg::ZERO, label)
    }
    /// Jump-and-link to a label.
    pub fn jal(&mut self, rd: Reg, label: impl Into<String>) -> &mut Asm {
        let idx = self.here();
        self.fixups.push((idx, label.into()));
        self.emit(Instr::Jal { rd, target: 0 })
    }
    /// Indirect jump through `base + offset`.
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.emit(Instr::Jalr { rd, base, offset })
    }
    /// Return: `jalr x0, 0(ra)`.
    pub fn ret(&mut self) -> &mut Asm {
        self.jalr(Reg::ZERO, Reg::RA, 0)
    }

    // ---- System ------------------------------------------------------

    /// Read the cycle counter.
    pub fn rdcycle(&mut self, rd: Reg) -> &mut Asm {
        self.emit(Instr::RdCycle { rd })
    }
    /// Flush the cache line containing `base + offset`.
    pub fn flush(&mut self, base: Reg, offset: i64) -> &mut Asm {
        self.emit(Instr::Flush { base, offset })
    }
    /// Full fence.
    pub fn fence(&mut self) -> &mut Asm {
        self.emit(Instr::Fence)
    }
    /// No-op.
    pub fn nop(&mut self) -> &mut Asm {
        self.emit(Instr::Nop)
    }
    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Asm {
        self.emit(Instr::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.j("end"); // forward
        a.label("mid");
        a.nop();
        a.label("end");
        a.bnez(Reg::T0, "mid"); // backward
        a.halt();
        let p = a.assemble().unwrap();
        assert!(matches!(p[0], Instr::Jal { target: 2, .. }));
        assert!(matches!(p[2], Instr::Branch { target: 1, .. }));
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Asm::new();
        a.label("l");
        a.nop();
        a.label("l");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("l".into())));
    }

    #[test]
    fn mv_is_add_zero() {
        let mut a = Asm::new();
        a.mv(Reg::T0, Reg::T1);
        let p = a.assemble().unwrap();
        assert!(matches!(
            p[0],
            Instr::AluRR {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::ZERO
            }
        ));
    }

    #[test]
    fn ret_is_jalr_ra() {
        let mut a = Asm::new();
        a.ret();
        let p = a.assemble().unwrap();
        assert!(matches!(
            p[0],
            Instr::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                offset: 0
            }
        ));
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new();
        assert_eq!(a.here(), 0);
        a.nop().nop();
        assert_eq!(a.here(), 2);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AsmError::UndefinedLabel("x".into()).to_string(),
            "undefined label `x`"
        );
        assert_eq!(
            AsmError::DuplicateLabel("x".into()).to_string(),
            "duplicate label `x`"
        );
    }
}
