//! The scan store: crash-safe journaled report persistence.
//!
//! Reuses the runner's storage layer wholesale — [`Journal`] for the
//! append-only completion log and [`pandora_runner::atomic_write`] for
//! report publication — which means every write/fsync/rename the store
//! performs already routes through the [`pandora_runner::chaos`]
//! fail-point sites, extending chaos coverage to the server's
//! job-journal and report-publish I/O with no new machinery.
//!
//! **Ordering invariant**: a report is *published* (atomically
//! renamed into place) before it is *journaled*. A journal entry
//! therefore proves the report file exists with the recorded hash; a
//! crash between the two leaves an unjournaled-but-published report,
//! which recovery simply re-runs and re-publishes byte-identically
//! (reports are deterministic and timestamp-free).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pandora_runner::{atomic_write, clean_stale_tmp, fnv1a64, Journal, JournalEntry};

/// A directory of published scan reports plus the journal that proves
/// them complete.
#[derive(Debug)]
pub struct ScanStore {
    dir: PathBuf,
    journal: Journal,
    done: HashMap<String, JournalEntry>,
}

impl ScanStore {
    /// Opens (or creates) the store at `dir`, recovering the journal:
    /// torn tails are truncated, stale publish temp files removed, and
    /// entries whose report file is missing or hash-mismatched are
    /// dropped so the job re-runs.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or recovering the journal.
    pub fn open(dir: &Path) -> io::Result<ScanStore> {
        fs::create_dir_all(dir)?;
        let _ = clean_stale_tmp(dir);
        let (entries, journal) = Journal::recover(&dir.join("scans.journal"))?;
        let mut store = ScanStore {
            dir: dir.to_path_buf(),
            journal,
            done: HashMap::new(),
        };
        for e in entries {
            if store.read_verified(&e).is_some() {
                store.done.insert(e.name.clone(), e);
            }
        }
        Ok(store)
    }

    /// Where `name`'s report lives.
    #[must_use]
    pub fn report_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }

    fn read_verified(&self, e: &JournalEntry) -> Option<String> {
        let bytes = fs::read(self.report_path(&e.name)).ok()?;
        if bytes.len() as u64 == e.output_bytes && fnv1a64(&bytes) == e.output_hash {
            String::from_utf8(bytes).ok()
        } else {
            None
        }
    }

    /// Returns the cached report for `name` if it was journaled and
    /// its published bytes still verify.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<String> {
        self.done.get(name).and_then(|e| self.read_verified(e))
    }

    /// Number of journaled completions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether nothing is journaled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Publishes `body` as `name`'s report, then journals completion.
    /// Entries are deterministic (no wall-clock fields are recorded)
    /// so a re-run of the same jobs reproduces the journal
    /// byte-identically.
    ///
    /// # Errors
    ///
    /// I/O errors from the publish or journal write (including
    /// injected chaos faults); on error the journal records nothing,
    /// so the job re-runs after restart.
    pub fn publish(&mut self, name: &str, body: &str) -> io::Result<()> {
        atomic_write(&self.report_path(name), body.as_bytes())?;
        let entry = JournalEntry {
            name: name.to_string(),
            status: "ok".to_string(),
            wall_ms: 0,
            retries: 0,
            output_hash: fnv1a64(body.as_bytes()),
            output_bytes: body.len() as u64,
        };
        self.journal.append(&entry)?;
        self.done.insert(name.to_string(), entry);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pandora-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn publish_then_reopen_serves_from_cache() {
        let dir = tmpdir("cache");
        let mut s = ScanStore::open(&dir).unwrap();
        assert!(s.is_empty());
        s.publish("scan-1", "{\"x\":1}").unwrap();
        assert_eq!(s.lookup("scan-1").as_deref(), Some("{\"x\":1}"));

        let s2 = ScanStore::open(&dir).unwrap();
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.lookup("scan-1").as_deref(), Some("{\"x\":1}"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_reports_are_not_served() {
        let dir = tmpdir("tamper");
        let mut s = ScanStore::open(&dir).unwrap();
        s.publish("scan-1", "{\"x\":1}").unwrap();
        fs::write(s.report_path("scan-1"), "{\"x\":2}").unwrap();
        let s2 = ScanStore::open(&dir).unwrap();
        assert_eq!(s2.lookup("scan-1"), None, "hash mismatch must invalidate");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unjournaled_reports_are_invisible() {
        let dir = tmpdir("orphan");
        let s = ScanStore::open(&dir).unwrap();
        fs::write(s.report_path("scan-9"), "{}").unwrap();
        drop(s);
        let s2 = ScanStore::open(&dir).unwrap();
        assert_eq!(s2.lookup("scan-9"), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
