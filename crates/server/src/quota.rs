//! Per-tenant admission control: token-bucket rate limiting and a
//! circuit breaker over crashing/wedging scans.
//!
//! Both structures take the current time as an explicit millisecond
//! parameter rather than reading a clock, so every policy decision is
//! deterministic under test.

use std::collections::HashMap;

/// Token-bucket parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct QuotaConfig {
    /// Burst capacity (tokens; one scan costs one token).
    pub burst: u32,
    /// Steady-state refill rate, tokens per second.
    pub per_second: f64,
    /// Consecutive supervised failures (panic or deadline) before a
    /// tenant's breaker opens. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before allowing a probe, ms.
    pub breaker_cooldown_ms: u64,
    /// Maximum number of distinct tenants tracked; admission control
    /// itself must be flood-proof.
    pub max_tenants: usize,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig {
            burst: 8,
            per_second: 2.0,
            breaker_threshold: 3,
            breaker_cooldown_ms: 30_000,
            max_tenants: 1024,
        }
    }
}

/// Why a request was refused admission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Refusal {
    /// Token bucket empty; retry after the given delay.
    RateLimited {
        /// Milliseconds until a token is available.
        retry_after_ms: u64,
    },
    /// The tenant's circuit breaker is open.
    BreakerOpen {
        /// Milliseconds until the breaker half-opens.
        retry_after_ms: u64,
    },
    /// The tenant table is full and this tenant is new.
    TooManyTenants,
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// Current tokens, scaled by 1000 (millitokens) to refill smoothly
    /// in integer time.
    millitokens: u64,
    /// Sub-millitoken refill carried between refills, so fractional
    /// per-second rates polled at high frequency still deliver the
    /// advertised rate instead of truncating each tick to zero.
    carry_millitokens: f64,
    last_refill_ms: u64,
}

impl Bucket {
    fn full(cfg: &QuotaConfig, now_ms: u64) -> Bucket {
        Bucket {
            millitokens: u64::from(cfg.burst) * 1000,
            carry_millitokens: 0.0,
            last_refill_ms: now_ms,
        }
    }

    fn refill(&mut self, cfg: &QuotaConfig, now_ms: u64) {
        let dt = now_ms.saturating_sub(self.last_refill_ms);
        self.last_refill_ms = now_ms;
        let earned = dt as f64 * cfg.per_second + self.carry_millitokens; // millitokens: ms * tok/s
        let add = if earned > 0.0 { earned as u64 } else { 0 };
        self.carry_millitokens = earned - add as f64;
        self.millitokens = (self.millitokens + add).min(u64::from(cfg.burst) * 1000);
        if self.millitokens == u64::from(cfg.burst) * 1000 {
            // A full bucket discards excess; carrying it would grant a
            // burst above capacity later.
            self.carry_millitokens = 0.0;
        }
    }

    fn try_take(&mut self, cfg: &QuotaConfig, now_ms: u64) -> Result<(), u64> {
        self.refill(cfg, now_ms);
        if self.millitokens >= 1000 {
            self.millitokens -= 1000;
            return Ok(());
        }
        let missing = 1000 - self.millitokens;
        let wait_ms = if cfg.per_second > 0.0 {
            (missing as f64 / cfg.per_second).ceil() as u64
        } else {
            u64::MAX
        };
        Err(wait_ms.max(1))
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Breaker {
    consecutive_failures: u32,
    open_until_ms: Option<u64>,
    /// Set when a post-cooldown probe has been admitted but not yet
    /// resolved: a failure in this state re-opens immediately instead
    /// of granting a fresh threshold of failures.
    half_open: bool,
}

#[derive(Clone, Copy, Debug)]
struct Tenant {
    bucket: Bucket,
    breaker: Breaker,
}

/// The admission-control table: one [`QuotaConfig`]-governed state per
/// tenant. Not internally locked — the server wraps it in its state
/// mutex.
#[derive(Debug)]
pub struct Admission {
    cfg: QuotaConfig,
    tenants: HashMap<String, Tenant>,
}

impl Admission {
    /// Creates an empty table.
    #[must_use]
    pub fn new(cfg: QuotaConfig) -> Admission {
        Admission {
            cfg,
            tenants: HashMap::new(),
        }
    }

    /// Admits or refuses one scan for `tenant` at time `now_ms`.
    /// Order matters: an open breaker refuses *without* consuming a
    /// token.
    ///
    /// # Errors
    ///
    /// Returns the [`Refusal`] when the tenant is over quota, broken,
    /// or the table is full.
    pub fn admit(&mut self, tenant: &str, now_ms: u64) -> Result<(), Refusal> {
        if !self.tenants.contains_key(tenant) {
            if self.tenants.len() >= self.cfg.max_tenants {
                return Err(Refusal::TooManyTenants);
            }
            self.tenants.insert(
                tenant.to_string(),
                Tenant {
                    bucket: Bucket::full(&self.cfg, now_ms),
                    breaker: Breaker::default(),
                },
            );
        }
        let cfg = self.cfg;
        let t = self.tenants.get_mut(tenant).expect("just inserted");
        if let Some(until) = t.breaker.open_until_ms {
            if now_ms < until {
                return Err(Refusal::BreakerOpen {
                    retry_after_ms: until - now_ms,
                });
            }
            // Half-open: let this request probe; a single failure while
            // half-open re-opens immediately (see `record_failure`).
            t.breaker.open_until_ms = None;
            t.breaker.half_open = true;
        }
        t.bucket
            .try_take(&cfg, now_ms)
            .map_err(|retry_after_ms| Refusal::RateLimited { retry_after_ms })
    }

    /// Records a supervised failure (panic or wedge) for `tenant`;
    /// returns `true` if the breaker just opened.
    pub fn record_failure(&mut self, tenant: &str, now_ms: u64) -> bool {
        let threshold = self.cfg.breaker_threshold;
        let cooldown = self.cfg.breaker_cooldown_ms;
        let Some(t) = self.tenants.get_mut(tenant) else {
            return false;
        };
        t.breaker.consecutive_failures = t.breaker.consecutive_failures.saturating_add(1);
        if threshold > 0 && (t.breaker.half_open || t.breaker.consecutive_failures >= threshold) {
            // A failed half-open probe re-opens at once; the streak is
            // kept (not zeroed) so only a recorded success closes it.
            t.breaker.open_until_ms = Some(now_ms + cooldown);
            t.breaker.half_open = false;
            return true;
        }
        false
    }

    /// Records a completed scan (success or a *controlled* job error),
    /// closing the failure streak and any half-open probe.
    pub fn record_success(&mut self, tenant: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.breaker = Breaker::default();
        }
    }

    /// Tenants whose breaker is open at `now_ms`, sorted (for health
    /// snapshots).
    #[must_use]
    pub fn open_breakers(&self, now_ms: u64) -> Vec<String> {
        let mut v: Vec<String> = self
            .tenants
            .iter()
            .filter(|(_, t)| t.breaker.open_until_ms.is_some_and(|u| now_ms < u))
            .map(|(n, _)| n.clone())
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QuotaConfig {
        QuotaConfig {
            burst: 2,
            per_second: 1.0,
            breaker_threshold: 2,
            breaker_cooldown_ms: 5000,
            max_tenants: 2,
        }
    }

    #[test]
    fn bucket_exhausts_then_refills() {
        let mut a = Admission::new(cfg());
        assert!(a.admit("t", 0).is_ok());
        assert!(a.admit("t", 0).is_ok());
        let Err(Refusal::RateLimited { retry_after_ms }) = a.admit("t", 0) else {
            panic!("expected rate limit");
        };
        assert_eq!(retry_after_ms, 1000);
        // After the advertised wait, a token is back.
        assert!(a.admit("t", 1000).is_ok());
        assert!(matches!(
            a.admit("t", 1000),
            Err(Refusal::RateLimited { .. })
        ));
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens() {
        let mut a = Admission::new(cfg());
        assert!(a.admit("t", 0).is_ok());
        assert!(!a.record_failure("t", 0));
        assert!(a.admit("t", 1000).is_ok());
        assert!(a.record_failure("t", 1000), "second failure opens");
        let Err(Refusal::BreakerOpen { retry_after_ms }) = a.admit("t", 2000) else {
            panic!("expected open breaker");
        };
        assert_eq!(retry_after_ms, 4000);
        assert_eq!(a.open_breakers(2000), vec!["t".to_string()]);
        // After cooldown the tenant may probe again (tokens refilled
        // meanwhile).
        assert!(a.admit("t", 6001).is_ok());
        assert!(a.open_breakers(6001).is_empty());
    }

    #[test]
    fn fractional_rates_survive_high_frequency_polling() {
        // 0.25 tokens/s polled every ms: each tick earns 0.25
        // millitokens, which truncation used to discard forever.
        let mut a = Admission::new(QuotaConfig {
            burst: 1,
            per_second: 0.25,
            ..cfg()
        });
        assert!(a.admit("t", 0).is_ok());
        for ms in 1..4000 {
            assert!(
                matches!(a.admit("t", ms), Err(Refusal::RateLimited { .. })),
                "no full token yet at {ms}ms"
            );
        }
        // 4000ms * 0.25 tok/s = 1 token, despite per-tick truncation.
        assert!(a.admit("t", 4000).is_ok());
    }

    #[test]
    fn a_failed_half_open_probe_reopens_immediately() {
        let mut a = Admission::new(cfg()); // threshold 2, cooldown 5000
        assert!(a.admit("t", 0).is_ok());
        a.record_failure("t", 0);
        assert!(a.admit("t", 1000).is_ok());
        assert!(a.record_failure("t", 1000), "threshold opens");
        // Cooldown lapses; one probe is admitted.
        assert!(a.admit("t", 6001).is_ok());
        // The probe fails: the breaker re-opens on that single failure,
        // not after a fresh threshold's worth.
        assert!(a.record_failure("t", 6001), "probe failure re-opens");
        assert!(matches!(
            a.admit("t", 6002),
            Err(Refusal::BreakerOpen { .. })
        ));
        // A later probe that *succeeds* closes the breaker for good.
        assert!(a.admit("t", 12_000).is_ok());
        a.record_success("t");
        assert!(!a.record_failure("t", 12_000), "fresh streak after success");
        assert!(a.open_breakers(12_001).is_empty());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut a = Admission::new(cfg());
        assert!(a.admit("t", 0).is_ok());
        a.record_failure("t", 0);
        a.record_success("t");
        // Streak was broken: this single failure does not open it.
        assert!(!a.record_failure("t", 1000));
        assert!(a.open_breakers(1001).is_empty());
    }

    #[test]
    fn tenant_table_is_flood_proof() {
        let mut a = Admission::new(cfg());
        assert!(a.admit("a", 0).is_ok());
        assert!(a.admit("b", 0).is_ok());
        assert_eq!(a.admit("c", 0), Err(Refusal::TooManyTenants));
        // Existing tenants are unaffected.
        assert!(a.admit("a", 0).is_ok());
    }
}
