//! Scan-job admission: parse a JSON request body into a validated
//! [`ScanSpec`], refusing anything over the configured limits with a
//! structured error — never a panic.
//!
//! Submitted victims are **sandbox bytecode** ([`BpfProgram`]): the
//! only program form a multi-tenant service can safely run, because
//! the [`pandora_sandbox`] verifier proves memory safety before the
//! JIT emits a single ISA instruction (paper §VI-B's setting). The two
//! built-in victims (`"bsaes"`, `"ct-control"`) exercise the scanner
//! end to end without requiring the client to write bytecode.

use std::sync::Arc;

use pandora_isa::Asm;
use pandora_sandbox::{
    compile, verify_with_limits, BpfAluOp, BpfProgram, BpfReg, Cmp, Inst, MapDef, SandboxLayout,
    Src,
};

use crate::json::{obj, Json};
use crate::scan::{MarkedSecret, Preload, ScanLimits, ScanSpec};
use crate::victims;

/// A structured, JSON-serializable request failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// Optional `Retry-After` hint, milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl ApiError {
    /// A 422 job-validation failure.
    #[must_use]
    pub fn bad_job(detail: impl Into<String>) -> ApiError {
        ApiError {
            status: 422,
            code: "bad-job",
            detail: detail.into(),
            retry_after_ms: None,
        }
    }

    /// A 400 malformed-request failure.
    #[must_use]
    pub fn bad_request(detail: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code: "bad-request",
            detail: detail.into(),
            retry_after_ms: None,
        }
    }

    /// Serializes as the error envelope every non-200 response uses.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code", Json::Str(self.code.to_string())),
            ("detail", Json::Str(self.detail.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            fields.push(("retry_after_ms", Json::from(ms)));
        }
        obj(vec![("error", obj(fields))])
    }
}

/// What a validated job asks the worker to do.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// A real leakage scan.
    Scan(ScanSpec),
    /// Supervision self-test: the worker panics mid-job.
    SelftestPanic,
    /// Supervision self-test: the worker wedges until its deadline.
    SelftestWedge,
}

/// A validated, admitted job.
#[derive(Clone, Debug)]
pub struct Job {
    /// The tenant the body *declared*, if any. This is client-supplied
    /// and therefore only advisory: the server resolves the effective
    /// tenant identity from something the client cannot freely choose
    /// (an API key mapping, or the peer address) and merely checks the
    /// declaration against it.
    pub declared_tenant: Option<String>,
    /// The work.
    pub kind: JobKind,
}

/// Deterministic, tenant-namespaced job name: `scan-` plus a truncated
/// SHA-256 of the resolved tenant and the raw request body. The same
/// (tenant, body) always names the same job, which is what makes
/// journal-based crash recovery byte-exact; the collision-resistant
/// hash plus the tenant in the preimage is what stops a hostile tenant
/// from forging a colliding body to poison or read another tenant's
/// cached report (FNV collisions are trivial to craft; SHA-256's are
/// not).
#[must_use]
pub fn job_name(tenant: &str, body: &[u8]) -> String {
    let mut preimage = Vec::with_capacity(tenant.len() + 1 + body.len());
    preimage.extend_from_slice(tenant.as_bytes());
    preimage.push(0); // tenant names cannot contain NUL: unambiguous split
    preimage.extend_from_slice(body);
    let digest = crate::sha256::sha256(&preimage);
    format!("scan-{}", crate::sha256::hex(&digest[..16]))
}

/// Parses and validates one `POST /v1/scan` body.
///
/// `allow_selftest` gates the crash/wedge self-test victims, which
/// exist only so the supervision machinery itself can be tested.
///
/// # Errors
///
/// Returns a 400 [`ApiError`] for malformed JSON and a 422 for a
/// well-formed request that fails validation or verification.
pub fn parse_job(body: &[u8], limits: &ScanLimits, allow_selftest: bool) -> Result<Job, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let doc = crate::json::parse(text)
        .map_err(|e| ApiError::bad_request(format!("invalid JSON at byte {}: {}", e.offset, e.what)))?;

    let declared_tenant = match doc.get("tenant") {
        None => None,
        Some(t) => {
            let t = t
                .as_str()
                .ok_or_else(|| ApiError::bad_job("\"tenant\" must be a string"))?;
            if t.is_empty()
                || t.len() > 64
                || !t.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ApiError::bad_job(
                    "\"tenant\" must be 1-64 chars of [A-Za-z0-9_-]",
                ));
            }
            Some(t.to_string())
        }
    };

    let trials = match doc.get("trials") {
        None => 2,
        Some(t) => {
            let t = t
                .as_u64()
                .ok_or_else(|| ApiError::bad_job("\"trials\" must be a non-negative integer"))?;
            if t == 0 || t > u64::from(limits.max_trials) {
                return Err(ApiError::bad_job(format!(
                    "\"trials\" must be in 1..={}",
                    limits.max_trials
                )));
            }
            t as u32
        }
    };
    let seed = match doc.get("seed") {
        None => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| ApiError::bad_job("\"seed\" must be a non-negative integer"))?,
    };

    let victim = doc
        .get("victim")
        .ok_or_else(|| ApiError::bad_job("missing \"victim\""))?;
    let kind = if let Some(builtin) = victim.as_str() {
        match builtin {
            "bsaes" => JobKind::Scan(victims::bsaes_spec(seed, trials)),
            "ct-control" => JobKind::Scan(victims::ct_control_spec(seed, trials)),
            "selftest-panic" if allow_selftest => JobKind::SelftestPanic,
            "selftest-wedge" if allow_selftest => JobKind::SelftestWedge,
            other => {
                return Err(ApiError::bad_job(format!(
                    "unknown builtin victim {other:?} (have: \"bsaes\", \"ct-control\")"
                )))
            }
        }
    } else {
        JobKind::Scan(bytecode_spec(&doc, victim, limits, trials, seed)?)
    };

    Ok(Job {
        declared_tenant,
        kind,
    })
}

/// Builds a [`ScanSpec`] from a submitted bytecode victim: verify,
/// JIT, lay out maps, resolve the secret marking and input preloads.
fn bytecode_spec(
    doc: &Json,
    victim: &Json,
    limits: &ScanLimits,
    trials: u32,
    seed: u64,
) -> Result<ScanSpec, ApiError> {
    let maps = parse_maps(victim)?;
    let insts = parse_insts(victim)?;
    let prog = BpfProgram { maps, insts };

    // The admission-path verifier run: resource caps first, then full
    // type/bounds verification. A refusal is a structured 422.
    verify_with_limits(&prog, &limits.bpf).map_err(|e| ApiError {
        status: 422,
        code: "verify-failed",
        detail: e.to_string(),
        retry_after_ms: None,
    })?;

    let layout = SandboxLayout::at(victims::VICTIM_BASE, &prog.maps);
    let (_, end) = layout.region();
    let mem_size = (end.max(1)).next_power_of_two().max(1 << 16) as usize;
    if mem_size > limits.max_mem_size {
        return Err(ApiError::bad_job(format!(
            "victim footprint ({end} bytes) exceeds the {}-byte memory cap",
            limits.max_mem_size
        )));
    }

    let mut asm = Asm::new();
    compile(&mut asm, "job", &prog, &layout).map_err(|e| ApiError {
        status: 422,
        code: "verify-failed",
        detail: e.to_string(),
        retry_after_ms: None,
    })?;
    asm.halt();
    let program = asm
        .assemble()
        .map_err(|e| ApiError::bad_job(format!("program does not assemble: {e}")))?;
    if program.len() > limits.max_asm_insts {
        return Err(ApiError::bad_job(format!(
            "JITed program ({} instructions) exceeds the {}-instruction cap",
            program.len(),
            limits.max_asm_insts
        )));
    }

    let secret = parse_secret(doc, &prog, &layout, limits)?;
    let inputs = parse_inputs(doc, &prog, &layout, limits)?;

    Ok(ScanSpec {
        program: Arc::new(program),
        inputs,
        secret,
        trials,
        mem_size,
        seed,
        max_cycles: limits.max_cycles,
    })
}

fn parse_maps(victim: &Json) -> Result<Vec<MapDef>, ApiError> {
    let maps = victim
        .get("maps")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_job("victim needs a \"maps\" array"))?;
    maps.iter()
        .enumerate()
        .map(|(i, m)| {
            let elem_size = m
                .get("elem_size")
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_job(format!("map {i}: missing \"elem_size\"")))?;
            let len = m
                .get("len")
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_job(format!("map {i}: missing \"len\"")))?;
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("m")
                .to_string();
            // Shape errors surface from the verifier's prevalidation;
            // here we only need a struct (MapDef::new panics on bad
            // shapes, which a service must never do).
            Ok(MapDef {
                name,
                elem_size: elem_size as usize,
                len,
            })
        })
        .collect()
}

fn num(inst: &[Json], i: usize, what: &str, at: usize) -> Result<u64, ApiError> {
    inst.get(i)
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::bad_job(format!("inst {at}: operand {i} ({what}) must be a non-negative integer")))
}

fn reg(inst: &[Json], i: usize, what: &str, at: usize) -> Result<BpfReg, ApiError> {
    let n = num(inst, i, what, at)?;
    if n > 255 {
        return Err(ApiError::bad_job(format!(
            "inst {at}: register operand {n} out of encodable range"
        )));
    }
    Ok(BpfReg(n as u8))
}

fn src(inst: &[Json], i: usize, at: usize) -> Result<Src, ApiError> {
    let kind = inst
        .get(i)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_job(format!("inst {at}: operand {i} must be \"reg\" or \"imm\"")))?;
    match kind {
        "reg" => Ok(Src::Reg(reg(inst, i + 1, "src reg", at)?)),
        "imm" => Ok(Src::Imm(num(inst, i + 1, "imm", at)?)),
        _ => Err(ApiError::bad_job(format!(
            "inst {at}: operand {i} must be \"reg\" or \"imm\", got {kind:?}"
        ))),
    }
}

fn parse_insts(victim: &Json) -> Result<Vec<Inst>, ApiError> {
    let insts = victim
        .get("insts")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::bad_job("victim needs an \"insts\" array"))?;
    insts
        .iter()
        .enumerate()
        .map(|(at, inst)| {
            let inst = inst
                .as_array()
                .ok_or_else(|| ApiError::bad_job(format!("inst {at}: must be an array")))?;
            let op = inst
                .first()
                .and_then(Json::as_str)
                .ok_or_else(|| ApiError::bad_job(format!("inst {at}: first element must be the opcode string")))?;
            match op {
                "mov_imm" => Ok(Inst::MovImm {
                    dst: reg(inst, 1, "dst", at)?,
                    imm: num(inst, 2, "imm", at)?,
                }),
                "mov_reg" => Ok(Inst::MovReg {
                    dst: reg(inst, 1, "dst", at)?,
                    src: reg(inst, 2, "src", at)?,
                }),
                "alu" => {
                    let opname = inst
                        .get(1)
                        .and_then(Json::as_str)
                        .ok_or_else(|| ApiError::bad_job(format!("inst {at}: alu needs an op string")))?;
                    let aop = match opname {
                        "add" => BpfAluOp::Add,
                        "sub" => BpfAluOp::Sub,
                        "and" => BpfAluOp::And,
                        "or" => BpfAluOp::Or,
                        "xor" => BpfAluOp::Xor,
                        "lsh" => BpfAluOp::Lsh,
                        "rsh" => BpfAluOp::Rsh,
                        "mul" => BpfAluOp::Mul,
                        _ => {
                            return Err(ApiError::bad_job(format!(
                                "inst {at}: unknown alu op {opname:?}"
                            )))
                        }
                    };
                    Ok(Inst::Alu {
                        op: aop,
                        dst: reg(inst, 2, "dst", at)?,
                        src: src(inst, 3, at)?,
                    })
                }
                "lookup" => Ok(Inst::Lookup {
                    dst: reg(inst, 1, "dst", at)?,
                    map: num(inst, 2, "map", at)? as usize,
                    idx: reg(inst, 3, "idx", at)?,
                }),
                "load_ind" => Ok(Inst::LoadInd {
                    dst: reg(inst, 1, "dst", at)?,
                    ptr: reg(inst, 2, "ptr", at)?,
                }),
                "store_ind" => Ok(Inst::StoreInd {
                    ptr: reg(inst, 1, "ptr", at)?,
                    src: reg(inst, 2, "src", at)?,
                }),
                "jmp" => Ok(Inst::Jmp {
                    target: num(inst, 1, "target", at)? as usize,
                }),
                "jmp_if" => {
                    let cname = inst
                        .get(1)
                        .and_then(Json::as_str)
                        .ok_or_else(|| ApiError::bad_job(format!("inst {at}: jmp_if needs a cmp string")))?;
                    let cmp = match cname {
                        "eq" => Cmp::Eq,
                        "ne" => Cmp::Ne,
                        "lt" => Cmp::Lt,
                        "ge" => Cmp::Ge,
                        _ => {
                            return Err(ApiError::bad_job(format!(
                                "inst {at}: unknown cmp {cname:?}"
                            )))
                        }
                    };
                    let a = reg(inst, 2, "a", at)?;
                    let b = src(inst, 3, at)?;
                    // src consumed operands 3 and 4; target is 5.
                    Ok(Inst::JmpIf {
                        cmp,
                        a,
                        b,
                        target: num(inst, 5, "target", at)? as usize,
                    })
                }
                "read_clock" => Ok(Inst::ReadClock {
                    dst: reg(inst, 1, "dst", at)?,
                }),
                "exit" => Ok(Inst::Exit),
                _ => Err(ApiError::bad_job(format!("inst {at}: unknown opcode {op:?}"))),
            }
        })
        .collect()
}

fn parse_bytes(v: &Json, what: &str) -> Result<Vec<u8>, ApiError> {
    let arr = v
        .as_array()
        .ok_or_else(|| ApiError::bad_job(format!("{what} must be an array of bytes")))?;
    arr.iter()
        .map(|b| {
            b.as_u64()
                .filter(|&n| n <= 255)
                .map(|n| n as u8)
                .ok_or_else(|| ApiError::bad_job(format!("{what} must contain integers 0..=255")))
        })
        .collect()
}

fn map_region(
    prog: &BpfProgram,
    layout: &SandboxLayout,
    idx: u64,
    what: &str,
) -> Result<(u64, u64), ApiError> {
    let i = idx as usize;
    let m = prog.maps.get(i).ok_or_else(|| {
        ApiError::bad_job(format!(
            "{what}: map index {idx} out of range ({} maps declared)",
            prog.maps.len()
        ))
    })?;
    Ok((layout.map_base(i), m.byte_size()))
}

fn parse_secret(
    doc: &Json,
    prog: &BpfProgram,
    layout: &SandboxLayout,
    limits: &ScanLimits,
) -> Result<MarkedSecret, ApiError> {
    let s = doc
        .get("secret")
        .ok_or_else(|| ApiError::bad_job("bytecode victims need a \"secret\" marking"))?;
    let map = s
        .get("map")
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::bad_job("\"secret.map\" must be a map index"))?;
    let (addr, cap) = map_region(prog, layout, map, "secret")?;
    let a = parse_bytes(
        s.get("a").ok_or_else(|| ApiError::bad_job("missing \"secret.a\""))?,
        "secret.a",
    )?;
    let b = parse_bytes(
        s.get("b").ok_or_else(|| ApiError::bad_job("missing \"secret.b\""))?,
        "secret.b",
    )?;
    if a.is_empty() || a.len() != b.len() {
        return Err(ApiError::bad_job(
            "\"secret.a\" and \"secret.b\" must be non-empty and the same length",
        ));
    }
    if a.len() > limits.max_secret_bytes || a.len() as u64 > cap {
        return Err(ApiError::bad_job(format!(
            "secret length {} exceeds the map ({cap} bytes) or the {}-byte cap",
            a.len(),
            limits.max_secret_bytes
        )));
    }
    Ok(MarkedSecret { addr, a, b })
}

fn parse_inputs(
    doc: &Json,
    prog: &BpfProgram,
    layout: &SandboxLayout,
    limits: &ScanLimits,
) -> Result<Vec<Preload>, ApiError> {
    let Some(inputs) = doc.get("inputs") else {
        return Ok(Vec::new());
    };
    let inputs = inputs
        .as_array()
        .ok_or_else(|| ApiError::bad_job("\"inputs\" must be an array"))?;
    if inputs.len() > limits.max_inputs {
        return Err(ApiError::bad_job(format!(
            "at most {} input preloads allowed",
            limits.max_inputs
        )));
    }
    let mut total = 0usize;
    inputs
        .iter()
        .enumerate()
        .map(|(i, inp)| {
            let map = inp
                .get("map")
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_job(format!("input {i}: missing \"map\"")))?;
            let (addr, cap) = map_region(prog, layout, map, "input")?;
            let bytes = parse_bytes(
                inp.get("bytes")
                    .ok_or_else(|| ApiError::bad_job(format!("input {i}: missing \"bytes\"")))?,
                "input bytes",
            )?;
            if bytes.len() as u64 > cap {
                return Err(ApiError::bad_job(format!(
                    "input {i}: {} bytes does not fit the {cap}-byte map",
                    bytes.len()
                )));
            }
            total += bytes.len();
            if total > limits.max_input_bytes {
                return Err(ApiError::bad_job(format!(
                    "total input payload exceeds the {}-byte cap",
                    limits.max_input_bytes
                )));
            }
            Ok(Preload { addr, bytes })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> ScanLimits {
        ScanLimits::default()
    }

    #[test]
    fn builtin_victims_parse() {
        let job = parse_job(br#"{"victim":"bsaes","trials":3,"seed":9}"#, &limits(), false)
            .expect("parses");
        assert_eq!(job.declared_tenant, None);
        let JobKind::Scan(spec) = &job.kind else {
            panic!("expected scan")
        };
        assert_eq!(spec.trials, 3);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn selftest_victims_are_gated() {
        let body = br#"{"victim":"selftest-panic"}"#;
        assert!(parse_job(body, &limits(), false).is_err());
        assert!(matches!(
            parse_job(body, &limits(), true).map(|j| j.kind),
            Ok(JobKind::SelftestPanic)
        ));
    }

    #[test]
    fn malformed_json_is_a_400() {
        let e = parse_job(b"{nope", &limits(), false).unwrap_err();
        assert_eq!(e.status, 400);
        assert_eq!(e.code, "bad-request");
    }

    #[test]
    fn bytecode_victim_round_trips_through_the_verifier() {
        // r0 = maps[0].lookup(r1=0); if null exit; r2 = *r0; exit
        let body = br#"{
            "tenant": "alice",
            "victim": {
                "maps": [{"name": "t", "elem_size": 8, "len": 16}],
                "insts": [
                    ["mov_imm", 1, 0],
                    ["lookup", 0, 0, 1],
                    ["jmp_if", "eq", 0, "imm", 0, 4],
                    ["load_ind", 2, 0],
                    ["exit"]
                ]
            },
            "secret": {"map": 0, "a": [1,2,3,4], "b": [5,6,7,8]},
            "inputs": [{"map": 0, "bytes": [0,0,0,0,0,0,0,0]}]
        }"#;
        let job = parse_job(body, &limits(), false).expect("valid job");
        assert_eq!(job.declared_tenant.as_deref(), Some("alice"));
        let JobKind::Scan(spec) = &job.kind else {
            panic!("expected scan")
        };
        assert_eq!(spec.secret.a, vec![1, 2, 3, 4]);
        assert!(spec.mem_size >= 1 << 16);
    }

    #[test]
    fn unverifiable_bytecode_is_a_422() {
        // LoadInd through an unchecked (possibly null) pointer.
        let body = br#"{
            "victim": {
                "maps": [{"elem_size": 8, "len": 16}],
                "insts": [
                    ["mov_imm", 1, 0],
                    ["lookup", 0, 0, 1],
                    ["load_ind", 2, 0],
                    ["exit"]
                ]
            },
            "secret": {"map": 0, "a": [1], "b": [2]}
        }"#;
        let e = parse_job(body, &limits(), false).unwrap_err();
        assert_eq!(e.status, 422);
        assert_eq!(e.code, "verify-failed");
    }

    #[test]
    fn oversized_bytecode_is_refused_by_prevalidation() {
        let mut insts = String::new();
        for _ in 0..5000 {
            insts.push_str("[\"mov_imm\", 0, 1],");
        }
        insts.push_str("[\"exit\"]");
        let body = format!(
            r#"{{"victim":{{"maps":[{{"elem_size":8,"len":1}}],"insts":[{insts}]}},"secret":{{"map":0,"a":[1],"b":[2]}}}}"#
        );
        let e = parse_job(body.as_bytes(), &limits(), false).unwrap_err();
        assert_eq!(e.status, 422);
        assert_eq!(e.code, "verify-failed");
        assert!(e.detail.contains("instruction"), "{}", e.detail);
    }

    #[test]
    fn secret_must_fit_its_map() {
        let body = br#"{
            "victim": {"maps": [{"elem_size": 8, "len": 1}], "insts": [["exit"]]},
            "secret": {"map": 0, "a": [0,0,0,0,0,0,0,0,0], "b": [1,1,1,1,1,1,1,1,1]}
        }"#;
        let e = parse_job(body, &limits(), false).unwrap_err();
        assert_eq!(e.status, 422);
    }

    #[test]
    fn job_names_are_deterministic_and_tenant_namespaced() {
        let body = br#"{"victim":"bsaes"}"#;
        assert_eq!(job_name("t", body), job_name("t", body));
        assert_ne!(
            job_name("t", body),
            job_name("t", br#"{"victim":"ct-control"}"#)
        );
        // Namespacing: the same body under another tenant is another
        // job, so even a hash collision could not cross tenants whose
        // identity the server resolved differently.
        assert_ne!(job_name("alice", body), job_name("bob", body));
        assert!(job_name("t", body).starts_with("scan-"));
    }
}
