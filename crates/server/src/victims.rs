//! Built-in scan victims: the paper's bitsliced-AES victim (§V-A3) and
//! a constant-time control.
//!
//! The bsaes victim is the paper's repeated-call AES service: one
//! encryption whose final SubBytes round spills its eight slices to
//! fixed stack slots, plus — as in §V-A3 — the *16-bit intermediate*
//! spills of those slices, and an epilogue that reloads the spill frame
//! (the next call reading its own stack). Under silent stores the AA
//! replay re-stores byte-identical values and dequeues silently; under
//! the content-directed prefetcher the reloaded spill lines hold small
//! 8-aligned (pointer-shaped) secret-derived values whose targets get
//! prefetched. Both channels distinguish the round keys.
//!
//! The control runs the *same* program with the key as a public input;
//! its marked secret lives in a region no instruction ever touches, so
//! no optimization class — including the prefetchers — can observe it.

use std::sync::Arc;

use pandora_crypto::{BsaesLayout, RoundKeys, SpillHook};
use pandora_isa::{Asm, Program, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::scan::{MarkedSecret, Preload, ScanSpec};

/// Where the victim's data lives (as the attacks crate's bsaes rig).
pub const VICTIM_BASE: u64 = 0x1_0000;

/// The marked-but-untouched secret region of the constant-time
/// control.
pub const CONTROL_SECRET_ADDR: u64 = 0x3_0000;

/// Victim data-memory size: 256 KiB — small enough that scans are
/// cheap, large enough that every 16-bit spill value is in bounds for
/// the pointer-shape test (the §IV-D2 CDP predicate).
pub const VICTIM_MEM_SIZE: usize = 1 << 18;

fn aux_spill_base(lay: &BsaesLayout) -> u64 {
    // Line-aligned, directly after the layout.
    (lay.rk + BsaesLayout::size() + 63) & !63
}

/// The shared program: one bsaes encryption with 16-bit intermediate
/// spills and a spill-frame reload epilogue.
fn victim_program() -> (Arc<Program>, BsaesLayout) {
    let lay = BsaesLayout::at(VICTIM_BASE);
    let aux = aux_spill_base(&lay);
    let mut a = Asm::new();
    pandora_crypto::codegen::emit_encrypt(&mut a, &lay, |a, hook, k| {
        if matches!(hook, SpillHook::After) {
            // §V-A3's 16-bit intermediate spill: the low half-word of
            // the slice, kept 8-aligned, to its own stack line.
            a.andi(Reg::T1, Reg::T0, 0xFFF8);
            a.sd(Reg::T1, Reg::ZERO, (aux + 64 * k as u64) as i64);
        }
    });
    // Epilogue: drain the store queue, then read the spill frame back —
    // the stack reload a subsequent call performs, and the committed
    // loads a content-directed prefetcher scans.
    a.fence();
    for k in 0..8u64 {
        a.ld(Reg::T2, Reg::ZERO, (aux + 64 * k) as i64);
    }
    a.halt();
    (Arc::new(a.assemble().expect("victim assembles")), lay)
}

fn rand_bytes(rng: &mut SmallRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen_range(0u64..256) as u8).collect()
}

fn key_bytes(rng: &mut SmallRng) -> [u8; 16] {
    let mut k = [0u8; 16];
    k.copy_from_slice(&rand_bytes(rng, 16));
    k
}

fn round_key_preload(key: &[u8; 16]) -> Vec<u8> {
    BsaesLayout::round_key_bytes(&RoundKeys::expand(key))
}

/// The known-leaky victim: the round keys are the secret.
#[must_use]
pub fn bsaes_spec(seed: u64, trials: u32) -> ScanSpec {
    let (program, lay) = victim_program();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xb5ae_5b5a_e5b5_ae55);
    let key_a = key_bytes(&mut rng);
    let key_b = key_bytes(&mut rng);
    let pt = rand_bytes(&mut rng, 16);
    ScanSpec {
        program,
        inputs: vec![Preload {
            addr: lay.pt,
            bytes: pt,
        }],
        secret: MarkedSecret {
            addr: lay.rk,
            a: round_key_preload(&key_a),
            b: round_key_preload(&key_b),
        },
        trials,
        mem_size: VICTIM_MEM_SIZE,
        seed,
        max_cycles: 500_000,
    }
}

/// The constant-time control: same program, key public, secret marked
/// at an address nothing ever touches.
#[must_use]
pub fn ct_control_spec(seed: u64, trials: u32) -> ScanSpec {
    let (program, lay) = victim_program();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc047_4011_c047_4011);
    let key = key_bytes(&mut rng);
    let pt = rand_bytes(&mut rng, 16);
    let secret_a = rand_bytes(&mut rng, 16);
    let secret_b = rand_bytes(&mut rng, 16);
    ScanSpec {
        program,
        inputs: vec![
            Preload {
                addr: lay.rk,
                bytes: round_key_preload(&key),
            },
            Preload {
                addr: lay.pt,
                bytes: pt,
            },
        ],
        secret: MarkedSecret {
            addr: CONTROL_SECRET_ADDR,
            a: secret_a,
            b: secret_b,
        },
        trials,
        mem_size: VICTIM_MEM_SIZE,
        seed,
        max_cycles: 500_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::run_scan;

    /// The end-to-end truth the whole service exists to report: the
    /// bitsliced-AES victim leaks through (at least) the silent-store
    /// and DMP classes with nonzero capacity, and the constant-time
    /// control leaks through nothing.
    #[test]
    fn bsaes_leaks_and_control_does_not() {
        let report = run_scan(&bsaes_spec(7, 2), 0).expect("bsaes scan completes");
        assert!(!report.architectural_leak, "bsaes victim is constant-time");
        for class in ["silent-store", "dmp"] {
            let c = report
                .classes
                .iter()
                .find(|c| c.class == class)
                .expect("class scanned");
            assert!(c.leaks, "{class} must flag the bsaes victim");
            assert!(c.capacity_bits_per_run > 0.0);
        }

        let control = run_scan(&ct_control_spec(7, 2), 0).expect("control scan completes");
        assert!(!control.architectural_leak);
        assert!(
            control.leaking.is_empty(),
            "control flagged: {:?}",
            control.leaking
        );
    }
}
