//! The leakage-scan engine: preconditioned-replay differential testing
//! of one victim program against every Table-I optimization class.
//!
//! ## Protocol
//!
//! The paper's leaks are *reuse* leaks: a silent store is silent only
//! when it re-stores what memory already holds, and a prefetcher
//! chases values earlier calls left at rest. A scan therefore models
//! the repeated-call scenario directly:
//!
//! 1. **Reference run** — the victim runs from a cold machine with
//!    secret *A* in place; its final memory image is captured. This is
//!    "the previous call" in the paper's shared-stack setting (§V-A3).
//! 2. **AA run** — a cold machine whose memory is preconditioned with
//!    the reference image runs the victim with secret *A* again.
//! 3. **AB run** — identical, but the secret region holds *B*.
//!
//! Each run yields an **observation** an attacker could plausibly make:
//! the exact cycle count (timing) and a fingerprint of final cache
//! residency (what a probe sweep would recover). A class **leaks** when
//! any trial's AA and AB observations differ *and* the baseline machine
//! (all optimizations off) cannot tell them apart — i.e. the difference
//! is attributable to the optimization, not to the program
//! architecturally depending on its secret.
//!
//! Per class the measured capacity is reported as distinguishing trials
//! over total trials — bits per victim invocation for an attacker using
//! this receiver.
//!
//! Every run is dispatched through [`pandora_sim::fleet::trial_grid`],
//! so a scan inherits the engine's panic isolation, pooled machines,
//! and thread-count-invariant determinism.

use std::sync::Arc;

use pandora_isa::Program;
use pandora_sim::fleet::{self, MemberSpec};
use pandora_sim::{Machine, MemberError, OptConfig, SimConfig, SimError};

use crate::json::{obj, Json};

/// Resource caps applied to submitted scan jobs before anything runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScanLimits {
    /// Maximum instructions in a submitted assembly program.
    pub max_asm_insts: usize,
    /// Caps for submitted sandbox bytecode (instruction count and map
    /// footprint), enforced by the `pandora_sandbox` verifier.
    pub bpf: pandora_sandbox::VerifyLimits,
    /// Maximum victim data-memory size in bytes.
    pub max_mem_size: usize,
    /// Maximum trials per scan.
    pub max_trials: u32,
    /// Maximum simulated cycles per run.
    pub max_cycles: u64,
    /// Maximum secret length in bytes.
    pub max_secret_bytes: usize,
    /// Maximum number of input preloads.
    pub max_inputs: usize,
    /// Maximum total preload payload in bytes.
    pub max_input_bytes: usize,
}

impl Default for ScanLimits {
    fn default() -> ScanLimits {
        ScanLimits {
            max_asm_insts: 4096,
            bpf: pandora_sandbox::VerifyLimits::default(),
            max_mem_size: 1 << 20,
            max_trials: 16,
            max_cycles: 2_000_000,
            max_secret_bytes: 4096,
            max_inputs: 64,
            max_input_bytes: 1 << 16,
        }
    }
}

/// A region of victim memory preloaded identically in every run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Preload {
    /// Absolute byte address.
    pub addr: u64,
    /// The bytes.
    pub bytes: Vec<u8>,
}

/// The secret marking: one region, two candidate values. The scan
/// measures whether any optimization class can tell them apart.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MarkedSecret {
    /// Absolute byte address of the secret region.
    pub addr: u64,
    /// Candidate secret *A* (also the reference run's value).
    pub a: Vec<u8>,
    /// Candidate secret *B*; must be the same length as `a`.
    pub b: Vec<u8>,
}

/// A fully validated scan job, ready to run.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// The victim program.
    pub program: Arc<Program>,
    /// Public inputs, preloaded in every run.
    pub inputs: Vec<Preload>,
    /// The secret marking.
    pub secret: MarkedSecret,
    /// Number of trials per class (each trial perturbs the machine
    /// seed).
    pub trials: u32,
    /// Victim data-memory size.
    pub mem_size: usize,
    /// Base seed; trial `t` runs under `seed ^ (t * GOLDEN)`.
    pub seed: u64,
    /// Cycle budget per run.
    pub max_cycles: u64,
}

/// One optimization class the scan switches on.
#[derive(Clone, Copy, Debug)]
pub struct ScanClass {
    /// Report name.
    pub name: &'static str,
    /// Applies the class to a baseline [`OptConfig`].
    pub apply: fn(&mut OptConfig),
}

/// The seven Table-I optimization classes, as scanned. The `dmp` class
/// enables both data memory-dependent prefetcher families the paper
/// studies (§IV-D2): the stride-correlating IMP and the
/// content-directed pointer chaser.
pub const CLASSES: [ScanClass; 7] = [
    ScanClass {
        name: "silent-store",
        apply: |o| o.silent_stores = true,
    },
    ScanClass {
        name: "comp-simpl",
        apply: |o| {
            o.comp_simpl = true;
            o.fp_subnormal = true;
        },
    },
    ScanClass {
        name: "operand-packing",
        apply: |o| o.operand_packing = true,
    },
    ScanClass {
        name: "comp-reuse",
        apply: |o| o.comp_reuse = true,
    },
    ScanClass {
        name: "value-pred",
        apply: |o| o.value_pred = true,
    },
    ScanClass {
        name: "rf-compress",
        apply: |o| o.rf_compress = true,
    },
    ScanClass {
        name: "dmp",
        apply: |o| {
            o.dmp = true;
            o.cdp = true;
        },
    },
];

/// What an attacker observes after one victim run: the cycle count and
/// a fingerprint of final cache residency (L1d + L2 line addresses,
/// per set, order-independent). Deliberately *not* the simulator's
/// internal hook counters — those are not architecturally visible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Obs {
    /// Total cycles to halt.
    pub cycles: u64,
    /// FNV-1a fingerprint of resident cache lines.
    pub cache_sig: u64,
}

fn cache_sig(m: &Machine) -> u64 {
    let mut bytes = Vec::new();
    let hier = m.hierarchy();
    for (tag, cache) in [(1u8, hier.l1()), (2u8, hier.l2())] {
        for set in 0..cache.config().sets {
            let mut lines: Vec<u64> = cache.resident_lines(set).collect();
            lines.sort_unstable();
            bytes.push(tag);
            bytes.extend_from_slice(&(set as u32).to_le_bytes());
            for l in lines {
                bytes.extend_from_slice(&l.to_le_bytes());
            }
        }
    }
    pandora_runner::fnv1a64(&bytes)
}

/// One trial's transcript for one class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrialObs {
    /// AA observation (secret unchanged between calls).
    pub aa: Obs,
    /// AB observation (secret switched to *B*).
    pub ab: Obs,
}

impl TrialObs {
    fn distinguishes(&self) -> bool {
        self.aa != self.ab
    }
}

/// Per-class scan outcome.
#[derive(Clone, PartialEq, Debug)]
pub struct ClassReport {
    /// The class name (see [`CLASSES`]; `"baseline"` for the all-off
    /// machine).
    pub class: String,
    /// Whether this class leaks the marked secret: some trial
    /// distinguishes AA from AB while the baseline machine does not.
    pub leaks: bool,
    /// Distinguishing trials / total trials — bits per victim
    /// invocation through this receiver.
    pub capacity_bits_per_run: f64,
    /// The per-trial receiver transcript.
    pub transcript: Vec<TrialObs>,
}

/// The full scan report: the Table-I row for a submitted victim.
#[derive(Clone, PartialEq, Debug)]
pub struct ScanReport {
    /// Whether the *baseline* machine already distinguishes the
    /// secrets — an architectural (program-level) leak that no
    /// microarchitectural verdict can be layered on.
    pub architectural_leak: bool,
    /// One report per scanned class, in [`CLASSES`] order, baseline
    /// first.
    pub classes: Vec<ClassReport>,
    /// Total simulated runs this scan dispatched.
    pub runs: u32,
    /// Names of classes that leak (convenience; derived from
    /// `classes`).
    pub leaking: Vec<String>,
}

impl ScanReport {
    /// Serializes the report (stable field order, no timestamps — a
    /// re-run of the same job byte-identically reproduces it).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let classes = self
            .classes
            .iter()
            .map(|c| {
                let transcript = c
                    .transcript
                    .iter()
                    .map(|t| {
                        obj(vec![
                            ("aa_cycles", Json::from(t.aa.cycles)),
                            ("aa_cache_sig", Json::Str(format!("{:016x}", t.aa.cache_sig))),
                            ("ab_cycles", Json::from(t.ab.cycles)),
                            ("ab_cache_sig", Json::Str(format!("{:016x}", t.ab.cache_sig))),
                            ("distinguishes", Json::Bool(t.distinguishes())),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("class", Json::Str(c.class.clone())),
                    ("leaks", Json::Bool(c.leaks)),
                    ("capacity_bits_per_run", Json::Num(c.capacity_bits_per_run)),
                    ("transcript", Json::Arr(transcript)),
                ])
            })
            .collect();
        obj(vec![
            ("architectural_leak", Json::Bool(self.architectural_leak)),
            ("leaking_classes", Json::Arr(
                self.leaking.iter().map(|s| Json::Str(s.clone())).collect(),
            )),
            ("classes", Json::Arr(classes)),
            ("runs", Json::from(u64::from(self.runs))),
        ])
    }
}

/// Why a scan failed to produce a report.
#[derive(Clone, PartialEq, Debug)]
pub enum ScanError {
    /// A member run failed in the simulator.
    Member {
        /// Class being scanned.
        class: String,
        /// Trial index.
        trial: u32,
        /// Which phase (`"reference"`, `"aa"`, `"ab"`).
        phase: &'static str,
        /// The simulator error rendering.
        error: String,
    },
    /// A member run panicked (isolated by the fleet engine).
    Panicked {
        /// Class being scanned.
        class: String,
        /// Trial index.
        trial: u32,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Member { class, trial, phase, error } => write!(
                f,
                "scan member failed (class {class}, trial {trial}, {phase} run): {error}"
            ),
            ScanError::Panicked { class, trial, message } => write!(
                f,
                "scan member panicked (class {class}, trial {trial}): {message}"
            ),
        }
    }
}

impl std::error::Error for ScanError {}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The class list for one scan: baseline first, then [`CLASSES`].
fn scan_opt_grid() -> Vec<(String, OptConfig)> {
    let mut grid = vec![("baseline".to_string(), OptConfig::baseline())];
    for class in CLASSES {
        let mut opts = OptConfig::baseline();
        (class.apply)(&mut opts);
        grid.push((class.name.to_string(), opts));
    }
    grid
}

fn cfg_for(spec: &ScanSpec, opts: OptConfig, trial: u32) -> SimConfig {
    SimConfig {
        mem_size: spec.mem_size,
        opts,
        seed: spec.seed ^ u64::from(trial).wrapping_mul(GOLDEN),
        ..SimConfig::default()
    }
}

/// Runs the full scan on `threads` fleet threads (0 = process
/// default).
///
/// # Errors
///
/// Returns the first [`ScanError`] in class/trial order; individual
/// member failures (including panics) are isolated by the fleet layer
/// and surfaced here, never propagated as panics.
pub fn run_scan(spec: &ScanSpec, threads: usize) -> Result<ScanReport, ScanError> {
    let grid = scan_opt_grid();
    let trials = spec.trials.max(1);

    // Job layout: for each (class, trial), one reference run, then
    // (after the barrier — the images are inputs to phase 2) an AA and
    // an AB run.
    let mut ref_jobs = Vec::new();
    for (_, opts) in &grid {
        for t in 0..trials {
            ref_jobs.push(member(spec, *opts, t, Variant::Reference));
        }
    }
    let images = run_phase(&ref_jobs, threads, |m, _| {
        m.mem()
            .read_bytes(0, m.config().mem_size)
            .expect("whole memory readable")
            .to_vec()
    })
    .map_err(|(i, e)| member_error(&grid, trials, i, "reference", e))?;

    let mut measure_jobs = Vec::new();
    for (ci, (_, opts)) in grid.iter().enumerate() {
        for t in 0..trials {
            let image = Arc::new(images[ci * trials as usize + t as usize].clone());
            measure_jobs.push(member_preconditioned(
                spec,
                *opts,
                t,
                Arc::clone(&image),
                Variant::Aa,
            ));
            measure_jobs.push(member_preconditioned(spec, *opts, t, image, Variant::Ab));
        }
    }
    let obs = run_phase(&measure_jobs, threads, |m, cycles| Obs {
        cycles,
        cache_sig: cache_sig(m),
    })
    .map_err(|(i, e)| {
        let phase = if i % 2 == 0 { "aa" } else { "ab" };
        member_error(&grid, trials, i / 2, phase, e)
    })?;

    // Fold observations into per-class reports.
    let mut classes = Vec::with_capacity(grid.len());
    for (ci, (name, _)) in grid.iter().enumerate() {
        let mut transcript = Vec::with_capacity(trials as usize);
        for t in 0..trials {
            let base = (ci * trials as usize + t as usize) * 2;
            transcript.push(TrialObs {
                aa: obs[base],
                ab: obs[base + 1],
            });
        }
        let distinguishing = transcript.iter().filter(|t| t.distinguishes()).count();
        classes.push(ClassReport {
            class: name.clone(),
            leaks: false, // filled below, once the baseline verdict is known
            capacity_bits_per_run: distinguishing as f64 / f64::from(trials),
            transcript,
        });
    }
    let architectural_leak = classes[0].capacity_bits_per_run > 0.0;
    for c in classes.iter_mut().skip(1) {
        c.leaks = !architectural_leak && c.capacity_bits_per_run > 0.0;
    }
    let leaking = classes
        .iter()
        .filter(|c| c.leaks)
        .map(|c| c.class.clone())
        .collect();
    Ok(ScanReport {
        architectural_leak,
        classes,
        runs: (ref_jobs.len() + measure_jobs.len()) as u32,
        leaking,
    })
}

#[derive(Clone, Copy)]
enum Variant {
    Reference,
    Aa,
    Ab,
}

fn secret_bytes(spec: &ScanSpec, v: Variant) -> Vec<u8> {
    match v {
        Variant::Reference | Variant::Aa => spec.secret.a.clone(),
        Variant::Ab => spec.secret.b.clone(),
    }
}

fn member(spec: &ScanSpec, opts: OptConfig, trial: u32, v: Variant) -> MemberSpec {
    let inputs = spec.inputs.clone();
    let secret_addr = spec.secret.addr;
    let secret = secret_bytes(spec, v);
    MemberSpec::new(cfg_for(spec, opts, trial), Arc::clone(&spec.program))
        .with_max_cycles(spec.max_cycles)
        .with_prep(move |m: &mut Machine| {
            for p in &inputs {
                m.mem_mut()
                    .write_bytes(p.addr, &p.bytes)
                    .map_err(|fault| SimError::Mem { fault, pc: 0 })?;
            }
            m.mem_mut()
                .write_bytes(secret_addr, &secret)
                .map_err(|fault| SimError::Mem { fault, pc: 0 })?;
            Ok(())
        })
}

fn member_preconditioned(
    spec: &ScanSpec,
    opts: OptConfig,
    trial: u32,
    image: Arc<Vec<u8>>,
    v: Variant,
) -> MemberSpec {
    let secret_addr = spec.secret.addr;
    let secret = secret_bytes(spec, v);
    MemberSpec::new(cfg_for(spec, opts, trial), Arc::clone(&spec.program))
        .with_max_cycles(spec.max_cycles)
        .with_prep(move |m: &mut Machine| {
            m.mem_mut()
                .write_bytes(0, &image)
                .map_err(|fault| SimError::Mem { fault, pc: 0 })?;
            m.mem_mut()
                .write_bytes(secret_addr, &secret)
                .map_err(|fault| SimError::Mem { fault, pc: 0 })?;
            Ok(())
        })
}

/// Runs one job list, reducing each member through `extract(machine,
/// cycles)`; the first failing member aborts the phase with its index.
fn run_phase<T: Send>(
    jobs: &[MemberSpec],
    threads: usize,
    extract: impl Fn(&mut Machine, u64) -> T + Sync,
) -> Result<Vec<T>, (usize, MemberError)> {
    let results = fleet::trial_grid(jobs, threads, |_, m, stats| extract(m, stats.cycles));
    let mut out = Vec::with_capacity(results.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => out.push(v),
            Err(e) => return Err((i, e)),
        }
    }
    Ok(out)
}

fn member_error(
    grid: &[(String, OptConfig)],
    trials: u32,
    flat: usize,
    phase: &'static str,
    e: MemberError,
) -> ScanError {
    let class = grid
        .get(flat / trials as usize)
        .map_or("?".to_string(), |(n, _)| n.clone());
    let trial = (flat % trials as usize) as u32;
    match e {
        MemberError::Panicked(message) => ScanError::Panicked {
            class,
            trial,
            message,
        },
        e => ScanError::Member {
            class,
            trial,
            phase,
            error: e.to_string(),
        },
    }
}
