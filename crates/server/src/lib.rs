//! `pandora-server`: a hardened multi-tenant leakage-scanning service.
//!
//! Submit a victim program plus a marking of which bytes are secret;
//! the service verifies it through the [`pandora_sandbox`] verifier,
//! schedules it on a bounded supervised worker pool, runs it under
//! every optimization-class hook combination on the fleet layer, and
//! returns a Table-I-style report: which classes leak, the measured
//! capacity, and the receiver transcript.

pub mod http;
pub mod job;
pub mod json;
pub mod quota;
pub mod scan;
pub mod server;
pub mod sha256;
pub mod store;
pub mod victims;

pub use job::ApiError;
pub use scan::{run_scan, ScanLimits, ScanReport, ScanSpec};
pub use server::{Server, ServerConfig, ServerHandle};
