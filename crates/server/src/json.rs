//! A minimal JSON parser and writer over `std` only.
//!
//! The service boundary feeds this module raw, hostile request bodies,
//! so the parser is written for robustness first: a hard recursion
//! depth cap (`MAX_DEPTH`, stack overflow is a process kill — the one
//! failure mode a scan service must never offer a tenant), structured
//! errors with byte offsets, and no panics on any input. The body size
//! itself is capped upstream by the HTTP layer.
//!
//! Numbers are kept as `f64`; every integral field the scan API uses
//! (addresses, trial counts, cycle budgets) is well inside the 2^53
//! exact-integer range, and [`Json::as_u64`] refuses non-integral or
//! out-of-range values rather than rounding.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value,
    /// as `JSON.parse` does).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer; `None` for
    /// non-numbers, negatives, fractions, and values above 2^53.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why parsing failed, with the byte offset it failed at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            let v = self.value(depth + 1)?;
            items.push(v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept, combine when valid,
                            // replace lone surrogates (robustness over
                            // strictness — the value is diagnostics-only).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(
                        |_| JsonError {
                            offset: start,
                            what: "invalid UTF-8",
                        },
                    )?);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// Convenience: an object from key/value pairs.
#[must_use]
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"a":[1,2.5,"x\n",true,null],"b":{"c":-3}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Json::Num(-3.0));
        assert_eq!(parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn as_u64_is_exact_or_nothing() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn depth_bomb_is_rejected_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let e = parse(&bomb).unwrap_err();
        assert_eq!(e.what, "nesting too deep");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "\"\\q\"", "01x", "nul",
            "{\"a\":1}garbage", "\"unterminated", "[1 2]", "-", "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn surrogate_pairs_and_lone_surrogates() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
        assert_eq!(
            parse(r#""\ud83dx""#).unwrap(),
            Json::Str("\u{FFFD}x".to_string())
        );
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap(), &Json::Num(2.0));
    }

    #[test]
    fn escapes_control_characters_on_write() {
        let s = Json::Str("a\"b\\c\u{1}\n".to_string());
        assert_eq!(s.dump(), r#""a\"b\\c\u0001\n""#);
        assert_eq!(parse(&s.dump()).unwrap(), s);
    }
}
