//! The service core: a bounded supervised worker pool behind a
//! `TcpListener`, with per-tenant admission control, per-job
//! deadlines, journaled report persistence, and a graceful drain
//! protocol.
//!
//! ## Degradation ladder
//!
//! Under stress the server sheds load in structured steps rather than
//! falling over:
//!
//! 1. **Wire limits** — oversized heads/bodies and malformed HTTP get
//!    4xx envelopes without touching a scanner; a whole-request read
//!    deadline (408) bounds slow-loris clients that per-read socket
//!    timeouts alone never would.
//! 2. **Quota** — a tenant over its token bucket gets 429 +
//!    `Retry-After`.
//! 3. **Queue** — when the bounded connection queue is full, new
//!    connections get an immediate 503 + `Retry-After` (shed at
//!    accept, before any parsing).
//! 4. **Deadline** — a scan that outlives its wall-clock budget is
//!    abandoned (504); its worker thread is detached, never joined
//!    into the pool's critical path.
//! 5. **Breaker** — repeated panics/deadlines from one tenant open a
//!    per-tenant circuit breaker: subsequent jobs get 503 until the
//!    cooldown lapses.
//! 6. **Drain** — an *authenticated* drain request (admin token) or a
//!    [`ServerHandle::drain`] call stops the accept loop; queued
//!    requests finish (journaled if a store is configured) and
//!    [`Server::run`] returns `Ok(())` so the process can exit 0. With
//!    no admin token configured, `POST /v1/drain` is disabled: a
//!    tenant-reachable port must not expose an unauthenticated
//!    shutdown switch.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{read_request, write_json_response, HttpLimits, Request};
use crate::job::{job_name, parse_job, ApiError, JobKind};
use crate::json::{obj, Json};
use crate::quota::{Admission, QuotaConfig, Refusal};
use crate::scan::{run_scan, ScanLimits};
use crate::store::ScanStore;

/// Everything configurable about one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling requests (each runs at most one scan).
    pub threads: usize,
    /// Bounded admission queue depth; beyond it, connections shed.
    pub queue_depth: usize,
    /// Fleet threads per scan (1 keeps one scan on one core).
    pub scan_threads: usize,
    /// Job resource caps.
    pub limits: ScanLimits,
    /// Wire limits.
    pub http: HttpLimits,
    /// Per-tenant quota and breaker policy.
    pub quota: QuotaConfig,
    /// Per-job wall-clock deadline, milliseconds.
    pub job_deadline_ms: u64,
    /// Socket read/write timeout, milliseconds.
    pub io_timeout_ms: u64,
    /// Report store directory; `None` disables persistence.
    pub data_dir: Option<PathBuf>,
    /// Enables the crash/wedge self-test victims (tests only).
    pub allow_selftest: bool,
    /// Shared secret for `POST /v1/drain` (`Authorization: Bearer
    /// <token>` or `X-Admin-Token`). `None` disables the endpoint
    /// entirely (403): drain is then signal/handle-only. A shutdown
    /// switch must never sit unauthenticated on the tenant port.
    pub admin_token: Option<String>,
    /// `(key, tenant)` API-key table. Non-empty: every scan must
    /// present a known `X-Api-Key`, and the tenant identity is the
    /// key's mapping — not whatever name the body claims. Empty (open
    /// mode): tenant identity derives from the peer IP, so rotating
    /// declared names cannot mint fresh quotas or dodge a breaker.
    pub api_keys: Vec<(String, String)>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 2,
            queue_depth: 8,
            scan_threads: 1,
            limits: ScanLimits::default(),
            http: HttpLimits::default(),
            quota: QuotaConfig::default(),
            job_deadline_ms: 60_000,
            io_timeout_ms: 5_000,
            data_dir: None,
            allow_selftest: false,
            admin_token: None,
            api_keys: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Stats {
    received: u64,
    completed: u64,
    cached: u64,
    failed: u64,
    shed: u64,
    refused: u64,
    http_errors: u64,
    supervised_panics: u64,
    supervised_timeouts: u64,
}

struct State {
    admission: Admission,
    stats: Stats,
    store: Option<ScanStore>,
}

struct Shared {
    cfg: ServerConfig,
    started: Instant,
    draining: AtomicBool,
    state: Mutex<State>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// A handle for telling a running server to drain from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins a graceful drain: stop accepting, finish queued work,
    /// make [`Server::run`] return.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a drain is in progress.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and opens the
    /// report store if configured.
    ///
    /// # Errors
    ///
    /// Bind or store-recovery I/O errors.
    pub fn bind(addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let store = match &cfg.data_dir {
            Some(dir) => Some(ScanStore::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                admission: Admission::new(cfg.quota),
                stats: Stats::default(),
                store,
            }),
            cfg,
            started: Instant::now(),
            draining: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the actual port when bound with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A drain handle usable from other threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until drained. Worker panics are supervised per-job;
    /// this only returns `Err` on listener-level I/O failures.
    ///
    /// # Errors
    ///
    /// Listener configuration failures (accept-loop errors are
    /// per-connection and absorbed).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let workers: Vec<_> = (0..self.shared.cfg.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("pandora-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        while !self.shared.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit_connection(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        drop(self.listener); // close the socket before finishing queued work
        self.shared.queue_cv.notify_all();
        for w in workers {
            // A worker that panicked outside job supervision is a bug,
            // but drain must still complete; absorb it.
            let _ = w.join();
        }
        Ok(())
    }

    /// Queues a fresh connection or sheds it with an immediate 503.
    fn admit_connection(&self, stream: TcpStream) {
        let timeout = Duration::from_millis(self.shared.cfg.io_timeout_ms.max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= self.shared.cfg.queue_depth {
            drop(q);
            let mut s = stream;
            lock_state(&self.shared).stats.shed += 1;
            let e = ApiError {
                status: 503,
                code: "queue-full",
                detail: "admission queue full; retry later".to_string(),
                retry_after_ms: Some(1000),
            };
            let _ = write_json_response(&mut s, e.status, e.retry_after_ms, &e.to_json().dump());
            // Consume whatever the client was mid-sending before the
            // socket drops: closing with unread data would RST the
            // connection under the 503 we just wrote. The drain runs on
            // the accept thread, so it is strictly bounded — a client
            // trickling bytes must not be able to park the listener.
            let _ = s.shutdown(std::net::Shutdown::Write);
            let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
            let started = Instant::now();
            let mut sink = [0u8; 1024];
            let mut drained = 0usize;
            while drained < 16 * 1024 && started.elapsed() < Duration::from_millis(250) {
                match io::Read::read(&mut s, &mut sink) {
                    Ok(n) if n > 0 => drained += n,
                    _ => break,
                }
            }
            return;
        }
        q.push_back(stream);
        self.shared.queue_cv.notify_one();
    }
}

fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|p| p.into_inner())
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        match stream {
            Some(mut s) => handle_connection(shared, &mut s),
            None => return,
        }
    }
}

fn respond_error(stream: &mut TcpStream, e: &ApiError) {
    let _ = write_json_response(stream, e.status, e.retry_after_ms, &e.to_json().dump());
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let req = match read_request(stream, &shared.cfg.http) {
        Ok(r) => r,
        Err(e) => {
            lock_state(shared).stats.http_errors += 1;
            let status = e.status();
            if status != 0 {
                respond_error(
                    stream,
                    &ApiError {
                        status,
                        code: "bad-http",
                        detail: e.detail(),
                        retry_after_ms: None,
                    },
                );
            }
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = health_json(shared).dump();
            let _ = write_json_response(stream, 200, None, &body);
        }
        ("GET", "/readyz") => {
            let draining = shared.draining.load(Ordering::SeqCst);
            let status = if draining { 503 } else { 200 };
            let body = obj(vec![("ready", Json::Bool(!draining))]).dump();
            let _ = write_json_response(stream, status, None, &body);
        }
        ("POST", "/v1/drain") => match authorize_admin(shared, &req) {
            Ok(()) => {
                shared.draining.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
                let _ = write_json_response(
                    stream,
                    200,
                    None,
                    &obj(vec![("draining", Json::Bool(true))]).dump(),
                );
            }
            Err(e) => respond_error(stream, &e),
        },
        ("POST", "/v1/scan") => handle_scan(shared, stream, &req),
        (_, "/healthz" | "/readyz" | "/v1/drain" | "/v1/scan") => {
            respond_error(stream, &ApiError {
                status: 405,
                code: "method-not-allowed",
                detail: format!("{} not supported here", req.method),
                retry_after_ms: None,
            });
        }
        _ => {
            respond_error(stream, &ApiError {
                status: 404,
                code: "not-found",
                detail: format!("no route {}", req.path),
                retry_after_ms: None,
            });
        }
    }
}

/// Checks the shared admin secret on a drain request. With no token
/// configured the endpoint is disabled outright — the only drain paths
/// are then [`ServerHandle::drain`] and process signals, so a tenant
/// request can never shut the service down.
fn authorize_admin(shared: &Shared, req: &Request) -> Result<(), ApiError> {
    let Some(expected) = shared.cfg.admin_token.as_deref() else {
        return Err(ApiError {
            status: 403,
            code: "admin-disabled",
            detail: "no admin token configured; drain via signal or handle only".to_string(),
            retry_after_ms: None,
        });
    };
    let presented = req
        .header("x-admin-token")
        .or_else(|| req.header("authorization")?.strip_prefix("Bearer "));
    // Constant-time-ish comparison: fold the whole string rather than
    // short-circuiting on the first mismatching byte.
    let ok = presented.is_some_and(|p| {
        p.len() == expected.len()
            && p.bytes()
                .zip(expected.bytes())
                .fold(0u8, |acc, (a, b)| acc | (a ^ b))
                == 0
    });
    if ok {
        Ok(())
    } else {
        Err(ApiError {
            status: 401,
            code: "admin-unauthorized",
            detail: "missing or wrong admin token".to_string(),
            retry_after_ms: None,
        })
    }
}

/// Resolves the identity every quota/breaker decision keys on. The
/// client never chooses it freely: with API keys configured it is the
/// key's tenant mapping (a declared name may only confirm it); in open
/// mode it is derived from the peer IP, so rotating names in the body
/// cannot mint fresh buckets.
fn resolve_tenant(
    shared: &Shared,
    req: &Request,
    peer: Option<SocketAddr>,
    declared: Option<&str>,
) -> Result<String, ApiError> {
    if shared.cfg.api_keys.is_empty() {
        return Ok(match peer {
            Some(p) => format!("ip:{}", p.ip()),
            None => "ip:unknown".to_string(),
        });
    }
    let Some(key) = req.header("x-api-key") else {
        return Err(ApiError {
            status: 401,
            code: "auth-required",
            detail: "this server requires an X-Api-Key header".to_string(),
            retry_after_ms: None,
        });
    };
    let Some((_, tenant)) = shared.cfg.api_keys.iter().find(|(k, _)| k == key) else {
        return Err(ApiError {
            status: 401,
            code: "auth-required",
            detail: "unknown API key".to_string(),
            retry_after_ms: None,
        });
    };
    if declared.is_some_and(|d| d != tenant) {
        return Err(ApiError {
            status: 403,
            code: "tenant-mismatch",
            detail: format!("API key is not for declared tenant {:?}", declared.unwrap_or("")),
            retry_after_ms: None,
        });
    }
    Ok(tenant.clone())
}

fn refusal_to_error(r: Refusal) -> ApiError {
    match r {
        Refusal::RateLimited { retry_after_ms } => ApiError {
            status: 429,
            code: "quota-exhausted",
            detail: "tenant token bucket empty".to_string(),
            retry_after_ms: Some(retry_after_ms),
        },
        Refusal::BreakerOpen { retry_after_ms } => ApiError {
            status: 503,
            code: "breaker-open",
            detail: "tenant circuit breaker is open after repeated scan failures".to_string(),
            retry_after_ms: Some(retry_after_ms),
        },
        Refusal::TooManyTenants => ApiError {
            status: 429,
            code: "too-many-tenants",
            detail: "tenant table full".to_string(),
            retry_after_ms: Some(60_000),
        },
    }
}

fn handle_scan(shared: &Shared, stream: &mut TcpStream, req: &Request) {
    lock_state(shared).stats.received += 1;
    if shared.draining.load(Ordering::SeqCst) {
        respond_error(stream, &ApiError {
            status: 503,
            code: "draining",
            detail: "server is draining".to_string(),
            retry_after_ms: Some(5000),
        });
        return;
    }
    let job = match parse_job(&req.body, &shared.cfg.limits, shared.cfg.allow_selftest) {
        Ok(j) => j,
        Err(e) => {
            lock_state(shared).stats.failed += 1;
            respond_error(stream, &e);
            return;
        }
    };
    let peer = stream.peer_addr().ok();
    let tenant = match resolve_tenant(shared, req, peer, job.declared_tenant.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            lock_state(shared).stats.refused += 1;
            respond_error(stream, &e);
            return;
        }
    };
    let name = job_name(&tenant, &req.body);

    // Admission and cache both sit under the state lock; the scan
    // itself must not.
    {
        let now = shared.now_ms();
        let mut st = lock_state(shared);
        if let Err(r) = st.admission.admit(&tenant, now) {
            st.stats.refused += 1;
            drop(st);
            respond_error(stream, &refusal_to_error(r));
            return;
        }
        if let Some(cached) = st.store.as_ref().and_then(|s| s.lookup(&name)) {
            st.stats.cached += 1;
            st.admission.record_success(&tenant);
            drop(st);
            let _ = write_json_response(stream, 200, None, &cached);
            return;
        }
    }

    match supervise(shared, &job.kind) {
        Outcome::Done(body) => {
            let mut st = lock_state(shared);
            st.admission.record_success(&tenant);
            st.stats.completed += 1;
            if let Some(store) = st.store.as_mut() {
                // A publish failure (e.g. injected storage chaos) must
                // not take the response down with it: the scan re-runs
                // after restart because it was never journaled.
                let _ = store.publish(&name, &body);
            }
            drop(st);
            let _ = write_json_response(stream, 200, None, &body);
        }
        Outcome::JobError(e) => {
            let mut st = lock_state(shared);
            st.admission.record_success(&tenant); // controlled failure: not a breaker event
            st.stats.failed += 1;
            drop(st);
            respond_error(stream, &e);
        }
        Outcome::Panicked(msg) => {
            let now = shared.now_ms();
            let mut st = lock_state(shared);
            st.stats.failed += 1;
            st.stats.supervised_panics += 1;
            st.admission.record_failure(&tenant, now);
            drop(st);
            respond_error(stream, &ApiError {
                status: 500,
                code: "scan-panicked",
                detail: msg,
                retry_after_ms: None,
            });
        }
        Outcome::DeadlineExceeded => {
            let now = shared.now_ms();
            let mut st = lock_state(shared);
            st.stats.failed += 1;
            st.stats.supervised_timeouts += 1;
            st.admission.record_failure(&tenant, now);
            drop(st);
            respond_error(stream, &ApiError {
                status: 504,
                code: "deadline-exceeded",
                detail: format!(
                    "scan exceeded its {}ms wall-clock budget and was abandoned",
                    shared.cfg.job_deadline_ms
                ),
                retry_after_ms: None,
            });
        }
    }
}

enum Outcome {
    Done(String),
    JobError(ApiError),
    Panicked(String),
    DeadlineExceeded,
}

/// Runs one job on a dedicated supervised thread with a wall-clock
/// deadline. A panicking job is collected and reported; a wedged job
/// is abandoned (the thread is detached — it cannot wedge the pool).
fn supervise(shared: &Shared, kind: &JobKind) -> Outcome {
    let (tx, rx) = mpsc::channel::<Result<String, ApiError>>();
    let kind = kind.clone();
    let scan_threads = shared.cfg.scan_threads;
    let deadline = Duration::from_millis(shared.cfg.job_deadline_ms.max(1));
    let worker = std::thread::Builder::new()
        .name("pandora-scan".to_string())
        .spawn(move || {
            let result = match kind {
                JobKind::Scan(spec) => run_scan(&spec, scan_threads)
                    .map(|report| report.to_json().dump())
                    .map_err(|e| ApiError {
                        status: 422,
                        code: "scan-failed",
                        detail: e.to_string(),
                        retry_after_ms: None,
                    }),
                JobKind::SelftestPanic => panic!("selftest-panic victim"),
                JobKind::SelftestWedge => {
                    std::thread::sleep(deadline.saturating_mul(4));
                    Err(ApiError {
                        status: 500,
                        code: "selftest-wedge",
                        detail: "wedge victim woke up".to_string(),
                        retry_after_ms: None,
                    })
                }
            };
            let _ = tx.send(result);
        })
        .expect("spawn scan thread");
    match rx.recv_timeout(deadline) {
        Ok(Ok(body)) => {
            let _ = worker.join();
            Outcome::Done(body)
        }
        Ok(Err(e)) => {
            let _ = worker.join();
            Outcome::JobError(e)
        }
        Err(mpsc::RecvTimeoutError::Timeout) => Outcome::DeadlineExceeded, // thread abandoned
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            let msg = match worker.join() {
                Err(p) => p
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "scan thread panicked".to_string()),
                Ok(()) => "scan thread exited without a result".to_string(),
            };
            Outcome::Panicked(msg)
        }
    }
}

/// The `/healthz` snapshot: a [`pandora_runner::orchestrator::SuiteHealth`]-style
/// rollup of pool, quota, and store state.
fn health_json(shared: &Shared) -> Json {
    let draining = shared.draining.load(Ordering::SeqCst);
    let queue_len = shared
        .queue
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .len();
    let now = shared.now_ms();
    let st = lock_state(shared);
    let breakers = st.admission.open_breakers(now);
    let jobs = obj(vec![
        ("received", Json::from(st.stats.received)),
        ("completed", Json::from(st.stats.completed)),
        ("cached", Json::from(st.stats.cached)),
        ("failed", Json::from(st.stats.failed)),
        ("shed", Json::from(st.stats.shed)),
        ("refused", Json::from(st.stats.refused)),
        ("http_errors", Json::from(st.stats.http_errors)),
        ("supervised_panics", Json::from(st.stats.supervised_panics)),
        ("supervised_timeouts", Json::from(st.stats.supervised_timeouts)),
    ]);
    let store = match &st.store {
        Some(s) => obj(vec![("journaled", Json::from(s.len() as u64))]),
        None => Json::Null,
    };
    obj(vec![
        (
            "status",
            Json::Str(if draining { "draining" } else { "ok" }.to_string()),
        ),
        ("uptime_ms", Json::from(now)),
        ("queue_len", Json::from(queue_len as u64)),
        (
            "breakers_open",
            Json::Arr(breakers.into_iter().map(Json::Str).collect()),
        ),
        ("jobs", jobs),
        ("store", store),
    ])
}
