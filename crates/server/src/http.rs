//! A deliberately small HTTP/1.1 server-side reader/writer over
//! [`std::io`] streams: enough for a JSON API, hardened against the
//! abuse an open port invites — oversized headers and bodies, torn and
//! malformed requests, and slow-loris clients (via socket read
//! timeouts set by the caller).
//!
//! Only `Content-Length` bodies are supported; chunked uploads are
//! refused with 411/501 rather than implemented.

use std::io::{self, Read, Write};

/// Wire limits for one request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum body bytes (larger requests get 413).
    pub max_body_bytes: usize,
    /// Overall wall-clock budget for reading one request, milliseconds
    /// (0 disables). Per-read socket timeouts alone don't bound total
    /// request time — a client trickling one byte per timeout window
    /// would hold a worker forever.
    pub max_request_ms: u64,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
            max_request_ms: 10_000,
        }
    }
}

/// A parsed request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Headers as (lowercased-name, trimmed-value) pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one response.
#[derive(Debug)]
pub enum HttpError {
    /// Headers exceeded [`HttpLimits::max_head_bytes`] (431).
    HeadTooLarge,
    /// Declared body exceeds [`HttpLimits::max_body_bytes`] (413).
    BodyTooLarge,
    /// Request syntax the parser refuses (400).
    Malformed(&'static str),
    /// Chunked or otherwise un-declared body (411).
    LengthRequired,
    /// The request did not finish arriving within
    /// [`HttpLimits::max_request_ms`] (408) — the slow-loris bound.
    Deadline,
    /// The socket closed or timed out mid-request.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error maps to (0 for I/O errors, where no
    /// response can be delivered).
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::Malformed(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::Deadline => 408,
            HttpError::Io(_) => 0,
        }
    }

    /// Human-readable detail for the error envelope.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            HttpError::HeadTooLarge => "request head too large".to_string(),
            HttpError::BodyTooLarge => "request body too large".to_string(),
            HttpError::Malformed(d) => format!("malformed request: {d}"),
            HttpError::LengthRequired => "body requires Content-Length".to_string(),
            HttpError::Deadline => "request did not complete within the read deadline".to_string(),
            HttpError::Io(e) => format!("i/o: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`, enforcing `limits`. Socket
/// timeouts must already be set by the caller; a timeout surfaces as
/// [`HttpError::Io`].
///
/// # Errors
///
/// Returns an [`HttpError`] describing the refusal; the caller decides
/// whether a response can still be written.
pub fn read_request(stream: &mut impl Read, limits: &HttpLimits) -> Result<Request, HttpError> {
    let started = std::time::Instant::now();
    let overdue = |started: &std::time::Instant| {
        limits.max_request_ms > 0 && started.elapsed().as_millis() as u64 > limits.max_request_ms
    };
    // Read byte-at-a-time up to the head limit, stopping at CRLFCRLF.
    // A scan service's request heads are tiny; robustness beats
    // throughput here.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1];
    loop {
        if head.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        if overdue(&started) {
            return Err(HttpError::Deadline);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        head.push(buf[0]);
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
        return Err(HttpError::Malformed("bad method token"));
    }
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    if parts.next().is_some() {
        return Err(HttpError::Malformed("garbage after version"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("target must be absolute path"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
            if content_length.is_some_and(|prev| prev != n) {
                return Err(HttpError::Malformed("conflicting Content-Length"));
            }
            content_length = Some(n);
        } else if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            chunked = true;
        }
        headers.push((name, value.to_string()));
    }
    if chunked {
        return Err(HttpError::LengthRequired);
    }
    let len = content_length.unwrap_or(0);
    if len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    // Read the body in chunks so the wall-clock deadline is enforced
    // between reads — a per-read socket timeout alone never bounds a
    // trickling client.
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        if overdue(&started) {
            return Err(HttpError::Deadline);
        }
        let chunk = (len - filled).min(8 * 1024);
        match stream.read(&mut body[filled..filled + chunk]) {
            Ok(0) => return Err(HttpError::Malformed("body shorter than Content-Length")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(HttpError::Malformed("body shorter than Content-Length"))
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The reason phrase for the statuses this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes one JSON response and flushes. `retry_after_ms`, when given,
/// becomes a whole-second `Retry-After` header (rounded up).
///
/// # Errors
///
/// Propagates stream write errors (the peer may have vanished; the
/// caller logs and drops).
pub fn write_json_response(
    stream: &mut impl Write,
    status: u16,
    retry_after_ms: Option<u64>,
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    if let Some(ms) = retry_after_ms {
        head.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000).max(1)));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(bytes.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse(b"POST /v1/scan?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd")
            .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/scan");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn refuses_oversized_heads_and_bodies() {
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 10_000));
        assert!(matches!(parse(&big), Err(HttpError::HeadTooLarge)));

        let r = parse(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        assert!(matches!(r, Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn refuses_malformed_requests() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "{:?} should be malformed",
                String::from_utf8_lossy(bad)
            );
        }
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn headers_are_exposed_case_insensitively() {
        let r = parse(b"POST / HTTP/1.1\r\nX-Api-Key: K1\r\nContent-Length: 0\r\n\r\n")
            .expect("parses");
        assert_eq!(r.header("x-api-key"), Some("K1"));
        assert_eq!(r.header("X-API-KEY"), Some("K1"));
        assert_eq!(r.header("authorization"), None);
    }

    /// A reader that trickles one byte per call with a delay — the
    /// slow-loris shape the overall deadline must bound.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    use std::time::Duration;

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(self.delay);
            match self.data.get(self.pos) {
                Some(&b) => {
                    buf[0] = b;
                    self.pos += 1;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn trickled_requests_hit_the_wall_clock_deadline() {
        let limits = HttpLimits {
            max_request_ms: 40,
            ..HttpLimits::default()
        };
        // Head never completes: the deadline, not the head limit, must
        // end it.
        let mut slow = Trickle {
            data: b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd".to_vec(),
            pos: 0,
            delay: Duration::from_millis(10),
        };
        assert!(matches!(
            read_request(&mut slow, &limits),
            Err(HttpError::Deadline)
        ));

        // A trickled *body* is bounded too (head fits under the
        // deadline, body reads check it between chunks).
        let mut head_fast = io::Cursor::new(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec(),
        )
        .chain(Trickle {
            data: b"abcd".to_vec(),
            pos: 0,
            delay: Duration::from_millis(60),
        });
        assert!(matches!(
            read_request(&mut head_fast, &limits),
            Err(HttpError::Deadline)
        ));

        // Deadline 0 disables the check.
        let relaxed = HttpLimits {
            max_request_ms: 0,
            ..HttpLimits::default()
        };
        let mut slow = Trickle {
            data: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
            pos: 0,
            delay: Duration::from_millis(1),
        };
        assert!(read_request(&mut slow, &relaxed).is_ok());
    }

    #[test]
    fn lf_only_heads_are_tolerated() {
        let r = parse(b"GET /healthz HTTP/1.1\nHost: h\n\n").expect("parses");
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn response_carries_retry_after_in_seconds() {
        let mut out = Vec::new();
        write_json_response(&mut out, 429, Some(1500), "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
