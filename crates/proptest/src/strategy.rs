//! Strategies: deterministic seeded value generators.
//!
//! A [`Strategy`] produces values of its associated type from a
//! [`TestRng`]. `generate` returns `Option`: `None` signals a
//! filter-style rejection, which the runner retries with fresh
//! randomness. There is no shrinking in this stand-in.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom};

/// The deterministic generator driving all strategies (xoshiro256++
/// seeded via SplitMix64; the same construction as the workspace's
/// vendored `rand`, duplicated here to keep the crates dependency-free).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produces one value, or `None` on a filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms produced values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values for which `pred` is false (retried by the
    /// runner); `whence` labels the filter in diagnostics.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _whence: whence.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // A few local retries before deferring to the runner keeps
        // cheap filters from inflating the global attempt count.
        for _ in 0..8 {
            if let Some(v) = self.inner.generate(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// An object-safe view of [`Strategy`], for boxing.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate_dyn(rng)
    }
}

/// A uniform choice among several strategies of one value type — the
/// expansion of [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be nonempty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- Integer ranges --------------------------------------------------

/// Integers generable uniformly and with edge-case bias.
pub trait GenInt: Copy {
    /// Uniform sample from `[lo, hi)`; panics on an empty range.
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// The inclusive type maximum (for `lo..` ranges).
    const MAX: Self;
    /// An arbitrary value: mostly uniform, sometimes an edge case.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_gen_int {
    ($($t:ty),*) => {$(
        impl GenInt for $t {
            const MAX: $t = <$t>::MAX;

            fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }

            fn arbitrary(rng: &mut TestRng) -> Self {
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.below(16) as i64) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_gen_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: GenInt + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::sample(rng, self.start, self.end))
    }
}

impl<T: GenInt + PartialOrd> Strategy for RangeFrom<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        // `lo..` means [lo, MAX]: widen through i128 to cover MAX itself.
        let v = T::sample(rng, self.start, T::MAX);
        Some(if rng.below(64) == 0 { T::MAX } else { v })
    }
}

// ---- any::<T>() ------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Produces an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                <$t as GenInt>::arbitrary(rng)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

/// The strategy returned by [`any`](crate::any) (and the `ANY`
/// constants in [`num`](crate::num)).
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    /// The `any` strategy for `T` (const-constructible).
    #[must_use]
    pub const fn new() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Any<T> {
    fn default() -> Any<T> {
        Any::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary_value(rng))
    }
}

// ---- Tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

impl_tuple_strategy!(S0/v0);
impl_tuple_strategy!(S0/v0, S1/v1);
impl_tuple_strategy!(S0/v0, S1/v1, S2/v2);
impl_tuple_strategy!(S0/v0, S1/v1, S2/v2, S3/v3);
impl_tuple_strategy!(S0/v0, S1/v1, S2/v2, S3/v3, S4/v4);
impl_tuple_strategy!(S0/v0, S1/v1, S2/v2, S3/v3, S4/v4, S5/v5);
impl_tuple_strategy!(S0/v0, S1/v1, S2/v2, S3/v3, S4/v4, S5/v5, S6/v6);
impl_tuple_strategy!(S0/v0, S1/v1, S2/v2, S3/v3, S4/v4, S5/v5, S6/v6, S7/v7);

// ---- Collection sizes ------------------------------------------------

/// A collection length specification: exact or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    /// Picks a length.
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            usize::sample(rng, self.lo, self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng).unwrap();
            assert!((5..10).contains(&v));
            let s = (-3i64..3).generate(&mut rng).unwrap();
            assert!((-3..3).contains(&s));
            let f = (1u64..).generate(&mut rng).unwrap();
            assert!(f >= 1);
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::new(2);
        let s = (0u64..10).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            if let Some(v) = s.generate(&mut rng) {
                assert_eq!(v % 2, 0);
            }
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::new(3);
        let u = Union::new(vec![Just(1u64).boxed(), Just(2u64).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_and_maps_compose() {
        let mut rng = TestRng::new(4);
        let s = ((0u8..4), (10u64..20)).prop_map(|(a, b)| u64::from(a) + b);
        let v = s.generate(&mut rng).unwrap();
        assert!((10..24).contains(&v));
    }
}
