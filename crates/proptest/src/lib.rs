//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, providing the
//! subset of its API the Pandora workspace uses: the [`proptest!`]
//! macro (both `x in strategy` and `x: Type` parameter forms),
//! integer-range / tuple / collection strategies, [`any`],
//! [`strategy::Strategy::prop_map`] / `prop_filter`, [`prop_oneof!`],
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! The build environment has no registry access, so the workspace
//! vendors this small deterministic implementation. Differences from
//! the real crate:
//!
//! * generation is seeded and fully deterministic per (test name, case
//!   index) — there is no persistence file and no environment override;
//! * failing cases are **not shrunk**; the failure report prints the
//!   offending input as generated;
//! * integer `any` deliberately mixes uniform values with boundary
//!   values (0, MAX, small counts) to keep edge-case coverage close to
//!   the real crate's.

use std::fmt;

pub mod strategy;

pub use strategy::{Arbitrary, Just, Strategy, TestRng};

/// Why a single generated test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The input did not satisfy a `prop_assume!` precondition; the
    /// case is skipped without counting toward the case budget.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A precondition rejection with the given message.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Drives one property test: generates `config.cases` inputs from
/// `strategy` and runs `test` on each. Panics (failing the enclosing
/// `#[test]`) on the first assertion failure, printing the input.
///
/// Rejected cases (via `prop_assume!` or `prop_filter`) are retried
/// with fresh inputs, up to a global attempt ceiling.
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    strategy: S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    name: &str,
) where
    S::Value: fmt::Debug,
{
    let max_attempts = (config.cases as u64).saturating_mul(20).max(1000);
    let mut passed: u64 = 0;
    let mut attempts: u64 = 0;
    // A fixed per-test stream keeps runs reproducible; hashing the name
    // decorrelates sibling tests in one binary.
    let mut rng = TestRng::new(0x5eed_c0de ^ fxhash(name));
    while passed < u64::from(config.cases) {
        if attempts >= max_attempts {
            panic!(
                "proptest {name}: gave up after {attempts} attempts \
                 ({passed} cases passed; too many rejects?)"
            );
        }
        attempts += 1;
        let Some(input) = strategy.generate(&mut rng) else {
            continue; // strategy-level filter reject
        };
        // Described up front: the test consumes the input by value.
        let described = format!("{input:?}");
        match test(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name} failed after {passed} passing cases\n\
                     input: {described}\n{msg}"
                );
            }
        }
    }
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Creates a strategy producing arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, TestRng};

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// from `size` (a `usize` for exact lengths, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Per-type numeric strategies (`prop::num::i64::ANY`, ...).
pub mod num {
    macro_rules! num_mod {
        ($($m:ident => $t:ty),*) => {$(
            /// Strategies for the primitive of the same name.
            pub mod $m {
                /// Any value of this type, edge cases included.
                pub const ANY: crate::strategy::Any<$t> = crate::strategy::Any::new();
            }
        )*};
    }

    num_mod!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize
    );
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

// ---- Macros ----------------------------------------------------------

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and test functions whose parameters are
/// either `name in strategy` or `name: Type` (sugar for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case! { @parse ($cfg) $name $body [] [] $($params)* }
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: accumulates `(pattern)` and
/// `(strategy)` lists from the mixed parameter syntax, then emits the
/// runner call.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: run.
    (@parse ($cfg:expr) $name:ident $body:block [$(($pat:pat_param))+] [$(($strat:expr))+]) => {
        $crate::run_proptest(
            $cfg,
            ($($strat,)+),
            |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            },
            stringify!($name),
        );
    };
    // `x in strategy, ...`
    (@parse $cfg:tt $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*] $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case! { @parse $cfg $name $body [$($pats)* ($pat)] [$($strats)* ($strat)] $($rest)* }
    };
    // `x in strategy` (final)
    (@parse $cfg:tt $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*] $pat:pat_param in $strat:expr) => {
        $crate::__proptest_case! { @parse $cfg $name $body [$($pats)* ($pat)] [$($strats)* ($strat)] }
    };
    // `x: Type, ...`
    (@parse $cfg:tt $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*] $pat:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case! { @parse $cfg $name $body [$($pats)* ($pat)] [$($strats)* ($crate::any::<$ty>())] $($rest)* }
    };
    // `x: Type` (final)
    (@parse $cfg:tt $name:ident $body:block [$($pats:tt)*] [$($strats:tt)*] $pat:ident : $ty:ty) => {
        $crate::__proptest_case! { @parse $cfg $name $body [$($pats)* ($pat)] [$($strats)* ($crate::any::<$ty>())] }
    };
}

/// Asserts a condition inside a property test, failing the current
/// case (with its input printed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{}\n  both: {:?}", format!($($fmt)*), a);
    }};
}

/// Skips the current case (without failing) when a precondition on the
/// generated input does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type (weights are not supported by this stand-in).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
