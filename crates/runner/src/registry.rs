//! The experiment registry: every table/figure/e-experiment of the
//! paper registered under a stable name, selectable by glob, and
//! fingerprinted as a whole for the resume manifest.

use crate::experiment::{Experiment, Profile};
use crate::output::hash_str;

/// An ordered collection of named [`Experiment`]s.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    experiments: Vec<Experiment>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds an experiment (builder style).
    ///
    /// # Panics
    ///
    /// If the name is empty, contains whitespace (journal lines are
    /// space-separated), or duplicates an already-registered name.
    #[must_use]
    pub fn with(mut self, exp: Experiment) -> Registry {
        assert!(
            !exp.name.is_empty() && !exp.name.contains(char::is_whitespace),
            "experiment name {:?} must be a non-empty token",
            exp.name
        );
        assert!(
            self.get(exp.name).is_none(),
            "duplicate experiment name {:?}",
            exp.name
        );
        self.experiments.push(exp);
        self
    }

    /// Looks an experiment up by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Experiment> {
        self.experiments.iter().find(|e| e.name == name)
    }

    /// All experiments in registration order.
    #[must_use]
    pub fn all(&self) -> &[Experiment] {
        &self.experiments
    }

    /// The experiments matching `pattern` (a [`glob_match`] glob), or
    /// all of them when `pattern` is `None`; registration order.
    #[must_use]
    pub fn select(&self, pattern: Option<&str>) -> Vec<&Experiment> {
        self.experiments
            .iter()
            .filter(|e| pattern.is_none_or(|p| glob_match(p, e.name)))
            .collect()
    }

    /// A stable fingerprint of a run's shape: the selected experiment
    /// names and per-experiment config fingerprints, the profile, and
    /// the suite seed. Two runs with equal hashes are comparable — the
    /// resume manifest refuses to mix anything else.
    #[must_use]
    pub fn run_hash(&self, selected: &[&Experiment], profile: Profile, seed: u64) -> u64 {
        let mut h = hash_str(profile.as_str()) ^ seed.rotate_left(17);
        for e in selected {
            h = h
                .rotate_left(13)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(hash_str(e.name))
                .wrapping_add((e.fingerprint)());
        }
        h
    }
}

/// Shell-style glob match over experiment names: `*` matches any run of
/// characters, `?` matches exactly one; everything else is literal.
#[must_use]
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn rec(p: &[u8], n: &[u8]) -> bool {
        match (p.first(), n.first()) {
            (None, None) => true,
            (Some(b'*'), _) => rec(&p[1..], n) || (!n.is_empty() && rec(p, &n[1..])),
            (Some(b'?'), Some(_)) => rec(&p[1..], &n[1..]),
            (Some(&pc), Some(&nc)) if pc == nc => rec(&p[1..], &n[1..]),
            _ => false,
        }
    }
    rec(pattern.as_bytes(), name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Ctx, Failure};
    use std::time::Duration;

    fn noop(_: &Ctx) -> Result<(), Failure> {
        Ok(())
    }

    fn exp(name: &'static str) -> Experiment {
        Experiment {
            name,
            title: "test",
            run: noop,
            fingerprint: || 42,
            deadline: Duration::from_secs(1),
        }
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("fig*", "fig5_amplification"));
        assert!(glob_match("e1?_rfc", "e12_rfc"));
        assert!(glob_match("table1", "table1"));
        assert!(!glob_match("fig*", "table1"));
        assert!(!glob_match("fig5", "fig5_amplification"));
        assert!(glob_match("*rfc*", "e12_rfc"));
    }

    #[test]
    fn select_and_lookup() {
        let r = Registry::new().with(exp("fig5")).with(exp("fig6")).with(exp("table1"));
        assert_eq!(r.all().len(), 3);
        assert!(r.get("fig6").is_some());
        let figs = r.select(Some("fig*"));
        assert_eq!(
            figs.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec!["fig5", "fig6"]
        );
        assert_eq!(r.select(None).len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate experiment name")]
    fn duplicate_names_rejected() {
        let _ = Registry::new().with(exp("fig5")).with(exp("fig5"));
    }

    #[test]
    fn run_hash_distinguishes_profile_seed_and_selection() {
        let r = Registry::new().with(exp("a")).with(exp("b"));
        let all = r.select(None);
        let one = r.select(Some("a"));
        let h = r.run_hash(&all, Profile::Full, 1);
        assert_ne!(h, r.run_hash(&all, Profile::Smoke, 1));
        assert_ne!(h, r.run_hash(&all, Profile::Full, 2));
        assert_ne!(h, r.run_hash(&one, Profile::Full, 1));
        assert_eq!(h, r.run_hash(&all, Profile::Full, 1));
    }
}
