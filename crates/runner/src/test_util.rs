//! Test-only helpers (public for the crate's integration tests; not
//! part of the supported API).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely-named scratch directory under the system temp dir,
/// removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    /// Creates `<tmp>/pandora-runner-<tag>-<pid>-<n>`.
    ///
    /// # Panics
    ///
    /// If the directory cannot be created.
    #[must_use]
    pub fn new(tag: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pandora-runner-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
