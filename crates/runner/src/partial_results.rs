//! The shared "exit nonzero with partial results" policy.
//!
//! The fig6/fig7 bench bins each used to hand-roll this: print what
//! was measured, explain the failure on stderr, exit nonzero. Every
//! bench bin now routes through [`standalone_run`], which adds the two
//! guarantees the hand-rolled versions lacked — panic isolation (a
//! crashing experiment still reports its partial output) and an atomic
//! results-file write (a killed process never leaves a truncated
//! `results/*.txt`).

use std::path::Path;
use std::process::ExitCode;

use pandora_channels::RetryPolicy;

use crate::experiment::{Experiment, Profile};
use crate::orchestrator::{execute, ExecOutcome, Status};
use crate::output::atomic_write;

/// Runs `exp` standalone (one bench bin invocation): executes with
/// panic isolation under the experiment's own deadline, prints the
/// captured report to stdout, and — when `results_dir` is given —
/// publishes `results/<name>.txt` atomically.
///
/// Returns the outcome so the caller can turn it into an exit code
/// with [`exit_code`].
pub fn standalone_run(
    exp: &Experiment,
    profile: Profile,
    seed: u64,
    opts: &[String],
    results_dir: Option<&Path>,
) -> ExecOutcome {
    // Standalone runs are interactive: fail fast, no retries.
    let policy = RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    };
    let outcome = execute(exp, profile, seed, opts, exp.deadline, &policy);
    print!("{}", outcome.output);
    if let Some(dir) = results_dir {
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| atomic_write(&dir.join(format!("{}.txt", exp.name)), outcome.output.as_bytes()));
        if let Err(e) = write {
            eprintln!("{}: could not write results file: {e}", exp.name);
        }
    }
    outcome
}

/// Maps an outcome to the uniform exit protocol: success on `ok`;
/// otherwise report "aborting with partial results" on stderr (the
/// fig6/fig7 convention, now shared by all experiments) and exit
/// nonzero.
#[must_use]
pub fn exit_code(name: &str, outcome: &ExecOutcome) -> ExitCode {
    match &outcome.status {
        Status::Ok => ExitCode::SUCCESS,
        other => {
            eprintln!(
                "{name}: aborting with partial results: {}",
                other.reason().unwrap_or("unknown failure")
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Ctx, Failure};
    use crate::test_util::TempDir;
    use std::time::Duration;

    fn ok_exp() -> Experiment {
        fn body(ctx: &Ctx) -> Result<(), Failure> {
            ctx.header("T");
            Ok(())
        }
        Experiment {
            name: "ok_exp",
            title: "t",
            run: body,
            fingerprint: || 1,
            deadline: Duration::from_secs(5),
        }
    }

    fn failing_exp() -> Experiment {
        fn body(ctx: &Ctx) -> Result<(), Failure> {
            ctx.line(format_args!("measured half of it"));
            Err(Failure::new("the second half exploded"))
        }
        Experiment {
            name: "failing_exp",
            title: "t",
            run: body,
            fingerprint: || 1,
            deadline: Duration::from_secs(5),
        }
    }

    #[test]
    fn ok_run_writes_results_and_exits_zero() {
        let dir = TempDir::new("standalone_ok");
        let exp = ok_exp();
        let outcome = standalone_run(&exp, Profile::Smoke, 0, &[], Some(dir.path()));
        assert_eq!(outcome.status, Status::Ok);
        let code = exit_code("ok_exp", &outcome);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::SUCCESS));
        let written = std::fs::read_to_string(dir.path().join("ok_exp.txt")).unwrap();
        assert!(written.contains("=== T ==="));
    }

    #[test]
    fn failure_keeps_partial_output_and_exits_nonzero() {
        let dir = TempDir::new("standalone_fail");
        let exp = failing_exp();
        let outcome = standalone_run(&exp, Profile::Full, 0, &[], Some(dir.path()));
        assert!(matches!(outcome.status, Status::Partial { .. }));
        assert!(outcome.output.contains("measured half of it"));
        let code = exit_code("failing_exp", &outcome);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::FAILURE));
    }
}
