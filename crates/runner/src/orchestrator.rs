//! The suite orchestrator: runs registered experiments on a thread
//! pool with per-experiment deadlines, panic isolation, bounded
//! retries, and checkpoint/resume, then publishes crash-safe results.
//!
//! Failure containment mirrors the simulator's own philosophy
//! ("failures are data, not aborts", DESIGN.md §6) one level up: a
//! panicking experiment is caught by `catch_unwind` and recorded as a
//! partial result; a *wedged* experiment — the job-level analogue of
//! `SimConfig::watchdog_cycles` — trips its wall-clock deadline, its
//! thread is abandoned, and the suite moves on. Only infrastructure
//! failures (unwritable results directory, a refused resume, a
//! determinism mismatch) fail the suite itself.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use pandora_channels::RetryPolicy;

use crate::experiment::{Ctx, Experiment, Failure, Profile};
use crate::journal::{Journal, JournalEntry, Manifest};
use crate::output::{atomic_write, hash_str};
use crate::registry::Registry;

/// Final status of one experiment in a suite run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// Completed cleanly; results are full.
    Ok,
    /// The experiment failed, panicked, or overran its deadline after
    /// all retries; whatever output it produced is recorded and flagged
    /// partial. The suite survives.
    Partial {
        /// What went wrong (error message, panic payload, or deadline).
        reason: String,
    },
    /// An infrastructure-level failure: the run's results cannot be
    /// trusted (e.g. a resumed experiment re-verified to different
    /// bytes). Fails the suite.
    Failed {
        /// What went wrong.
        reason: String,
    },
}

impl Status {
    /// The summary/journal keyword (`ok` / `partial` / `failed`).
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Partial { .. } => "partial",
            Status::Failed { .. } => "failed",
        }
    }

    /// The reason, if any.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        match self {
            Status::Ok => None,
            Status::Partial { reason } | Status::Failed { reason } => Some(reason),
        }
    }
}

/// One experiment's row in the suite report / `summary.json`.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment name.
    pub name: String,
    /// Final status.
    pub status: Status,
    /// Wall time of the run (zero for entries skipped on resume).
    pub wall: Duration,
    /// Retries consumed (0 = first attempt).
    pub retries: u32,
    /// Whether this entry was taken from the journal (skipped) on
    /// resume rather than re-run.
    pub resumed: bool,
    /// Whether this entry was re-run on resume to verify determinism.
    pub reverified: bool,
    /// FNV-1a of the experiment's text output.
    pub output_hash: u64,
    /// Output length in bytes.
    pub output_bytes: u64,
}

/// The full result of a suite run.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Profile the suite ran under.
    pub profile: Profile,
    /// Suite seed.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Identity hash of the run (see
    /// [`Registry::run_hash`](crate::Registry::run_hash)).
    pub run_hash: u64,
    /// Per-experiment rows, in registry order.
    pub experiments: Vec<ExperimentReport>,
}

impl SuiteReport {
    /// `true` when every experiment is `ok`.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.experiments.iter().all(|e| e.status == Status::Ok)
    }

    /// `true` when no experiment is worse than `partial`.
    #[must_use]
    pub fn none_failed(&self) -> bool {
        !self
            .experiments
            .iter()
            .any(|e| matches!(e.status, Status::Failed { .. }))
    }

    /// Renders the machine-readable `summary.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile.as_str());
        let _ = writeln!(s, "  \"seed\": \"{:#018x}\",", self.seed);
        let _ = writeln!(s, "  \"run_hash\": \"{:#018x}\",", self.run_hash);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(s, "\"name\": \"{}\", ", json_escape(&e.name));
            let _ = write!(s, "\"status\": \"{}\", ", e.status.keyword());
            let _ = write!(
                s,
                "\"partial\": {}, ",
                matches!(e.status, Status::Partial { .. })
            );
            if let Some(reason) = e.status.reason() {
                let _ = write!(s, "\"reason\": \"{}\", ", json_escape(reason));
            }
            let _ = write!(s, "\"wall_ms\": {}, ", e.wall.as_millis());
            let _ = write!(s, "\"retries\": {}, ", e.retries);
            let _ = write!(s, "\"resumed\": {}, ", e.resumed);
            let _ = write!(s, "\"reverified\": {}, ", e.reverified);
            let _ = write!(s, "\"output_hash\": \"{:#018x}\", ", e.output_hash);
            let _ = write!(s, "\"output_bytes\": {}", e.output_bytes);
            s.push('}');
            s.push_str(if i + 1 < self.experiments.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Options for one suite run.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Profile to run every experiment under.
    pub profile: Profile,
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Directory for `*.txt` outputs, the journal/manifest, and
    /// `summary.json`.
    pub results_dir: PathBuf,
    /// Select experiments by glob (`None` = all).
    pub only: Option<String>,
    /// Resume from the journal instead of starting fresh.
    pub resume: bool,
    /// On resume, how many journaled-complete experiments to re-run and
    /// compare byte-for-byte (determinism re-verification).
    pub reverify: usize,
    /// Retry policy for failed/panicked attempts (`max_attempts`
    /// bounds total attempts; deadline overruns are never retried).
    pub retry: RetryPolicy,
    /// Suite seed recorded in the manifest and handed to experiments.
    pub seed: u64,
    /// Override every experiment's own deadline (mainly for tests).
    pub deadline_override: Option<Duration>,
    /// Print one progress line per experiment to stdout.
    pub progress: bool,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            profile: Profile::Full,
            jobs: 1,
            results_dir: PathBuf::from("results"),
            only: None,
            resume: false,
            reverify: 1,
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            seed: 0,
            deadline_override: None,
            progress: false,
        }
    }
}

/// An infrastructure failure that aborts the whole suite.
#[derive(Debug)]
pub enum SuiteError {
    /// Filesystem trouble (results dir, journal, manifest, outputs).
    Io(io::Error),
    /// `--resume` was requested but the journal/manifest do not
    /// describe this run (or are missing/corrupt).
    ResumeRefused(String),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Io(e) => write!(f, "suite I/O failure: {e}"),
            SuiteError::ResumeRefused(why) => write!(f, "refusing to resume: {why}"),
        }
    }
}

impl std::error::Error for SuiteError {}

impl From<io::Error> for SuiteError {
    fn from(e: io::Error) -> SuiteError {
        SuiteError::Io(e)
    }
}

/// Result of one isolated attempt at an experiment.
#[derive(Debug)]
enum AttemptResult {
    Ok,
    Failed(Failure),
    Panicked(String),
    TimedOut(Duration),
}

/// Outcome of executing one experiment (after retries): status plus
/// the captured output snapshot.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Final status (never [`Status::Failed`]: execution failures
    /// degrade to partial; only the orchestrator escalates).
    pub status: Status,
    /// Everything the experiment wrote, possibly partial.
    pub output: String,
    /// Wall time across all attempts.
    pub wall: Duration,
    /// Retries consumed.
    pub retries: u32,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt of `exp` on its own thread, catching panics and
/// abandoning the thread if `deadline` expires first.
fn attempt(exp: &Experiment, ctx: &Ctx, deadline: Duration) -> AttemptResult {
    let (tx, rx) = mpsc::channel();
    let run = exp.run;
    let thread_ctx = ctx.clone();
    let spawned = thread::Builder::new()
        .name(format!("pandora-exp-{}", exp.name))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| run(&thread_ctx)));
            // The receiver may have given up on us (deadline); a send
            // failure is then expected and irrelevant.
            let _ = tx.send(result);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return AttemptResult::Failed(Failure::new(format!("spawn failed: {e}"))),
    };
    match rx.recv_timeout(deadline) {
        Ok(Ok(Ok(()))) => {
            let _ = handle.join();
            AttemptResult::Ok
        }
        Ok(Ok(Err(failure))) => {
            let _ = handle.join();
            AttemptResult::Failed(failure)
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            AttemptResult::Panicked(panic_message(payload.as_ref()))
        }
        Err(RecvTimeoutError::Timeout) => {
            // The experiment is wedged. Threads cannot be killed; the
            // worker abandons it (it keeps running detached until
            // process exit — the cooperative `Ctx::deadline_exceeded`
            // check lets well-behaved loops wind down early) and the
            // suite degrades this entry to a recorded partial failure.
            drop(handle);
            AttemptResult::TimedOut(deadline)
        }
        Err(RecvTimeoutError::Disconnected) => {
            AttemptResult::Panicked("experiment thread vanished".to_string())
        }
    }
}

/// Executes `exp` with panic isolation, a per-attempt deadline, and
/// bounded retries under `policy`. Deadline overruns are not retried
/// (a wedge would almost certainly wedge again and cost another full
/// deadline); failures and panics are, on the fault model that
/// disturbances are transient.
#[must_use]
pub fn execute(
    exp: &Experiment,
    profile: Profile,
    seed: u64,
    opts: &[String],
    deadline: Duration,
    policy: &RetryPolicy,
) -> ExecOutcome {
    let attempts = policy.max_attempts.max(1);
    let start = Instant::now();
    let mut last: Option<AttemptResult> = None;
    let mut used: u32 = 0;
    let mut output = String::new();
    for i in 0..attempts {
        let ctx = Ctx::new(
            profile,
            seed,
            Some(Instant::now() + deadline),
            opts.to_vec(),
        );
        used = i + 1;
        let result = attempt(exp, &ctx, deadline);
        output = ctx.output();
        let timed_out = matches!(result, AttemptResult::TimedOut(_));
        last = Some(result);
        if matches!(last, Some(AttemptResult::Ok)) || timed_out {
            break;
        }
    }
    let wall = start.elapsed();
    let retries = used.saturating_sub(1);
    let status = match last.expect("at least one attempt ran") {
        AttemptResult::Ok => Status::Ok,
        AttemptResult::Failed(f) => Status::Partial {
            reason: format!("failed after {used} attempt(s): {f}"),
        },
        AttemptResult::Panicked(msg) => Status::Partial {
            reason: format!("panicked after {used} attempt(s): {msg}"),
        },
        AttemptResult::TimedOut(d) => Status::Partial {
            reason: format!(
                "deadline of {:.1}s exceeded on attempt {used} (wedged; thread abandoned)",
                d.as_secs_f64()
            ),
        },
    };
    ExecOutcome {
        status,
        output,
        wall,
        retries,
    }
}

enum JobKind {
    Run,
    Reverify { expected_hash: u64 },
}

struct JobResult {
    index: usize,
    outcome: ExecOutcome,
    kind: JobKind,
}

/// Runs the suite described by `opts` over `registry`.
///
/// Writes, all crash-safely:
///
/// * `results/<name>.txt` per completed experiment (atomic replace),
/// * `results/.runall.journal` (fsynced append per completion),
/// * `results/.runall.manifest` (atomic, at suite start),
/// * `results/summary.json` (atomic, at suite end).
///
/// # Errors
///
/// [`SuiteError::ResumeRefused`] when `--resume` does not match the
/// recorded manifest; [`SuiteError::Io`] for filesystem failures.
/// Per-experiment failures are *not* errors — they come back as
/// [`Status::Partial`] / [`Status::Failed`] rows in the report.
pub fn run_suite(registry: &Registry, opts: &SuiteOptions) -> Result<SuiteReport, SuiteError> {
    let selected = registry.select(opts.only.as_deref());
    let run_hash = registry.run_hash(&selected, opts.profile, opts.seed);
    let manifest = Manifest {
        profile: opts.profile,
        seed: opts.seed,
        run_hash,
    };

    fs::create_dir_all(&opts.results_dir)?;
    // Sweep `.{name}.tmp.{pid}` debris a hard-killed previous run may
    // have left (atomic_write's own error path cleans up; SIGKILL
    // cannot). Best-effort: a truncated scan sweeps what it salvaged.
    let (swept, scan_err) = crate::output::clean_stale_tmp(&opts.results_dir);
    if opts.progress {
        if !swept.is_empty() {
            println!("[pandora-runner] swept {} stale temp file(s)", swept.len());
        }
        if let Some(e) = scan_err {
            println!("[pandora-runner] temp sweep incomplete: {e}");
        }
    }
    let journal_path = opts.results_dir.join(".runall.journal");
    let manifest_path = opts.results_dir.join(".runall.manifest");

    // Resume bookkeeping: which experiments are already done, and with
    // what recorded output hash.
    let mut completed: Vec<JournalEntry> = Vec::new();
    let mut journal = if opts.resume {
        let recorded = Manifest::load(&manifest_path).map_err(|e| {
            SuiteError::ResumeRefused(format!("cannot read manifest: {e}"))
        })?;
        recorded
            .check_matches(&manifest)
            .map_err(SuiteError::ResumeRefused)?;
        completed = Journal::load(&journal_path)
            .map_err(|e| SuiteError::ResumeRefused(format!("cannot read journal: {e}")))?;
        Journal::open_append(&journal_path)?
    } else {
        manifest.write(&manifest_path)?;
        Journal::create(&journal_path)?
    };

    let find_completed = |name: &str| completed.iter().find(|e| e.name == name && e.status == "ok");

    // Build the job list in registry order: run / reverify / skip.
    let mut reports: Vec<Option<ExperimentReport>> = vec![None; selected.len()];
    let mut jobs: VecDeque<(usize, JobKind)> = VecDeque::new();
    let mut reverified = 0usize;
    for (i, exp) in selected.iter().enumerate() {
        match find_completed(exp.name) {
            Some(entry) if reverified < opts.reverify => {
                reverified += 1;
                jobs.push_back((
                    i,
                    JobKind::Reverify {
                        expected_hash: entry.output_hash,
                    },
                ));
            }
            Some(entry) => {
                reports[i] = Some(ExperimentReport {
                    name: exp.name.to_string(),
                    status: Status::Ok,
                    wall: Duration::from_millis(entry.wall_ms),
                    retries: entry.retries,
                    resumed: true,
                    reverified: false,
                    output_hash: entry.output_hash,
                    output_bytes: entry.output_bytes,
                });
            }
            None => jobs.push_back((i, JobKind::Run)),
        }
    }

    let to_run = jobs.len();
    let jobs = Mutex::new(jobs);
    let (tx, rx) = mpsc::channel::<JobResult>();
    let workers = opts.jobs.max(1).min(to_run.max(1));

    thread::scope(|scope| {
        for _ in 0..workers {
            let jobs = &jobs;
            let tx = tx.clone();
            let selected = &selected;
            let opts_ref = opts;
            scope.spawn(move || loop {
                let job = jobs.lock().unwrap_or_else(|p| p.into_inner()).pop_front();
                let Some((index, kind)) = job else { break };
                let exp = selected[index];
                let deadline = opts_ref.deadline_override.unwrap_or(exp.deadline);
                let outcome = execute(
                    exp,
                    opts_ref.profile,
                    opts_ref.seed,
                    &[],
                    deadline,
                    &opts_ref.retry,
                );
                if tx.send(JobResult { index, kind, outcome }).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // The main thread owns the journal and all file writes:
        // appends stay serialized (one fsync at a time) and results
        // files are published the moment their experiment completes,
        // not at suite end.
        let mut done = 0usize;
        while let Ok(JobResult { index, kind, outcome }) = rx.recv() {
            done += 1;
            let exp = selected[index];
            let output_hash = hash_str(&outcome.output);
            let output_bytes = outcome.output.len() as u64;
            let mut status = outcome.status;
            let mut was_reverify = false;
            match kind {
                JobKind::Run => {
                    // Publish the (possibly partial) output atomically.
                    let path = opts.results_dir.join(format!("{}.txt", exp.name));
                    let mut text = outcome.output.clone();
                    if let Some(reason) = status.reason() {
                        let _ = write!(
                            text,
                            "\n[pandora-runner] PARTIAL RESULTS: {reason}\n"
                        );
                    }
                    atomic_write(&path, text.as_bytes())?;
                }
                JobKind::Reverify { expected_hash } => {
                    was_reverify = true;
                    status = match status {
                        Status::Ok if output_hash == expected_hash => Status::Ok,
                        Status::Ok => Status::Failed {
                            reason: format!(
                                "determinism re-verification failed: recorded output hash \
                                 {expected_hash:#x}, re-run produced {output_hash:#x}"
                            ),
                        },
                        other => Status::Failed {
                            reason: format!(
                                "determinism re-verification could not complete: {}",
                                other.reason().unwrap_or("unknown")
                            ),
                        },
                    };
                    // A matching reverify also refreshes the text file
                    // (byte-identical by construction).
                    if status == Status::Ok {
                        let path = opts.results_dir.join(format!("{}.txt", exp.name));
                        atomic_write(&path, outcome.output.as_bytes())?;
                    }
                }
            }
            // Checkpoint: after this fsync, a crash cannot lose the entry.
            if !was_reverify {
                journal.append(&JournalEntry {
                    name: exp.name.to_string(),
                    status: status.keyword().to_string(),
                    wall_ms: outcome.wall.as_millis() as u64,
                    retries: outcome.retries,
                    output_hash,
                    output_bytes,
                })?;
            }
            if opts.progress {
                println!(
                    "[{done:>2}/{to_run}] {:<28} {:<8} {:>7.2}s{}{}",
                    exp.name,
                    status.keyword(),
                    outcome.wall.as_secs_f64(),
                    if outcome.retries > 0 {
                        format!("  ({} retries)", outcome.retries)
                    } else {
                        String::new()
                    },
                    status
                        .reason()
                        .map(|r| format!("  [{r}]"))
                        .unwrap_or_default(),
                );
            }
            reports[index] = Some(ExperimentReport {
                name: exp.name.to_string(),
                status,
                wall: outcome.wall,
                retries: outcome.retries,
                resumed: false,
                reverified: was_reverify,
                output_hash,
                output_bytes,
            });
        }
        Ok::<(), SuiteError>(())
    })?;

    let experiments = reports
        .into_iter()
        .map(|r| r.expect("every selected experiment reported"))
        .collect();
    let report = SuiteReport {
        profile: opts.profile,
        seed: opts.seed,
        jobs: workers,
        run_hash,
        experiments,
    };
    atomic_write(
        &opts.results_dir.join("summary.json"),
        report.to_json().as_bytes(),
    )?;
    Ok(report)
}
