//! The suite orchestrator: a *supervised* worker pool with
//! per-experiment deadlines, panic isolation, bounded retries,
//! circuit breakers, checkpoint/resume, and graceful storage
//! degradation, publishing crash-safe results.
//!
//! Failure containment mirrors the simulator's own philosophy
//! ("failures are data, not aborts", DESIGN.md §6) one level up:
//!
//! * a panicking experiment is caught by `catch_unwind` on its worker
//!   and recorded as a partial result;
//! * a *wedged* experiment — the job-level analogue of
//!   `SimConfig::watchdog_cycles` — trips its wall-clock deadline; the
//!   supervisor abandons the whole worker thread, salvages whatever the
//!   experiment had printed, and spawns a replacement worker under a
//!   bounded restart budget with doubling backoff;
//! * an experiment that panics or wedges `breaker_threshold` times in
//!   a row trips its circuit breaker and is skipped with
//!   [`Status::Degraded`] instead of burning more suite deadline;
//! * storage faults (a failed journal fsync, an unpublishable result
//!   file) degrade the run — journaling stops, the failure is counted
//!   in [`SuiteHealth`] — instead of aborting it. The one exception is
//!   a simulated kill from the [`chaos`] layer, which
//!   escalates to [`SuiteError::Crashed`]: crash tests *want* the
//!   abrupt stop.
//!
//! Only infrastructure failures that make results untrustworthy (an
//! unwritable results directory, a refused resume, a determinism
//! mismatch) fail the suite itself.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use pandora_channels::RetryPolicy;

use crate::chaos::{self, ChaosPlan};
use crate::experiment::{Ctx, Experiment, Failure, Profile};
use crate::journal::{Journal, JournalEntry, Manifest};
use crate::output::{atomic_write, hash_str};
use crate::registry::Registry;

/// Supervisor housekeeping cadence (wedge scan, respawns, admission).
const SUPERVISOR_TICK: Duration = Duration::from_millis(25);

/// Slack past the deadline before the supervisor declares a worker
/// wedged — covers an experiment that finishes *at* its deadline plus
/// event-delivery latency.
const WEDGE_GRACE: Duration = Duration::from_millis(150);

/// Final status of one experiment in a suite run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// Completed cleanly; results are full.
    Ok,
    /// The experiment failed, panicked, or overran its deadline after
    /// all retries; whatever output it produced is recorded and flagged
    /// partial. The suite survives.
    Partial {
        /// What went wrong (error message, panic payload, or deadline).
        reason: String,
    },
    /// The experiment was skipped by the suite's own protection
    /// machinery — its circuit breaker opened after repeated
    /// panic/deadline failures, or the worker pool's restart budget ran
    /// out. No (or only salvaged) output exists; re-running with
    /// `--resume` retries it.
    Degraded {
        /// Which protection fired.
        reason: String,
    },
    /// An infrastructure-level failure: the run's results cannot be
    /// trusted (e.g. a resumed experiment re-verified to different
    /// bytes). Fails the suite.
    Failed {
        /// What went wrong.
        reason: String,
    },
}

impl Status {
    /// The summary/journal keyword (`ok` / `partial` / `degraded` /
    /// `failed`).
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Partial { .. } => "partial",
            Status::Degraded { .. } => "degraded",
            Status::Failed { .. } => "failed",
        }
    }

    /// The reason, if any.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        match self {
            Status::Ok => None,
            Status::Partial { reason }
            | Status::Degraded { reason }
            | Status::Failed { reason } => Some(reason),
        }
    }
}

/// One experiment's row in the suite report / `summary.json`.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment name.
    pub name: String,
    /// Final status.
    pub status: Status,
    /// Wall time of the run (zero for entries skipped on resume).
    pub wall: Duration,
    /// Retries consumed (0 = first attempt).
    pub retries: u32,
    /// Whether this entry was taken from the journal (skipped) on
    /// resume rather than re-run.
    pub resumed: bool,
    /// Whether this entry was re-run on resume to verify determinism.
    pub reverified: bool,
    /// FNV-1a of the experiment's text output.
    pub output_hash: u64,
    /// Output length in bytes.
    pub output_bytes: u64,
}

/// Operational health of a suite run: supervision activity, open
/// circuit breakers, storage degradation, and chaos-injection
/// accounting. Serialized as the `health` object of `summary.json`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SuiteHealth {
    /// Replacement workers spawned after wedges (bounded by
    /// [`SuiteOptions::max_worker_restarts`]).
    pub worker_restarts: u32,
    /// Worker threads abandoned because their experiment wedged.
    pub workers_abandoned: u32,
    /// Names of experiments whose circuit breaker is open at suite end.
    pub breakers_open: Vec<String>,
    /// Ticks on which the bounded job queue was full and admission of
    /// the next job was deferred.
    pub admission_deferrals: u64,
    /// Whether a journal I/O failure disabled checkpointing mid-run
    /// (the run completed, but `--resume` will re-run its experiments).
    pub journal_degraded: bool,
    /// Result/manifest/summary publishes that failed and were skipped.
    pub publish_failures: u32,
    /// Storage faults injected by the chaos layer.
    pub faults_injected: u64,
    /// Injected faults the suite survived (all but a simulated kill).
    pub faults_survived: u64,
    /// Distinct injected fault kinds, in stable order.
    pub fault_kinds: Vec<&'static str>,
    /// Total journal/publish I/O operations routed through the chaos
    /// layer (0 when no chaos plan was installed).
    pub io_ops: u64,
    /// Per-site operation counts from the chaos layer, in
    /// [`chaos::Site::ALL`] order. In-memory detail for tests and
    /// tooling; `summary.json` carries only the total.
    pub ops_by_site: Vec<(&'static str, u64)>,
}

/// The full result of a suite run.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Profile the suite ran under.
    pub profile: Profile,
    /// Suite seed.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Identity hash of the run (see
    /// [`Registry::run_hash`](crate::Registry::run_hash)).
    pub run_hash: u64,
    /// Per-experiment rows, in registry order.
    pub experiments: Vec<ExperimentReport>,
    /// Supervision/degradation/chaos accounting for the run.
    pub health: SuiteHealth,
}

impl SuiteReport {
    /// `true` when every experiment is `ok`.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.experiments.iter().all(|e| e.status == Status::Ok)
    }

    /// `true` when no experiment is worse than `partial`/`degraded`.
    #[must_use]
    pub fn none_failed(&self) -> bool {
        !self
            .experiments
            .iter()
            .any(|e| matches!(e.status, Status::Failed { .. }))
    }

    /// Number of experiments skipped as [`Status::Degraded`].
    #[must_use]
    pub fn degraded_count(&self) -> usize {
        self.experiments
            .iter()
            .filter(|e| matches!(e.status, Status::Degraded { .. }))
            .count()
    }

    /// Renders the machine-readable `summary.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile.as_str());
        let _ = writeln!(s, "  \"seed\": \"{:#018x}\",", self.seed);
        let _ = writeln!(s, "  \"run_hash\": \"{:#018x}\",", self.run_hash);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let h = &self.health;
        s.push_str("  \"health\": {");
        let _ = write!(s, "\"worker_restarts\": {}, ", h.worker_restarts);
        let _ = write!(s, "\"workers_abandoned\": {}, ", h.workers_abandoned);
        let _ = write!(s, "\"breakers_open\": [");
        for (i, name) in h.breakers_open.iter().enumerate() {
            let _ = write!(
                s,
                "{}\"{}\"",
                if i > 0 { ", " } else { "" },
                json_escape(name)
            );
        }
        let _ = write!(s, "], ");
        let _ = write!(s, "\"admission_deferrals\": {}, ", h.admission_deferrals);
        let _ = write!(s, "\"journal_degraded\": {}, ", h.journal_degraded);
        let _ = write!(s, "\"publish_failures\": {}, ", h.publish_failures);
        let _ = write!(s, "\"faults_injected\": {}, ", h.faults_injected);
        let _ = write!(s, "\"faults_survived\": {}, ", h.faults_survived);
        let _ = write!(s, "\"fault_kinds\": [");
        for (i, kind) in h.fault_kinds.iter().enumerate() {
            let _ = write!(s, "{}\"{kind}\"", if i > 0 { ", " } else { "" });
        }
        let _ = write!(s, "], ");
        let _ = write!(s, "\"io_ops\": {}", h.io_ops);
        s.push_str("},\n");
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(s, "\"name\": \"{}\", ", json_escape(&e.name));
            let _ = write!(s, "\"status\": \"{}\", ", e.status.keyword());
            let _ = write!(
                s,
                "\"partial\": {}, ",
                matches!(e.status, Status::Partial { .. })
            );
            if let Some(reason) = e.status.reason() {
                let _ = write!(s, "\"reason\": \"{}\", ", json_escape(reason));
            }
            let _ = write!(s, "\"wall_ms\": {}, ", e.wall.as_millis());
            let _ = write!(s, "\"retries\": {}, ", e.retries);
            let _ = write!(s, "\"resumed\": {}, ", e.resumed);
            let _ = write!(s, "\"reverified\": {}, ", e.reverified);
            let _ = write!(s, "\"output_hash\": \"{:#018x}\", ", e.output_hash);
            let _ = write!(s, "\"output_bytes\": {}", e.output_bytes);
            s.push('}');
            s.push_str(if i + 1 < self.experiments.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the *canonical* summary document
    /// (`summary.canonical.json`): only the run identity and the
    /// deterministic per-experiment facts (name, status, output hash
    /// and length). Unlike [`SuiteReport::to_json`] it contains no wall
    /// times, retry counts, resume provenance, or health counters, so
    /// an interrupted-then-resumed run and an uninterrupted run of the
    /// same suite produce byte-identical documents — the property the
    /// crash-point recovery tests pin.
    #[must_use]
    pub fn to_json_canonical(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": 1,");
        let _ = writeln!(s, "  \"profile\": \"{}\",", self.profile.as_str());
        let _ = writeln!(s, "  \"seed\": \"{:#018x}\",", self.seed);
        let _ = writeln!(s, "  \"run_hash\": \"{:#018x}\",", self.run_hash);
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(s, "\"name\": \"{}\", ", json_escape(&e.name));
            let _ = write!(s, "\"status\": \"{}\", ", e.status.keyword());
            let _ = write!(s, "\"output_hash\": \"{:#018x}\", ", e.output_hash);
            let _ = write!(s, "\"output_bytes\": {}", e.output_bytes);
            s.push('}');
            s.push_str(if i + 1 < self.experiments.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Options for one suite run.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Profile to run every experiment under.
    pub profile: Profile,
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Fleet worker threads *per experiment* (0 = the process-wide
    /// fleet default): how many machines a single experiment's fleet
    /// grids step concurrently. Total thread pressure is roughly
    /// `jobs × fleet_threads`, so suites raising `jobs` should keep
    /// this at 1 and vice versa.
    pub fleet_threads: usize,
    /// Directory for `*.txt` outputs, the journal/manifest, and
    /// `summary.json`.
    pub results_dir: PathBuf,
    /// Select experiments by glob (`None` = all).
    pub only: Option<String>,
    /// Resume from the journal instead of starting fresh.
    pub resume: bool,
    /// On resume, how many journaled-complete experiments to re-run and
    /// compare byte-for-byte (determinism re-verification).
    pub reverify: usize,
    /// Retry policy for failed/panicked attempts (`max_attempts`
    /// bounds total attempts; deadline overruns are never retried).
    pub retry: RetryPolicy,
    /// Suite seed recorded in the manifest and handed to experiments.
    pub seed: u64,
    /// Override every experiment's own deadline (mainly for tests).
    pub deadline_override: Option<Duration>,
    /// Print one progress line per experiment to stdout.
    pub progress: bool,
    /// Storage fault plan to install for the run (`None` = no chaos).
    /// Installing even an empty plan turns on I/O accounting in
    /// [`SuiteHealth`].
    pub chaos: Option<ChaosPlan>,
    /// Consecutive panic/deadline failures before an experiment's
    /// circuit breaker opens and remaining attempts are skipped as
    /// [`Status::Degraded`]. `0` disables breakers.
    pub breaker_threshold: u32,
    /// Replacement workers the supervisor may spawn after wedges.
    pub max_worker_restarts: u32,
    /// Base delay before a replacement worker spawns; doubles per
    /// restart already used.
    pub restart_backoff: Duration,
    /// Bounded job-queue capacity (`None` = twice the worker count).
    /// Jobs beyond capacity wait in the supervisor under admission
    /// control.
    pub queue_capacity: Option<usize>,
    /// When a resume is refused (missing/corrupt manifest or journal),
    /// fall back to a fresh run instead of erroring. Used by crash
    /// recovery, where a kill may predate the manifest.
    pub resume_fallback: bool,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            profile: Profile::Full,
            jobs: 1,
            fleet_threads: 0,
            results_dir: PathBuf::from("results"),
            only: None,
            resume: false,
            reverify: 1,
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            seed: 0,
            deadline_override: None,
            progress: false,
            chaos: None,
            breaker_threshold: 3,
            max_worker_restarts: 4,
            restart_backoff: Duration::from_millis(50),
            queue_capacity: None,
            resume_fallback: false,
        }
    }
}

/// An infrastructure failure that aborts the whole suite.
#[derive(Debug)]
pub enum SuiteError {
    /// Filesystem trouble (results dir, journal, manifest, outputs).
    Io(io::Error),
    /// `--resume` was requested but the journal/manifest do not
    /// describe this run (or are missing/corrupt).
    ResumeRefused(String),
    /// A simulated kill from the [`chaos`] layer took the
    /// run down mid-flight — the expected outcome of a crash-point
    /// test, never of a production run.
    Crashed(String),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Io(e) => write!(f, "suite I/O failure: {e}"),
            SuiteError::ResumeRefused(why) => write!(f, "refusing to resume: {why}"),
            SuiteError::Crashed(why) => write!(f, "suite crashed: {why}"),
        }
    }
}

impl std::error::Error for SuiteError {}

impl From<io::Error> for SuiteError {
    fn from(e: io::Error) -> SuiteError {
        SuiteError::Io(e)
    }
}

/// Result of one isolated attempt at an experiment.
#[derive(Debug)]
enum AttemptResult {
    Ok,
    Failed(Failure),
    Panicked(String),
    TimedOut(Duration),
}

/// Outcome of executing one experiment (after retries): status plus
/// the captured output snapshot.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Final status (never [`Status::Failed`]: execution failures
    /// degrade to partial; only the orchestrator escalates).
    pub status: Status,
    /// Everything the experiment wrote, possibly partial.
    pub output: String,
    /// Wall time across all attempts.
    pub wall: Duration,
    /// Retries consumed.
    pub retries: u32,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt of `exp` on its own thread, catching panics and
/// abandoning the thread if `deadline` expires first.
fn attempt(exp: &Experiment, ctx: &Ctx, deadline: Duration) -> AttemptResult {
    let (tx, rx) = mpsc::channel();
    let run = exp.run;
    let thread_ctx = ctx.clone();
    let spawned = thread::Builder::new()
        .name(format!("pandora-exp-{}", exp.name))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| run(&thread_ctx)));
            // The receiver may have given up on us (deadline); a send
            // failure is then expected and irrelevant.
            let _ = tx.send(result);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return AttemptResult::Failed(Failure::new(format!("spawn failed: {e}"))),
    };
    match rx.recv_timeout(deadline) {
        Ok(Ok(Ok(()))) => {
            let _ = handle.join();
            AttemptResult::Ok
        }
        Ok(Ok(Err(failure))) => {
            let _ = handle.join();
            AttemptResult::Failed(failure)
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            AttemptResult::Panicked(panic_message(payload.as_ref()))
        }
        Err(RecvTimeoutError::Timeout) => {
            // The experiment is wedged. Threads cannot be killed; the
            // worker abandons it (it keeps running detached until
            // process exit — the cooperative `Ctx::deadline_exceeded`
            // check lets well-behaved loops wind down early) and the
            // suite degrades this entry to a recorded partial failure.
            drop(handle);
            AttemptResult::TimedOut(deadline)
        }
        Err(RecvTimeoutError::Disconnected) => {
            AttemptResult::Panicked("experiment thread vanished".to_string())
        }
    }
}

/// Executes `exp` with panic isolation, a per-attempt deadline, and
/// bounded retries under `policy`. Deadline overruns are not retried
/// (a wedge would almost certainly wedge again and cost another full
/// deadline); failures and panics are, on the fault model that
/// disturbances are transient.
///
/// This is the *standalone* execution path (used by
/// [`partial_results`](crate::partial_results) and the per-figure
/// bins); [`run_suite`] supervises its workers directly instead.
#[must_use]
pub fn execute(
    exp: &Experiment,
    profile: Profile,
    seed: u64,
    opts: &[String],
    deadline: Duration,
    policy: &RetryPolicy,
) -> ExecOutcome {
    let attempts = policy.max_attempts.max(1);
    let start = Instant::now();
    let mut last: Option<AttemptResult> = None;
    let mut used: u32 = 0;
    let mut output = String::new();
    for i in 0..attempts {
        let ctx = Ctx::new(
            profile,
            seed,
            Some(Instant::now() + deadline),
            opts.to_vec(),
        );
        used = i + 1;
        let result = attempt(exp, &ctx, deadline);
        output = ctx.output();
        let timed_out = matches!(result, AttemptResult::TimedOut(_));
        last = Some(result);
        if matches!(last, Some(AttemptResult::Ok)) || timed_out {
            break;
        }
    }
    let wall = start.elapsed();
    let retries = used.saturating_sub(1);
    let status = match last.expect("at least one attempt ran") {
        AttemptResult::Ok => Status::Ok,
        AttemptResult::Failed(f) => Status::Partial {
            reason: format!("failed after {used} attempt(s): {f}"),
        },
        AttemptResult::Panicked(msg) => Status::Partial {
            reason: format!("panicked after {used} attempt(s): {msg}"),
        },
        AttemptResult::TimedOut(d) => Status::Partial {
            reason: format!(
                "deadline of {:.1}s exceeded on attempt {used} (wedged; thread abandoned)",
                d.as_secs_f64()
            ),
        },
    };
    ExecOutcome {
        status,
        output,
        wall,
        retries,
    }
}

#[derive(Clone, Copy, Debug)]
enum JobKind {
    Run,
    Reverify { expected_hash: u64 },
}

type Job = (usize, JobKind);

/// Bounded MPMC job queue: the supervisor pushes under admission
/// control, workers block-pop, `close` wakes everyone for shutdown.
struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Push unless full or closed; `true` on success.
    fn try_push(&self, job: Job) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.1 || state.0.len() >= self.capacity {
            return false;
        }
        state.0.push_back(job);
        self.cv.notify_one();
        true
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop_blocking(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Removes and returns everything still queued.
    fn drain(&self) -> Vec<Job> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.0.drain(..).collect()
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.1 = true;
        self.cv.notify_all();
    }
}

/// Per-experiment circuit breaker state.
#[derive(Default)]
struct BreakerState {
    consecutive: u32,
    open: bool,
    last: String,
}

type Breakers = Mutex<Vec<BreakerState>>;

fn breaker_open_reason(breakers: &Breakers, index: usize, threshold: u32) -> Option<String> {
    if threshold == 0 {
        return None;
    }
    let guard = breakers.lock().unwrap_or_else(|p| p.into_inner());
    let b = &guard[index];
    b.open.then(|| {
        format!(
            "circuit breaker opened after {threshold} consecutive panic/deadline \
             failure(s); skipping remaining attempts (last failure: {})",
            b.last
        )
    })
}

/// Records a panic/deadline failure; returns `true` if the breaker just
/// opened.
fn breaker_record_crash(breakers: &Breakers, index: usize, threshold: u32, what: &str) -> bool {
    if threshold == 0 {
        return false;
    }
    let mut guard = breakers.lock().unwrap_or_else(|p| p.into_inner());
    let b = &mut guard[index];
    b.consecutive += 1;
    b.last = what.to_string();
    if !b.open && b.consecutive >= threshold {
        b.open = true;
        return true;
    }
    false
}

fn breaker_record_success(breakers: &Breakers, index: usize) {
    let mut guard = breakers.lock().unwrap_or_else(|p| p.into_inner());
    let b = &mut guard[index];
    if !b.open {
        b.consecutive = 0;
    }
}

/// Worker → supervisor messages.
enum Event {
    /// A worker is about to run one attempt; `ctx` lets the supervisor
    /// salvage output if the attempt wedges.
    AttemptStarted {
        worker: usize,
        index: usize,
        kind: JobKind,
        attempt: u32,
        deadline_at: Instant,
        ctx: Ctx,
    },
    /// A worker finished a job (any status).
    JobDone {
        worker: usize,
        index: usize,
        kind: JobKind,
        outcome: ExecOutcome,
    },
    /// A worker's loop ended (queue closed, or abandoned flag seen).
    WorkerExited { worker: usize },
}

#[derive(Clone)]
struct WorkerCfg {
    profile: Profile,
    seed: u64,
    deadline_override: Option<Duration>,
    retry: RetryPolicy,
    breaker_threshold: u32,
    fleet_threads: usize,
}

/// What the supervisor knows about a worker's current attempt.
struct Inflight {
    index: usize,
    kind: JobKind,
    attempt: u32,
    deadline_at: Instant,
    ctx: Ctx,
}

/// One supervised worker slot.
struct Slot {
    alive: Arc<AtomicBool>,
    abandoned: bool,
}

/// Spawns a detached worker thread running jobs from `queue` until the
/// queue closes or its `alive` flag is cleared. Returns the flag, or
/// `None` if the OS refused the thread.
fn spawn_worker(
    id: usize,
    exps: &Arc<Vec<Experiment>>,
    queue: &Arc<JobQueue>,
    breakers: &Arc<Breakers>,
    tx: &mpsc::Sender<Event>,
    cfg: &WorkerCfg,
) -> Option<Arc<AtomicBool>> {
    let alive = Arc::new(AtomicBool::new(true));
    let exps = Arc::clone(exps);
    let queue = Arc::clone(queue);
    let breakers = Arc::clone(breakers);
    let tx = tx.clone();
    let cfg = cfg.clone();
    let flag = Arc::clone(&alive);
    let spawned = thread::Builder::new()
        .name(format!("pandora-worker-{id}"))
        .spawn(move || {
            worker_loop(id, &exps, &queue, &breakers, &tx, &cfg, &flag);
            let _ = tx.send(Event::WorkerExited { worker: id });
        });
    spawned.ok().map(|_| alive)
}

/// The worker body: pop a job, run it attempt by attempt under
/// `catch_unwind` directly on this thread (no per-attempt thread spawn
/// — the supervisor replaces the *worker* on a wedge), honouring the
/// circuit breaker between attempts.
fn worker_loop(
    id: usize,
    exps: &Arc<Vec<Experiment>>,
    queue: &Arc<JobQueue>,
    breakers: &Arc<Breakers>,
    tx: &mpsc::Sender<Event>,
    cfg: &WorkerCfg,
    alive: &Arc<AtomicBool>,
) {
    loop {
        if !alive.load(Ordering::Relaxed) {
            return;
        }
        let Some((index, kind)) = queue.pop_blocking() else {
            return;
        };
        let exp = &exps[index];
        let deadline = cfg.deadline_override.unwrap_or(exp.deadline);
        let attempts = cfg.retry.max_attempts.max(1);
        let start = Instant::now();
        let mut status: Option<Status> = None;
        let mut used: u32 = 0;
        let mut output = String::new();
        for i in 0..attempts {
            if let Some(reason) = breaker_open_reason(breakers, index, cfg.breaker_threshold) {
                status = Some(Status::Degraded { reason });
                break;
            }
            let ctx = Ctx::new(
                cfg.profile,
                cfg.seed,
                Some(Instant::now() + deadline),
                Vec::new(),
            )
            .with_fleet_threads(cfg.fleet_threads);
            used = i + 1;
            let _ = tx.send(Event::AttemptStarted {
                worker: id,
                index,
                kind,
                attempt: i,
                deadline_at: Instant::now() + deadline,
                ctx: ctx.clone(),
            });
            let run = exp.run;
            let result = catch_unwind(AssertUnwindSafe(|| run(&ctx)));
            output = ctx.output();
            if !alive.load(Ordering::Relaxed) {
                // The supervisor gave up on this attempt (wedge) and
                // already recorded it; vanish without a JobDone.
                return;
            }
            match result {
                Ok(Ok(())) => {
                    breaker_record_success(breakers, index);
                    status = Some(Status::Ok);
                    break;
                }
                Ok(Err(f)) => {
                    // A plain failure is retryable and does not count
                    // toward the breaker (only panics and deadlines do).
                    status = Some(Status::Partial {
                        reason: format!("failed after {used} attempt(s): {f}"),
                    });
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    breaker_record_crash(breakers, index, cfg.breaker_threshold, &msg);
                    status = Some(Status::Partial {
                        reason: format!("panicked after {used} attempt(s): {msg}"),
                    });
                }
            }
        }
        let outcome = ExecOutcome {
            status: status.expect("at least one attempt or a breaker verdict"),
            output,
            wall: start.elapsed(),
            retries: used.saturating_sub(1),
        };
        if tx
            .send(Event::JobDone {
                worker: id,
                index,
                kind,
                outcome,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Appends `entry` to the journal, degrading (disable journaling, keep
/// running) on real I/O errors and escalating simulated kills.
fn journal_checkpoint(
    journal: &mut Option<Journal>,
    health: &mut SuiteHealth,
    entry: &JournalEntry,
    progress: bool,
) -> Result<(), SuiteError> {
    let Some(j) = journal.as_mut() else {
        return Ok(());
    };
    match j.append(entry) {
        Ok(()) => Ok(()),
        Err(e) if chaos::is_sim_kill(&e) => Err(SuiteError::Crashed(e.to_string())),
        Err(e) => {
            health.journal_degraded = true;
            *journal = None;
            if progress {
                println!(
                    "[pandora-runner] journal append failed: {e} \
                     (checkpointing disabled; --resume will re-run this suite)"
                );
            }
            Ok(())
        }
    }
}

/// Publishes `bytes` atomically, degrading (count and continue) on real
/// I/O errors and escalating simulated kills. Returns whether the bytes
/// actually landed — callers must not checkpoint state that depends on
/// an unpublished file.
fn publish(
    path: &Path,
    bytes: &[u8],
    health: &mut SuiteHealth,
    progress: bool,
) -> Result<bool, SuiteError> {
    match atomic_write(path, bytes) {
        Ok(()) => Ok(true),
        Err(e) if chaos::is_sim_kill(&e) => Err(SuiteError::Crashed(e.to_string())),
        Err(e) => {
            health.publish_failures += 1;
            if progress {
                println!(
                    "[pandora-runner] publish of {} failed: {e} (continuing)",
                    path.display()
                );
            }
            Ok(false)
        }
    }
}

/// Finalizes one job: publish its output, transform reverify verdicts,
/// checkpoint the journal, print progress, fill the report row.
#[allow(clippy::too_many_arguments)]
fn record_outcome(
    exp: &Experiment,
    index: usize,
    kind: JobKind,
    outcome: &ExecOutcome,
    opts: &SuiteOptions,
    journal: &mut Option<Journal>,
    health: &mut SuiteHealth,
    reports: &mut [Option<ExperimentReport>],
    done: usize,
    to_run: usize,
) -> Result<(), SuiteError> {
    let output_hash = hash_str(&outcome.output);
    let output_bytes = outcome.output.len() as u64;
    let mut status = outcome.status.clone();
    let mut was_reverify = false;
    let mut published = true;
    match kind {
        JobKind::Run => {
            // Publish the (possibly partial) output atomically.
            let path = opts.results_dir.join(format!("{}.txt", exp.name));
            let mut text = outcome.output.clone();
            if let Some(reason) = status.reason() {
                let _ = write!(text, "\n[pandora-runner] PARTIAL RESULTS: {reason}\n");
            }
            published = publish(&path, text.as_bytes(), health, opts.progress)?;
        }
        JobKind::Reverify { expected_hash } => {
            was_reverify = true;
            status = match status {
                Status::Ok if output_hash == expected_hash => Status::Ok,
                Status::Ok => Status::Failed {
                    reason: format!(
                        "determinism re-verification failed: recorded output hash \
                         {expected_hash:#x}, re-run produced {output_hash:#x}"
                    ),
                },
                other => Status::Failed {
                    reason: format!(
                        "determinism re-verification could not complete: {}",
                        other.reason().unwrap_or("unknown")
                    ),
                },
            };
            // A matching reverify also refreshes the text file
            // (byte-identical by construction).
            if status == Status::Ok {
                let path = opts.results_dir.join(format!("{}.txt", exp.name));
                // A failed refresh leaves the previous (byte-identical)
                // file in place; nothing to degrade.
                let _ = publish(&path, outcome.output.as_bytes(), health, opts.progress)?;
            }
        }
    }
    // Checkpoint: after this fsync, a crash cannot lose the entry. An
    // entry whose results file failed to publish is deliberately NOT
    // checkpointed — journaling it as done would make a later --resume
    // skip an experiment that has no results file on disk.
    if !was_reverify && published {
        journal_checkpoint(
            journal,
            health,
            &JournalEntry {
                name: exp.name.to_string(),
                status: status.keyword().to_string(),
                wall_ms: outcome.wall.as_millis() as u64,
                retries: outcome.retries,
                output_hash,
                output_bytes,
            },
            opts.progress,
        )?;
    }
    if opts.progress {
        println!(
            "[{done:>2}/{to_run}] {:<28} {:<8} {:>7.2}s{}{}",
            exp.name,
            status.keyword(),
            outcome.wall.as_secs_f64(),
            if outcome.retries > 0 {
                format!("  ({} retries)", outcome.retries)
            } else {
                String::new()
            },
            status
                .reason()
                .map(|r| format!("  [{r}]"))
                .unwrap_or_default(),
        );
    }
    reports[index] = Some(ExperimentReport {
        name: exp.name.to_string(),
        status,
        wall: outcome.wall,
        retries: outcome.retries,
        resumed: false,
        reverified: was_reverify,
        output_hash,
        output_bytes,
    });
    Ok(())
}

/// Runs the suite described by `opts` over `registry`.
///
/// Writes, all crash-safely:
///
/// * `results/<name>.txt` per completed experiment (atomic replace),
/// * `results/.runall.journal` (fsynced append per completion),
/// * `results/.runall.manifest` (atomic, at suite start),
/// * `results/summary.canonical.json` (atomic, at suite end; only the
///   deterministic facts — the crash-recovery comparison artifact),
/// * `results/summary.json` (atomic, at suite end).
///
/// Worker threads are *supervised*: a wedged worker is abandoned and
/// replaced under [`SuiteOptions::max_worker_restarts`] with doubling
/// backoff; repeated panic/deadline failures open a per-experiment
/// circuit breaker ([`Status::Degraded`]); job admission is bounded by
/// [`SuiteOptions::queue_capacity`]. Storage faults degrade the run
/// (see [`SuiteHealth`]) rather than aborting it.
///
/// # Errors
///
/// [`SuiteError::ResumeRefused`] when `--resume` does not match the
/// recorded manifest (unless [`SuiteOptions::resume_fallback`]);
/// [`SuiteError::Crashed`] when an injected chaos kill fired;
/// [`SuiteError::Io`] for unrecoverable filesystem failures.
/// Per-experiment failures are *not* errors — they come back as
/// [`Status::Partial`] / [`Status::Degraded`] / [`Status::Failed`]
/// rows in the report.
#[allow(clippy::too_many_lines)]
pub fn run_suite(registry: &Registry, opts: &SuiteOptions) -> Result<SuiteReport, SuiteError> {
    let chaos_guard = opts.chaos.as_ref().map(chaos::install);
    let selected = registry.select(opts.only.as_deref());
    let run_hash = registry.run_hash(&selected, opts.profile, opts.seed);
    let manifest = Manifest {
        profile: opts.profile,
        seed: opts.seed,
        run_hash,
    };
    let mut health = SuiteHealth::default();

    fs::create_dir_all(&opts.results_dir)?;
    // Sweep `.{name}.tmp.{pid}` debris a hard-killed previous run may
    // have left (atomic_write's own error path cleans up; SIGKILL
    // cannot). Best-effort: a truncated scan sweeps what it salvaged.
    let (swept, scan_err) = crate::output::clean_stale_tmp(&opts.results_dir);
    if opts.progress {
        if !swept.is_empty() {
            println!("[pandora-runner] swept {} stale temp file(s)", swept.len());
        }
        if let Some(e) = scan_err {
            println!("[pandora-runner] temp sweep incomplete: {e}");
        }
    }
    let journal_path = opts.results_dir.join(".runall.journal");
    let manifest_path = opts.results_dir.join(".runall.manifest");

    // Resume bookkeeping: which experiments are already done, and with
    // what recorded output hash.
    let mut completed: Vec<JournalEntry> = Vec::new();
    let mut journal: Option<Journal> = None;
    let mut start_fresh = !opts.resume;
    if opts.resume {
        let resumed = (|| -> Result<(Vec<JournalEntry>, Journal), SuiteError> {
            let recorded = Manifest::load(&manifest_path)
                .map_err(|e| SuiteError::ResumeRefused(format!("cannot read manifest: {e}")))?;
            recorded
                .check_matches(&manifest)
                .map_err(SuiteError::ResumeRefused)?;
            Journal::recover(&journal_path).map_err(|e| {
                if chaos::is_sim_kill(&e) {
                    SuiteError::Crashed(e.to_string())
                } else {
                    SuiteError::ResumeRefused(format!("cannot recover journal: {e}"))
                }
            })
        })();
        match resumed {
            Ok((entries, j)) => {
                completed = entries;
                journal = Some(j);
            }
            Err(e @ SuiteError::Crashed(_)) => return Err(e),
            Err(e) if opts.resume_fallback => {
                if opts.progress {
                    println!("[pandora-runner] {e}; falling back to a fresh run");
                }
                start_fresh = true;
            }
            Err(e) => return Err(e),
        }
    }
    if start_fresh {
        match manifest.write(&manifest_path) {
            Ok(()) => {}
            Err(e) if chaos::is_sim_kill(&e) => return Err(SuiteError::Crashed(e.to_string())),
            Err(e) => {
                // Degraded: the run proceeds, but a later --resume will
                // be refused for want of a manifest.
                health.publish_failures += 1;
                if opts.progress {
                    println!("[pandora-runner] manifest write failed: {e} (continuing)");
                }
            }
        }
        journal = match Journal::create(&journal_path) {
            Ok(j) => Some(j),
            Err(e) if chaos::is_sim_kill(&e) => return Err(SuiteError::Crashed(e.to_string())),
            Err(e) => {
                health.journal_degraded = true;
                if opts.progress {
                    println!(
                        "[pandora-runner] journal create failed: {e} \
                         (checkpointing disabled for this run)"
                    );
                }
                None
            }
        };
    }

    let find_completed = |name: &str| completed.iter().find(|e| e.name == name && e.status == "ok");

    // Build the job list in registry order: run / reverify / skip.
    let mut reports: Vec<Option<ExperimentReport>> = vec![None; selected.len()];
    let mut pending: VecDeque<Job> = VecDeque::new();
    let mut reverified = 0usize;
    for (i, exp) in selected.iter().enumerate() {
        match find_completed(exp.name) {
            Some(entry) if reverified < opts.reverify => {
                reverified += 1;
                pending.push_back((
                    i,
                    JobKind::Reverify {
                        expected_hash: entry.output_hash,
                    },
                ));
            }
            Some(entry) => {
                reports[i] = Some(ExperimentReport {
                    name: exp.name.to_string(),
                    status: Status::Ok,
                    wall: Duration::from_millis(entry.wall_ms),
                    retries: entry.retries,
                    resumed: true,
                    reverified: false,
                    output_hash: entry.output_hash,
                    output_bytes: entry.output_bytes,
                });
            }
            None => pending.push_back((i, JobKind::Run)),
        }
    }

    let to_run = pending.len();
    let workers_planned = opts.jobs.max(1).min(to_run.max(1));
    let exps: Arc<Vec<Experiment>> = Arc::new(selected.iter().map(|&e| e.clone()).collect());
    let breakers: Arc<Breakers> =
        Arc::new(Mutex::new((0..exps.len()).map(|_| BreakerState::default()).collect()));

    if to_run > 0 {
        supervise(
            &exps,
            &breakers,
            pending,
            to_run,
            workers_planned,
            opts,
            &mut journal,
            &mut health,
            &mut reports,
        )?;
    }

    // Health finalization: open breakers (registry order), chaos stats.
    {
        let guard = breakers.lock().unwrap_or_else(|p| p.into_inner());
        health.breakers_open = guard
            .iter()
            .enumerate()
            .filter(|(_, b)| b.open)
            .map(|(i, _)| exps[i].name.to_string())
            .collect();
    }
    if let Some(guard) = &chaos_guard {
        let stats = guard.stats();
        health.faults_injected = stats.injected;
        health.faults_survived = stats.injected - u64::from(stats.crashed);
        health.fault_kinds = stats.kinds_injected;
        health.io_ops = stats.total_ops;
        health.ops_by_site = stats.ops_by_site;
    }

    let experiments = reports
        .into_iter()
        .map(|r| r.expect("every selected experiment reported"))
        .collect();
    let report = SuiteReport {
        profile: opts.profile,
        seed: opts.seed,
        jobs: workers_planned,
        run_hash,
        experiments,
        health,
    };
    // The canonical document first (the crash-recovery artifact), then
    // the full summary. Both degrade on real I/O failure.
    let mut end_health = report.health.clone();
    let _ = publish(
        &opts.results_dir.join("summary.canonical.json"),
        report.to_json_canonical().as_bytes(),
        &mut end_health,
        opts.progress,
    )?;
    let _ = publish(
        &opts.results_dir.join("summary.json"),
        report.to_json().as_bytes(),
        &mut end_health,
        opts.progress,
    )?;
    Ok(report)
}

/// The supervisor loop: admit jobs under the queue bound, watch for
/// wedges, respawn workers under the restart budget, and record every
/// outcome until all `to_run` jobs are accounted for.
#[allow(clippy::too_many_arguments)]
fn supervise(
    exps: &Arc<Vec<Experiment>>,
    breakers: &Arc<Breakers>,
    mut pending: VecDeque<Job>,
    to_run: usize,
    workers_planned: usize,
    opts: &SuiteOptions,
    journal: &mut Option<Journal>,
    health: &mut SuiteHealth,
    reports: &mut [Option<ExperimentReport>],
) -> Result<(), SuiteError> {
    let capacity = opts.queue_capacity.unwrap_or(workers_planned * 2).max(1);
    let queue = Arc::new(JobQueue::new(capacity));
    let (tx, rx) = mpsc::channel::<Event>();
    let cfg = WorkerCfg {
        profile: opts.profile,
        seed: opts.seed,
        deadline_override: opts.deadline_override,
        retry: opts.retry,
        breaker_threshold: opts.breaker_threshold,
        fleet_threads: opts.fleet_threads,
    };

    let mut done = 0usize;
    let mut workers: HashMap<usize, Slot> = HashMap::new();
    let mut inflight: HashMap<usize, Inflight> = HashMap::new();
    let mut respawn_at: Vec<Instant> = Vec::new();
    let mut restarts_scheduled: u32 = 0;
    let mut next_worker_id = 0usize;

    // Initial admission, then the initial pool.
    admit(
        &queue, &mut pending, exps, breakers, opts, journal, health, reports, &mut done, to_run,
    )?;
    for _ in 0..workers_planned {
        let id = next_worker_id;
        next_worker_id += 1;
        if let Some(alive) = spawn_worker(id, exps, &queue, breakers, &tx, &cfg) {
            workers.insert(
                id,
                Slot {
                    alive,
                    abandoned: false,
                },
            );
        }
    }

    while done < to_run {
        // 1. Wait for (and then fully drain) worker events.
        let mut events: Vec<Event> = Vec::new();
        match rx.recv_timeout(SUPERVISOR_TICK) {
            Ok(ev) => events.push(ev),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // All workers gone with jobs outstanding; the
                // exhaustion check below drains what is left.
            }
        }
        while let Ok(ev) = rx.try_recv() {
            events.push(ev);
        }
        for ev in events {
            match ev {
                Event::AttemptStarted {
                    worker,
                    index,
                    kind,
                    attempt,
                    deadline_at,
                    ctx,
                } => {
                    if workers.get(&worker).is_some_and(|s| !s.abandoned) {
                        inflight.insert(
                            worker,
                            Inflight {
                                index,
                                kind,
                                attempt,
                                deadline_at,
                                ctx,
                            },
                        );
                    }
                }
                Event::JobDone {
                    worker,
                    index,
                    kind,
                    outcome,
                } => {
                    if workers.get(&worker).is_some_and(|s| !s.abandoned) {
                        inflight.remove(&worker);
                        done += 1;
                        record_outcome(
                            &exps[index],
                            index,
                            kind,
                            &outcome,
                            opts,
                            journal,
                            health,
                            reports,
                            done,
                            to_run,
                        )?;
                    }
                }
                Event::WorkerExited { worker } => {
                    if workers.get(&worker).is_some_and(|s| !s.abandoned) {
                        workers.remove(&worker);
                    }
                }
            }
        }

        // 2. Wedge scan: any live attempt past deadline + grace means
        // its worker is stuck; abandon and (budget permitting) replace.
        let now = Instant::now();
        let wedged: Vec<usize> = inflight
            .iter()
            .filter(|(w, info)| {
                workers.get(w).is_some_and(|s| !s.abandoned) && now > info.deadline_at + WEDGE_GRACE
            })
            .map(|(&w, _)| w)
            .collect();
        for w in wedged {
            let info = inflight.remove(&w).expect("wedged worker is inflight");
            if let Some(slot) = workers.get_mut(&w) {
                slot.abandoned = true;
                slot.alive.store(false, Ordering::Relaxed);
            }
            health.workers_abandoned += 1;
            let exp = &exps[info.index];
            let deadline = opts.deadline_override.unwrap_or(exp.deadline);
            breaker_record_crash(
                breakers,
                info.index,
                opts.breaker_threshold,
                &format!("deadline of {:.1}s exceeded", deadline.as_secs_f64()),
            );
            if opts.progress {
                println!(
                    "[pandora-runner] worker {w} wedged on {} (attempt {}); \
                     abandoned, salvaging output",
                    exp.name,
                    info.attempt + 1
                );
            }
            let outcome = ExecOutcome {
                status: Status::Partial {
                    reason: format!(
                        "deadline of {:.1}s exceeded on attempt {} \
                         (wedged; worker abandoned and replaced)",
                        deadline.as_secs_f64(),
                        info.attempt + 1
                    ),
                },
                output: info.ctx.output(),
                wall: deadline + WEDGE_GRACE,
                retries: info.attempt,
            };
            done += 1;
            record_outcome(
                exp, info.index, info.kind, &outcome, opts, journal, health, reports, done, to_run,
            )?;
            if restarts_scheduled < opts.max_worker_restarts {
                let backoff = opts.restart_backoff * 2u32.saturating_pow(restarts_scheduled.min(10));
                respawn_at.push(now + backoff);
                restarts_scheduled += 1;
            } else if opts.progress {
                println!("[pandora-runner] worker restart budget exhausted; not replacing");
            }
        }

        // 3. Respawns that have served their backoff.
        let now = Instant::now();
        let mut i = 0;
        while i < respawn_at.len() {
            if respawn_at[i] <= now {
                respawn_at.swap_remove(i);
                let id = next_worker_id;
                next_worker_id += 1;
                if let Some(alive) = spawn_worker(id, exps, &queue, breakers, &tx, &cfg) {
                    workers.insert(
                        id,
                        Slot {
                            alive,
                            abandoned: false,
                        },
                    );
                    health.worker_restarts += 1;
                    if opts.progress {
                        println!("[pandora-runner] spawned replacement worker {id}");
                    }
                }
            } else {
                i += 1;
            }
        }

        // 4. Admission: refill the bounded queue.
        admit(
            &queue, &mut pending, exps, breakers, opts, journal, health, reports, &mut done, to_run,
        )?;

        // 5. Pool exhaustion: no live workers, none coming — drain the
        // rest of the suite as degraded rather than hanging.
        let active = workers.values().filter(|s| !s.abandoned).count();
        if done < to_run && active == 0 && respawn_at.is_empty() {
            let mut leftovers = queue.drain();
            leftovers.extend(pending.drain(..));
            for (index, kind) in leftovers {
                let outcome = ExecOutcome {
                    status: Status::Degraded {
                        reason: "worker pool exhausted: wedged workers exceeded the \
                                 restart budget"
                            .to_string(),
                    },
                    output: String::new(),
                    wall: Duration::ZERO,
                    retries: 0,
                };
                done += 1;
                record_outcome(
                    &exps[index], index, kind, &outcome, opts, journal, health, reports, done,
                    to_run,
                )?;
            }
        }
    }
    queue.close();
    Ok(())
}

/// Moves pending jobs into the bounded queue; a job whose breaker is
/// already open is recorded as degraded without ever being queued.
#[allow(clippy::too_many_arguments)]
fn admit(
    queue: &Arc<JobQueue>,
    pending: &mut VecDeque<Job>,
    exps: &Arc<Vec<Experiment>>,
    breakers: &Arc<Breakers>,
    opts: &SuiteOptions,
    journal: &mut Option<Journal>,
    health: &mut SuiteHealth,
    reports: &mut [Option<ExperimentReport>],
    done: &mut usize,
    to_run: usize,
) -> Result<(), SuiteError> {
    while let Some(&(index, kind)) = pending.front() {
        if let Some(reason) = breaker_open_reason(breakers, index, opts.breaker_threshold) {
            pending.pop_front();
            let outcome = ExecOutcome {
                status: Status::Degraded {
                    reason: format!("skipped at admission: {reason}"),
                },
                output: String::new(),
                wall: Duration::ZERO,
                retries: 0,
            };
            *done += 1;
            record_outcome(
                &exps[index], index, kind, &outcome, opts, journal, health, reports, *done, to_run,
            )?;
            continue;
        }
        if queue.try_push((index, kind)) {
            pending.pop_front();
        } else {
            health.admission_deferrals += 1;
            break;
        }
    }
    Ok(())
}
